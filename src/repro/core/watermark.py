"""The watermark itself: the bit pattern imprinted into cell physics.

A :class:`Watermark` is an immutable bit vector (flash convention:
1 = "good"/unstressed cell, 0 = "bad"/stressed cell) plus convenience
constructors for the encodings used in the paper — ASCII text (the "TC"
example of Fig. 6, the uppercase-ASCII watermarks of Section V),
structured payload records, random patterns and balanced variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .bits import (
    is_balanced,
    manchester_encode,
    ones_fraction,
    random_bits,
    text_to_bits,
    bytes_to_bits,
)
from .payload import WatermarkPayload

__all__ = ["Watermark"]


@dataclass(frozen=True)
class Watermark:
    """An immutable watermark bit pattern.

    Attributes
    ----------
    bits:
        The pattern (uint8, 1 = good/erased cell, 0 = bad/stressed cell).
    label:
        Human-readable description used in reports.
    """

    bits: np.ndarray
    label: str = "watermark"

    def __post_init__(self) -> None:
        bits = np.ascontiguousarray(self.bits, dtype=np.uint8)
        if bits.ndim != 1 or bits.size == 0:
            raise ValueError("watermark bits must be a non-empty 1-D vector")
        if np.any(bits > 1):
            raise ValueError("watermark bits must be 0/1")
        bits.setflags(write=False)
        object.__setattr__(self, "bits", bits)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, label: Optional[str] = None) -> "Watermark":
        """ASCII text watermark (LSB-first bit order, as in Fig. 6)."""
        return cls(text_to_bits(text), label=label or f"text:{text!r}")

    @classmethod
    def from_bytes(
        cls, data: bytes, label: Optional[str] = None
    ) -> "Watermark":
        """Raw bytes watermark."""
        return cls(bytes_to_bits(data), label=label or f"bytes[{len(data)}]")

    @classmethod
    def from_payload(cls, payload: WatermarkPayload) -> "Watermark":
        """Structured manufacturing record (CRC-protected)."""
        return cls(
            payload.to_bits(),
            label=(
                f"payload:{payload.manufacturer}/"
                f"{payload.status.name}/g{payload.speed_grade}"
            ),
        )

    @classmethod
    def random(
        cls,
        n_bits: int,
        rng: np.random.Generator,
        p_one: float = 0.5,
        label: Optional[str] = None,
    ) -> "Watermark":
        """Random watermark with the given 1-density."""
        return cls(
            random_bits(n_bits, rng, p_one=p_one),
            label=label or f"random[{n_bits}]",
        )

    @classmethod
    def ascii_uppercase(
        cls, n_chars: int, rng: np.random.Generator
    ) -> "Watermark":
        """Random uppercase-ASCII watermark, as in the Section V feasibility
        experiment ("a watermark that consists of upper-case ASCII
        characters")."""
        chars = rng.integers(ord("A"), ord("Z") + 1, size=n_chars)
        text = "".join(chr(c) for c in chars)
        return cls.from_text(text, label=f"ascii_upper[{n_chars}]")

    @classmethod
    def tc_example(cls) -> "Watermark":
        """The paper's Fig. 6 walk-through watermark: "TC" = 0x5443."""
        return cls.from_text("TC", label='text:"TC" (Fig. 6)')

    # -- derived views -----------------------------------------------------

    def balanced(self) -> "Watermark":
        """Manchester-encoded variant with exactly equal good/bad bits.

        The paper suggests constraining watermarks to an equal number of
        good and bad bits so stress tampering is detectable; pairing each
        bit with its complement achieves that exactly at 2x footprint.
        """
        return Watermark(
            manchester_encode(self.bits), label=f"{self.label}+balanced"
        )

    # -- properties ---------------------------------------------------------

    @property
    def n_bits(self) -> int:
        return int(self.bits.size)

    @property
    def ones_fraction(self) -> float:
        """Fraction of good (logic 1) bits."""
        return ones_fraction(self.bits)

    @property
    def zeros_fraction(self) -> float:
        """Fraction of bad (logic 0, stressed) bits."""
        return 1.0 - self.ones_fraction

    @property
    def is_balanced(self) -> bool:
        return is_balanced(self.bits)

    def __len__(self) -> int:
        return self.n_bits

    def __repr__(self) -> str:
        return (
            f"Watermark({self.label}, n_bits={self.n_bits}, "
            f"ones={self.ones_fraction:.2f})"
        )
