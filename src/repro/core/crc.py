"""CRC-16/CCITT-FALSE: the integrity check inside watermark payloads.

A 16-bit CRC is small enough to imprint alongside the payload and lets a
verifier distinguish "noisy but genuine" from "forged or tampered"
content after error correction (Section IV's watermark-signature idea).
Table-driven, no dependencies.
"""

from __future__ import annotations

__all__ = ["crc16_ccitt"]

_POLY = 0x1021
_TABLE = []
for _byte in range(256):
    _crc = _byte << 8
    for _ in range(8):
        _crc = ((_crc << 1) ^ _POLY) if _crc & 0x8000 else (_crc << 1)
    _TABLE.append(_crc & 0xFFFF)


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE of ``data`` (poly 0x1021, init 0xFFFF)."""
    crc = initial & 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc
