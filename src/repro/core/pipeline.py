"""FlashmarkSession: the one-stop high-level API.

Wires the whole flow — payload, imprint, calibration, extraction,
verification — onto one chip, with the published family parameters kept
alongside.  This is the API the README's quickstart uses::

    from repro import FlashmarkSession, WatermarkPayload, ChipStatus, make_mcu

    chip = make_mcu(seed=7, n_segments=1)
    session = FlashmarkSession(chip)
    payload = WatermarkPayload("TCMK", die_id=0xBEEF, speed_grade=3,
                               status=ChipStatus.ACCEPT)
    session.imprint_payload(payload, n_pe=40_000, n_replicas=7)
    report = session.verify()
    assert report.verdict.name == "AUTHENTIC"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..device.mcu import Microcontroller, make_mcu
from .calibration import FamilyCalibration, calibrate_family
from .extract import DecodedWatermark, extract_watermark
from .imprint import ImprintReport, imprint_watermark
from .payload import WatermarkPayload
from .signature import SignatureScheme
from .verifier import (
    VerificationReport,
    WatermarkFormat,
    WatermarkVerifier,
)
from .watermark import Watermark

__all__ = ["FlashmarkSession"]


@dataclass
class _SessionState:
    watermark: Watermark
    format: WatermarkFormat
    imprint_report: ImprintReport


class FlashmarkSession:
    """High-level imprint / extract / verify workflow on one chip.

    Parameters
    ----------
    chip:
        The simulated microcontroller carrying the watermark segment.
    segment:
        Reserved watermark segment (default 0).
    calibration:
        Published family calibration.  When omitted, one is derived on
        demand from sibling chips of the same model (slower but
        self-contained).
    """

    def __init__(
        self,
        chip: Microcontroller,
        segment: int = 0,
        calibration: Optional[FamilyCalibration] = None,
    ):
        self.chip = chip
        self.segment = segment
        self._calibration = calibration
        self._state: Optional[_SessionState] = None
        self._signature_scheme: Optional[SignatureScheme] = None

    # -- manufacturer side ----------------------------------------------

    def imprint(
        self,
        watermark: Watermark,
        n_pe: int = 40_000,
        n_replicas: int = 7,
        balanced: bool = False,
        structured: bool = False,
        accelerated: bool = True,
        layout_style: str = "contiguous",
        ecc: bool = False,
    ) -> ImprintReport:
        """Imprint a watermark and remember the format for later steps."""
        imprinted = watermark.balanced() if balanced else watermark
        report = imprint_watermark(
            self.chip.flash,
            self.segment,
            imprinted,
            n_pe,
            n_replicas=n_replicas,
            layout_style=layout_style,
            accelerated=accelerated,
        )
        self._state = _SessionState(
            watermark=imprinted,
            format=WatermarkFormat(
                n_bits=watermark.n_bits,
                n_replicas=n_replicas,
                layout_style=layout_style,
                balanced=balanced,
                structured=structured,
                ecc=ecc,
            ),
            imprint_report=report,
        )
        return report

    def imprint_payload(
        self,
        payload: WatermarkPayload,
        n_pe: int = 40_000,
        n_replicas: int = 7,
        balanced: bool = True,
        accelerated: bool = True,
        sign_key: Optional[bytes] = None,
        ecc: bool = False,
    ) -> ImprintReport:
        """Imprint a structured, CRC-protected manufacturing record.

        With ``sign_key``, the record carries a keyed signature tag
        (Section IV): verification then also authenticates the
        manufacturer, not just the record's integrity.  With ``ecc``,
        the record is Hamming(7,4)-encoded before balancing — the
        paper's "error correction techniques" alternative to pure
        replication.
        """
        if sign_key is not None:
            self._signature_scheme = SignatureScheme(sign_key)
            watermark = self._signature_scheme.sign(payload).watermark
        else:
            self._signature_scheme = None
            watermark = Watermark.from_payload(payload)
        if ecc:
            from .ecc import Hamming74

            watermark = Watermark(
                Hamming74().encode(watermark.bits),
                label=f"{watermark.label}+hamming74",
            )
        return self.imprint(
            watermark,
            n_pe=n_pe,
            n_replicas=n_replicas,
            balanced=balanced,
            structured=True,
            accelerated=accelerated,
            ecc=ecc,
        )

    # -- published parameters ----------------------------------------------

    @property
    def calibration(self) -> FamilyCalibration:
        """The family calibration (derived on first use if not supplied)."""
        if self._calibration is None:
            state = self._require_state()
            self._calibration = calibrate_family(
                lambda seed: make_mcu(
                    model=self.chip.model,
                    seed=seed,
                    params=self.chip.params,
                    n_segments=1,
                ),
                n_pe=state.imprint_report.n_pe,
                n_replicas=state.format.n_replicas,
            )
        return self._calibration

    @property
    def format(self) -> WatermarkFormat:
        """The watermark format imprinted by this session."""
        return self._require_state().format

    # -- integrator side ------------------------------------------------------

    def extract(self, n_reads: int = 1) -> DecodedWatermark:
        """Extract and majority-decode the watermark."""
        state = self._require_state()
        layout = state.format.layout_for(
            self.chip.geometry.bits_per_segment
        )
        return extract_watermark(
            self.chip.flash,
            self.segment,
            layout,
            self.calibration.t_pew_us,
            n_reads=n_reads,
        )

    def verify(
        self,
        expected: Optional[Watermark] = None,
        max_ber: float = 0.05,
        use_asymmetric_decoder: bool = False,
    ) -> VerificationReport:
        """Verify this chip against the published family parameters.

        ``expected`` defaults to the imprinted watermark, which models a
        verifier that knows what the manufacturer imprinted; pass
        ``expected=None`` explicitly after constructing a fresh verifier
        for the realistic knows-only-the-format flow.
        """
        state = self._require_state()
        verifier = WatermarkVerifier(
            self.calibration,
            state.format,
            expected=expected if expected is not None else state.watermark,
            max_ber=max_ber,
            use_asymmetric_decoder=use_asymmetric_decoder,
            signature_scheme=self._signature_scheme,
        )
        return verifier.verify(self.chip.flash, self.segment)

    def _require_state(self) -> _SessionState:
        if self._state is None:
            raise RuntimeError(
                "no watermark imprinted in this session yet; "
                "call imprint() or imprint_payload() first"
            )
        return self._state
