"""FlashmarkSession: the one-stop high-level API.

Wires the whole flow — payload, imprint, calibration, extraction,
verification — onto one chip, with the published family parameters kept
alongside.  This is the API the README's quickstart uses::

    from repro import FlashmarkSession, WatermarkPayload, ChipStatus, make_mcu

    chip = make_mcu(seed=7, n_segments=1)
    session = FlashmarkSession(chip)
    payload = WatermarkPayload("TCMK", die_id=0xBEEF, speed_grade=3,
                               status=ChipStatus.ACCEPT)
    session.imprint_payload(payload, n_pe=40_000, n_replicas=7)
    report = session.verify()
    assert report.verdict.name == "AUTHENTIC"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..device.mcu import McuFactory, Microcontroller
from ..telemetry import Telemetry, build_manifest, save_manifest
from .calibration import FamilyCalibration
from .extract import DecodedWatermark, extract_watermark
from .imprint import ImprintReport, imprint_watermark
from .payload import WatermarkPayload
from .signature import SignatureScheme
from .verifier import (
    VerificationReport,
    WatermarkFormat,
    WatermarkVerifier,
)
from .watermark import Watermark

__all__ = ["FlashmarkSession"]


@dataclass
class _SessionState:
    watermark: Watermark
    format: WatermarkFormat
    imprint_report: ImprintReport


class FlashmarkSession:
    """High-level imprint / extract / verify workflow on one chip.

    Parameters
    ----------
    chip:
        The simulated microcontroller carrying the watermark segment.
    segment:
        Reserved watermark segment (default 0).
    calibration:
        Published family calibration.  When omitted, one is derived on
        demand from sibling chips of the same model (slower but
        self-contained).
    telemetry:
        Observability context.  A fresh enabled
        :class:`~repro.telemetry.Telemetry` is created by default, so
        every session yields a run manifest (:meth:`run_manifest`); pass
        ``Telemetry(enabled=False)`` to opt out, or a shared context to
        aggregate several sessions.
    calibration_workers / calibration_cache:
        Passed through to :func:`repro.engine.calibrate_family` when the
        session derives a calibration on demand: worker processes for
        the sample-chip sweep, and an optional
        :class:`~repro.engine.CalibrationCache` so repeated sessions
        reuse the published window instead of re-deriving it.
    """

    def __init__(
        self,
        chip: Microcontroller,
        segment: int = 0,
        calibration: Optional[FamilyCalibration] = None,
        telemetry: Optional[Telemetry] = None,
        *,
        calibration_workers: int = 1,
        calibration_cache=None,
    ):
        self.chip = chip
        self.segment = segment
        self._calibration = calibration
        self._state: Optional[_SessionState] = None
        self._signature_scheme: Optional[SignatureScheme] = None
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        chip.flash.attach_telemetry(self.telemetry)
        self._last_verdict: Optional[str] = None
        self.calibration_workers = calibration_workers
        self.calibration_cache = calibration_cache

    # -- manufacturer side ----------------------------------------------

    def imprint(
        self,
        watermark: Watermark,
        n_pe: int = 40_000,
        n_replicas: int = 7,
        balanced: bool = False,
        structured: bool = False,
        accelerated: bool = True,
        layout_style: str = "contiguous",
        ecc: bool = False,
    ) -> ImprintReport:
        """Imprint a watermark and remember the format for later steps."""
        imprinted = watermark.balanced() if balanced else watermark
        with self.telemetry.span(
            "imprint",
            n_pe=n_pe,
            n_replicas=n_replicas,
            balanced=balanced,
            accelerated=accelerated,
            layout_style=layout_style,
            ecc=ecc,
        ) as sp:
            report = imprint_watermark(
                self.chip.flash,
                self.segment,
                imprinted,
                n_pe,
                n_replicas=n_replicas,
                layout_style=layout_style,
                accelerated=accelerated,
                telemetry=self.telemetry,
            )
            sp.set("n_stressed_cells", report.n_stressed_cells)
            sp.set("duration_s", report.duration_s)
        self.telemetry.gauge("imprint.duration_s", report.duration_s)
        self.telemetry.gauge("imprint.energy_mj", report.energy_mj)
        self.telemetry.gauge(
            "imprint.n_stressed_cells", report.n_stressed_cells
        )
        self._state = _SessionState(
            watermark=imprinted,
            format=WatermarkFormat(
                n_bits=watermark.n_bits,
                n_replicas=n_replicas,
                layout_style=layout_style,
                balanced=balanced,
                structured=structured,
                ecc=ecc,
            ),
            imprint_report=report,
        )
        return report

    def imprint_payload(
        self,
        payload: WatermarkPayload,
        n_pe: int = 40_000,
        n_replicas: int = 7,
        balanced: bool = True,
        accelerated: bool = True,
        sign_key: Optional[bytes] = None,
        ecc: bool = False,
    ) -> ImprintReport:
        """Imprint a structured, CRC-protected manufacturing record.

        With ``sign_key``, the record carries a keyed signature tag
        (Section IV): verification then also authenticates the
        manufacturer, not just the record's integrity.  With ``ecc``,
        the record is Hamming(7,4)-encoded before balancing — the
        paper's "error correction techniques" alternative to pure
        replication.
        """
        if sign_key is not None:
            self._signature_scheme = SignatureScheme(sign_key)
            watermark = self._signature_scheme.sign(payload).watermark
        else:
            self._signature_scheme = None
            watermark = Watermark.from_payload(payload)
        if ecc:
            from .ecc import Hamming74

            watermark = Watermark(
                Hamming74().encode(watermark.bits),
                label=f"{watermark.label}+hamming74",
            )
        return self.imprint(
            watermark,
            n_pe=n_pe,
            n_replicas=n_replicas,
            balanced=balanced,
            structured=True,
            accelerated=accelerated,
            ecc=ecc,
        )

    # -- published parameters ----------------------------------------------

    @property
    def calibration(self) -> FamilyCalibration:
        """The family calibration (derived on first use if not supplied)."""
        if self._calibration is None:
            from ..engine.api import calibrate_family

            state = self._require_state()
            factory = McuFactory(
                model=self.chip.model,
                params=self.chip.params,
                n_segments=1,
            )
            with self.telemetry.span(
                "calibration",
                n_pe=state.imprint_report.n_pe,
                n_replicas=state.format.n_replicas,
            ) as sp:
                result = calibrate_family(
                    factory,
                    state.imprint_report.n_pe,
                    n_replicas=state.format.n_replicas,
                    telemetry=self.telemetry,
                    workers=self.calibration_workers,
                    cache=self.calibration_cache,
                )
                self._calibration = result.calibration
                sp.set("t_pew_us", self._calibration.t_pew_us)
                sp.set("expected_ber", self._calibration.expected_ber)
                sp.set("cache_hit", result.cache_hit)
            self.telemetry.gauge(
                "calibration.t_pew_us", self._calibration.t_pew_us
            )
            self.telemetry.gauge(
                "calibration.expected_ber", self._calibration.expected_ber
            )
        return self._calibration

    @property
    def format(self) -> WatermarkFormat:
        """The watermark format imprinted by this session."""
        return self._require_state().format

    # -- integrator side ------------------------------------------------------

    def extract(self, n_reads: int = 1) -> DecodedWatermark:
        """Extract and majority-decode the watermark."""
        state = self._require_state()
        layout = state.format.layout_for(
            self.chip.geometry.bits_per_segment
        )
        t_pew_us = self.calibration.t_pew_us  # may open a calibration span
        return extract_watermark(
            self.chip.flash,
            self.segment,
            layout,
            t_pew_us,
            n_reads=n_reads,
            telemetry=self.telemetry,
        )

    def verify(
        self,
        expected: Optional[Watermark] = None,
        max_ber: float = 0.05,
        use_asymmetric_decoder: bool = False,
    ) -> VerificationReport:
        """Verify this chip against the published family parameters.

        ``expected`` defaults to the imprinted watermark, which models a
        verifier that knows what the manufacturer imprinted; pass
        ``expected=None`` explicitly after constructing a fresh verifier
        for the realistic knows-only-the-format flow.
        """
        state = self._require_state()
        calibration = self.calibration  # resolve outside the verify span
        with self.telemetry.span("verify", max_ber=max_ber) as sp:
            verifier = WatermarkVerifier(
                calibration,
                state.format,
                expected=(
                    expected if expected is not None else state.watermark
                ),
                max_ber=max_ber,
                use_asymmetric_decoder=use_asymmetric_decoder,
                signature_scheme=self._signature_scheme,
            )
            report = verifier.verify(
                self.chip.flash, self.segment, telemetry=self.telemetry
            )
            sp.set("verdict", report.verdict.value)
            sp.set("reason", report.reason)
            if report.ber is not None:
                sp.set("ber", report.ber)
        self._last_verdict = report.verdict.value
        if report.ber is not None:
            self.telemetry.gauge("verify.ber", report.ber)
        self.telemetry.gauge(
            "verify.stressed_outliers", report.stressed_outliers
        )
        self.telemetry.count(f"verify.verdict.{report.verdict.value}")
        return report

    # -- observability ----------------------------------------------------

    def run_manifest(self) -> dict:
        """The session's machine-readable run manifest.

        Captures parameters, seeds, per-stage spans (imprint,
        calibration, extract, verify), the metrics snapshot, the chip's
        device-clock totals and the last verdict.  Stage device times
        reconcile with ``chip.trace.now_us`` when every charged
        operation ran inside a session stage.
        """
        parameters: dict = {
            "model": self.chip.model,
            "segment": self.segment,
        }
        if self._state is not None:
            fmt = self._state.format
            parameters.update(
                n_pe=self._state.imprint_report.n_pe,
                n_replicas=fmt.n_replicas,
                layout_style=fmt.layout_style,
                balanced=fmt.balanced,
                structured=fmt.structured,
                ecc=fmt.ecc,
                accelerated=self._state.imprint_report.accelerated,
            )
        if self._calibration is not None:
            parameters["t_pew_us"] = self._calibration.t_pew_us
        seeds = {
            "chip_seed": self.chip.seed,
            "die_id": f"0x{self.chip.die_id:012X}",
        }
        return build_manifest(
            self.telemetry,
            kind="session",
            parameters=parameters,
            seeds=seeds,
            trace=self.chip.trace,
            verdict=self._last_verdict,
        )

    def write_manifest(self, path) -> dict:
        """Build :meth:`run_manifest` and save it as JSON to ``path``."""
        manifest = self.run_manifest()
        save_manifest(manifest, path)
        return manifest

    def _require_state(self) -> _SessionState:
        if self._state is None:
            raise RuntimeError(
                "no watermark imprinted in this session yet; "
                "call imprint() or imprint_payload() first"
            )
        return self._state
