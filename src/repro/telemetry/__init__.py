"""Unified telemetry: metrics, spans and run manifests.

Observability layer for the imprint/extract/verify stack (and anything
else built on the simulated devices):

* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms, cheap enough to stay on during characterisation sweeps;
* :class:`Telemetry` — hierarchical spans that bracket pipeline stages
  and account device-clock time, wall time, energy and op-count deltas
  against the bound :class:`~repro.device.tracing.OperationTrace`,
  optionally streaming JSON-lines records to a sink;
* :func:`build_manifest` and friends — machine-readable run manifests
  (parameters, seeds, per-stage timings, metric snapshots, verdicts)
  that ``repro telemetry summarize`` / ``diff`` render.

Typical use::

    from repro import FlashmarkSession, make_mcu
    from repro.telemetry import Telemetry, summarize_manifest

    session = FlashmarkSession(make_mcu(seed=7, n_segments=1),
                               telemetry=Telemetry())
    ...
    print(summarize_manifest(session.run_manifest()))

Library code that wants to be observable without forcing a telemetry
object on its callers uses the ambient context: :func:`current` returns
a disabled no-op by default, and ``with use(tel):`` installs a live one.
"""

from .manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    diff_manifests,
    load_manifest,
    sanitize,
    save_manifest,
    summarize_manifest,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .prometheus import (
    escape_label_value,
    metric_name,
    render_labeled,
    render_prometheus,
)
from .spans import (
    JsonlSink,
    ListSink,
    SpanRecord,
    Telemetry,
    current,
    set_current,
    use,
)

__all__ = [
    "Telemetry",
    "SpanRecord",
    "JsonlSink",
    "ListSink",
    "current",
    "set_current",
    "use",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "save_manifest",
    "load_manifest",
    "summarize_manifest",
    "diff_manifests",
    "sanitize",
    "metric_name",
    "render_prometheus",
    "render_labeled",
    "escape_label_value",
]
