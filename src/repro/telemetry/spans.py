"""Hierarchical spans over the device clock and the wall clock.

A span brackets one stage of work (``with telemetry.span("imprint")``)
and records, on exit, the stage's wall time, the device-clock time and
energy charged to the bound :class:`~repro.device.tracing.OperationTrace`,
and the per-operation count deltas — so a manifest can answer "where did
the time go and how many flash ops ran" per stage without any per-op
bookkeeping on the hot path.

Spans nest: the enclosing span's dotted path prefixes the child's, and
aggregation by path keeps manifests compact even when a calibration
sweep opens hundreds of identical child spans.  A disabled
:class:`Telemetry` hands out one shared no-op span, so instrumented
library code costs a ``None`` check and an empty context manager when
observability is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..trace.context import TraceContext
from .metrics import MetricsRegistry

__all__ = [
    "SpanRecord",
    "Telemetry",
    "JsonlSink",
    "ListSink",
    "current",
    "set_current",
    "use",
]


@dataclass
class SpanRecord:
    """One completed span."""

    name: str
    #: Slash-joined path of enclosing span names, e.g. ``"verify/extract"``.
    path: str
    depth: int
    wall_s: float
    #: Device-clock time charged to the bound trace during the span [us].
    device_us: float
    energy_uj: float
    #: Per-operation count deltas accrued during the span.
    op_counts: Dict[str, int] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Exception type name if the span exited via an exception.
    error: Optional[str] = None
    #: Wall-clock (unix) start time; 0.0 on legacy records.  Distributed
    #: trace assembly orders spans from different processes by this.
    t0_unix_s: float = 0.0
    #: Distributed-trace identity (None when recorded outside any
    #: :meth:`Telemetry.trace_scope`).
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "wall_s": self.wall_s,
            "device_us": self.device_us,
            "energy_uj": self.energy_uj,
            "op_counts": dict(self.op_counts),
            "attrs": dict(self.attrs),
            "error": self.error,
            "t0_unix_s": self.t0_unix_s,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            out["parent_id"] = self.parent_id
        return out


class _NullSpan:
    """Shared no-op span handed out by disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _TraceScope:
    """Scoped installation of a trace context on a :class:`Telemetry`."""

    __slots__ = ("_tel", "_ctx", "_base")

    def __init__(self, tel: "Telemetry", ctx: Optional[TraceContext]):
        self._tel = tel
        self._ctx = ctx
        self._base = 0

    def __enter__(self) -> Optional[TraceContext]:
        if self._ctx is not None:
            self._base = len(self._tel._ctx_stack)
            self._tel._ctx_stack.append(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._ctx is not None:
            del self._tel._ctx_stack[self._base :]
        return False


class _Span:
    """Live span handle (context manager)."""

    __slots__ = (
        "_tel",
        "name",
        "path",
        "depth",
        "attrs",
        "_t0_wall",
        "_t0_unix",
        "_t0_us",
        "_t0_uj",
        "_t0_ops",
        "_ctx",
        "_ctx_base",
    )

    def __init__(self, tel: "Telemetry", name: str, attrs: Dict[str, Any]):
        self._tel = tel
        self.name = name
        self.path = name
        self.depth = 0
        self.attrs = attrs
        self._ctx: Optional[TraceContext] = None
        self._ctx_base = 0

    def set(self, key: str, value: Any) -> None:
        """Attach a result attribute to the span."""
        self.attrs[key] = value

    def __enter__(self) -> "_Span":
        tel = self._tel
        stack = tel._stack
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
        # Under an active trace scope the span gets its own identity in
        # the distributed trace, parented to the enclosing unit of work.
        ctx_stack = tel._ctx_stack
        self._ctx_base = len(ctx_stack)
        if ctx_stack:
            self._ctx = ctx_stack[-1].child()
            ctx_stack.append(self._ctx)
        trace = tel.trace
        if trace is not None:
            self._t0_us = trace.now_us
            self._t0_uj = trace.energy_uj
            self._t0_ops = dict(trace.op_counts)
        else:
            self._t0_us = 0.0
            self._t0_uj = 0.0
            self._t0_ops = {}
        stack.append(self)
        self._t0_unix = time.time()
        self._t0_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = time.perf_counter() - self._t0_wall
        tel = self._tel
        # Pop self even if inner spans leaked (exception unwinding).
        stack = tel._stack
        while stack:
            if stack.pop() is self:
                break
        if self._ctx is not None:
            del tel._ctx_stack[self._ctx_base :]
        trace = tel.trace
        if trace is not None:
            device_us = trace.now_us - self._t0_us
            energy_uj = trace.energy_uj - self._t0_uj
            t0 = self._t0_ops
            op_counts = {
                k: v - t0.get(k, 0)
                for k, v in trace.op_counts.items()
                if v != t0.get(k, 0)
            }
        else:
            device_us = 0.0
            energy_uj = 0.0
            op_counts = {}
        tel._record(
            SpanRecord(
                name=self.name,
                path=self.path,
                depth=self.depth,
                wall_s=wall_s,
                device_us=device_us,
                energy_uj=energy_uj,
                op_counts=op_counts,
                attrs=self.attrs,
                error=exc_type.__name__ if exc_type is not None else None,
                t0_unix_s=self._t0_unix,
                trace_id=self._ctx.trace_id if self._ctx else None,
                span_id=self._ctx.span_id if self._ctx else None,
                parent_id=self._ctx.parent_id if self._ctx else None,
            )
        )
        return False


class JsonlSink:
    """Append-only JSON-lines sink (file path or open text handle).

    With ``max_bytes`` set and a *path* target, the file rotates once it
    would cross the cap: ``spans.jsonl`` becomes ``spans.jsonl.1``,
    prior rotations shift up (``.1`` -> ``.2`` ... up to
    ``max_files``, the oldest falling off the end) and a fresh file
    continues — so a week-long chaos soak or loadgen run keeps at most
    ``(max_files + 1) * max_bytes`` of span log on disk instead of
    growing without bound.  Rotation numbering picks up where a prior
    process left off: pre-existing ``.N`` files shift like any other.
    ``rotations`` counts completed rotations; a :class:`Telemetry`
    wired to the sink mirrors it into the ``telemetry.sink.rotations``
    counter.  Handle targets never rotate (the caller owns the handle's
    lifecycle).
    """

    def __init__(
        self,
        target,
        *,
        max_bytes: Optional[int] = None,
        max_files: int = 1,
    ):
        import io
        import os

        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        if max_files < 1:
            raise ValueError("max_files must be >= 1")
        self.rotations = 0
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._path = None
        if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
            self._path = os.fspath(target)
            self._fh = open(self._path, "a", encoding="utf-8")
            self._owns = True
            self._n_bytes = self._fh.tell()
        elif isinstance(target, io.TextIOBase) or hasattr(target, "write"):
            self._fh = target
            self._owns = False
            self._n_bytes = 0
        else:
            raise TypeError(f"unsupported sink target {target!r}")

    def emit(self, record: dict) -> None:
        import json

        from .manifest import sanitize

        line = json.dumps(sanitize(record)) + "\n"
        if (
            self.max_bytes is not None
            and self._path is not None
            and self._n_bytes > 0
            and self._n_bytes + len(line) > self.max_bytes
        ):
            self._rotate()
        self._fh.write(line)
        self._n_bytes += len(line)
        self._fh.flush()

    def _rotate(self) -> None:
        import os

        self._fh.close()
        # Shift .1 -> .2 ... descending so each os.replace lands on a
        # slot just vacated; .max_files is overwritten (dropped).
        for n in range(self.max_files - 1, 0, -1):
            src = f"{self._path}.{n}"
            if os.path.exists(src):
                os.replace(src, f"{self._path}.{n + 1}")
        os.replace(self._path, f"{self._path}.1")
        self._fh = open(self._path, "a", encoding="utf-8")
        self._n_bytes = 0
        self.rotations += 1

    def close(self) -> None:
        if self._owns:
            self._fh.close()


class ListSink:
    """In-memory sink (tests and programmatic consumers)."""

    def __init__(self):
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class Telemetry:
    """A run's observability context: spans + metrics + optional sink.

    Parameters
    ----------
    enabled:
        When False every entry point degenerates to a no-op; the module
        default (:func:`current`) ships disabled so uninstrumented
        programs pay nothing.
    sink:
        Optional :class:`JsonlSink` / :class:`ListSink`; every completed
        span is emitted as one record.
    trace:
        The device :class:`~repro.device.tracing.OperationTrace` spans
        measure against; bind later with :meth:`bind_trace`.
    max_spans:
        Retention cap on completed spans; excess spans still emit to the
        sink and aggregate into :meth:`span_stats` via the running
        totals, but their individual records are dropped (counted in
        ``dropped_spans``).
    """

    def __init__(
        self,
        enabled: bool = True,
        sink=None,
        registry: Optional[MetricsRegistry] = None,
        trace=None,
        max_spans: int = 100_000,
    ):
        self.enabled = enabled
        self.sink = sink
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.spans: List[SpanRecord] = []
        #: Aggregated collapsed-stack profile (plain dict, schema
        #: ``flashmark.profile/v1`` — see :mod:`repro.obs.profiler`).
        #: None until a profiler dump is merged in.
        self.profile: Optional[Dict[str, Any]] = None
        self._stack: List[_Span] = []
        self._ctx_stack: List[TraceContext] = []
        self._stats: Dict[str, Dict[str, float]] = {}
        self._sink_rotations_seen = 0

    # -- wiring -----------------------------------------------------------

    def bind_trace(self, trace) -> None:
        """Point span device-time accounting at ``trace``."""
        self.trace = trace

    # -- spans ------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    # -- distributed tracing ----------------------------------------------

    def trace_scope(self, ctx: Union["TraceContext", str, None]):
        """``with tel.trace_scope(ctx):`` — spans opened inside carry
        distributed-trace ids parented under ``ctx``.

        ``ctx`` may be a :class:`~repro.trace.context.TraceContext`, a
        traceparent string (as carried in the wire ``trace`` field), or
        ``None`` — the latter makes the scope a no-op so propagating
        call sites need no conditional.
        """
        if isinstance(ctx, str):
            ctx = TraceContext.from_traceparent(ctx)
        return _TraceScope(self, ctx if self.enabled else None)

    def current_trace(self) -> Optional[TraceContext]:
        """The innermost active trace context, or ``None``."""
        return self._ctx_stack[-1] if self._ctx_stack else None

    def record_span(
        self,
        name: str,
        wall_s: float,
        *,
        t0_unix_s: Optional[float] = None,
        ctx: Optional[TraceContext] = None,
        path: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        device_us: float = 0.0,
        energy_uj: float = 0.0,
    ) -> None:
        """Record an externally timed span.

        Async code (the verification server) interleaves many requests
        on one event loop, so context-manager nesting cannot express a
        request's stage structure; stages are timed explicitly and
        recorded here, each against its request's :class:`TraceContext`.
        """
        if not self.enabled:
            return
        self._record(
            SpanRecord(
                name=name,
                path=path if path is not None else name,
                depth=0,
                wall_s=wall_s,
                device_us=device_us,
                energy_uj=energy_uj,
                attrs=dict(attrs or {}),
                error=error,
                t0_unix_s=(
                    t0_unix_s if t0_unix_s is not None else time.time()
                ),
                trace_id=ctx.trace_id if ctx else None,
                span_id=ctx.span_id if ctx else None,
                parent_id=ctx.parent_id if ctx else None,
            )
        )

    def _record(self, rec: SpanRecord) -> None:
        st = self._stats.get(rec.path)
        if st is None:
            st = self._stats[rec.path] = {
                "count": 0,
                "wall_s": 0.0,
                "device_us": 0.0,
                "energy_uj": 0.0,
                "errors": 0,
            }
        st["count"] += 1
        st["wall_s"] += rec.wall_s
        st["device_us"] += rec.device_us
        st["energy_uj"] += rec.energy_uj
        if rec.error is not None:
            st["errors"] += 1
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
        else:
            self.spans.append(rec)
        if self.sink is not None:
            self.sink.emit({"type": "span", **rec.to_dict()})
            rotations = getattr(self.sink, "rotations", 0)
            if rotations > self._sink_rotations_seen:
                self.registry.counter("telemetry.sink.rotations").inc(
                    rotations - self._sink_rotations_seen
                )
                self._sink_rotations_seen = rotations

    def snapshot(self) -> dict:
        """A picklable dump of this context: span records + metrics.

        Worker processes hand this back to the parent run, which folds
        it in with :meth:`absorb`.
        """
        out = {
            "spans": [s.to_dict() for s in self.spans],
            "dropped_spans": self.dropped_spans,
            "metrics": self.registry.snapshot(),
        }
        if self.profile is not None:
            out["profile"] = {
                **self.profile,
                "samples": dict(self.profile.get("samples") or {}),
            }
        return out

    def merge_profile(self, dump: Optional[dict]) -> None:
        """Fold a collapsed-stack profile dump into this context.

        The dump is the plain-dict form produced by
        ``repro.obs.profiler.ProfileData.to_dict()`` (or another
        telemetry's ``profile`` block): stack strings map to sample
        counts, which add; durations and sample totals add; ``hz`` is
        carried through.  Kept schema-agnostic here so the telemetry
        layer never imports :mod:`repro.obs`.
        """
        if not self.enabled or not dump:
            return
        if self.profile is None:
            self.profile = {
                "schema": dump.get("schema", "flashmark.profile/v1"),
                "hz": float(dump.get("hz") or 0.0),
                "n_samples": 0,
                "duration_s": 0.0,
                "samples": {},
            }
        samples = self.profile["samples"]
        for stack, n in (dump.get("samples") or {}).items():
            samples[stack] = samples.get(stack, 0) + int(n)
        self.profile["n_samples"] += int(dump.get("n_samples") or 0)
        self.profile["duration_s"] += float(dump.get("duration_s") or 0.0)
        if dump.get("hz"):
            self.profile["hz"] = float(dump["hz"])

    def absorb(
        self,
        snapshot: dict,
        prefix: Optional[str] = None,
    ) -> None:
        """Merge a worker context's :meth:`snapshot` into this one.

        ``prefix`` re-roots the absorbed span paths (e.g. a worker's
        ``production.die`` span becomes
        ``production.batch/production.die`` when absorbed with prefix
        ``"production.batch"``), so merged manifests aggregate exactly
        as if the spans had been recorded in-process under the batch
        span.  Counters add; gauges take the worker value; histograms
        merge bucket-wise.
        """
        if not self.enabled:
            return
        depth_shift = prefix.count("/") + 1 if prefix else 0
        for rec in snapshot.get("spans", ()):
            path = rec["path"]
            if prefix:
                path = f"{prefix}/{path}"
            self._record(
                SpanRecord(
                    name=rec["name"],
                    path=path,
                    depth=rec["depth"] + depth_shift,
                    wall_s=rec["wall_s"],
                    device_us=rec["device_us"],
                    energy_uj=rec["energy_uj"],
                    op_counts=dict(rec.get("op_counts") or {}),
                    attrs=dict(rec.get("attrs") or {}),
                    error=rec.get("error"),
                    # Trace identity survives the process hop untouched:
                    # worker spans were already parented under the
                    # engine context their job carried.
                    t0_unix_s=rec.get("t0_unix_s", 0.0),
                    trace_id=rec.get("trace_id"),
                    span_id=rec.get("span_id"),
                    parent_id=rec.get("parent_id"),
                )
            )
        self.dropped_spans += snapshot.get("dropped_spans", 0)
        metrics = snapshot.get("metrics")
        if metrics:
            self.registry.merge_snapshot(metrics)
        self.merge_profile(snapshot.get("profile"))

    def root_spans(self) -> List[SpanRecord]:
        """Completed top-level spans, in completion order."""
        return [s for s in self.spans if s.depth == 0]

    def span_stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregated per-path span statistics (running totals)."""
        return {p: dict(st) for p, st in self._stats.items()}

    def device_time_total_us(self) -> float:
        """Device time covered by top-level spans (children not double
        counted)."""
        return sum(s.device_us for s in self.root_spans())

    # -- metric helpers (no-ops when disabled) ----------------------------

    def count(self, name: str, n: int = 1) -> None:
        if self.enabled:
            self.registry.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.registry.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        *,
        exemplar: Optional[Dict[str, str]] = None,
    ) -> None:
        if self.enabled:
            self.registry.histogram(name, buckets).observe(
                value, exemplar=exemplar
            )


#: Module-level default telemetry: disabled, so library instrumentation
#: is free unless a caller opts in.
_current = Telemetry(enabled=False)


def current() -> Telemetry:
    """The ambient telemetry context instrumented code falls back to."""
    return _current


def set_current(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the ambient context; returns the old one."""
    global _current
    old = _current
    _current = telemetry
    return old


class use:
    """``with use(tel):`` — scoped installation of an ambient context."""

    def __init__(self, telemetry: Telemetry):
        self._telemetry = telemetry
        self._old: Optional[Telemetry] = None

    def __enter__(self) -> Telemetry:
        self._old = set_current(self._telemetry)
        return self._telemetry

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_current(self._old)
        return False
