"""Prometheus text exposition of a :class:`MetricsRegistry` snapshot.

One renderer shared by the verification server's ``/metrics`` endpoint
and by tests: internal metric names are dotted
(``service.rejected.rate``, ``faults.injected.service.read``) while
Prometheus names admit only ``[a-zA-Z0-9_:]``, so every name is
normalized through :func:`metric_name` — dots and dashes become
underscores, anything else illegal is dropped, and the ``flashmark_``
prefix namespaces the exposition.  The mapping is stable: two distinct
internal names never collide unless they already differed only in
punctuation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["metric_name", "render_prometheus"]

PREFIX = "flashmark_"

_ALLOWED = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def metric_name(name: str, prefix: str = PREFIX) -> str:
    """Normalize an internal dotted metric name for Prometheus.

    ``service.rejected.bad_request`` -> ``flashmark_service_rejected_bad_request``.
    """
    translated = "".join(
        c if c in _ALLOWED else "_" for c in name.replace(".", "_")
    )
    out = prefix + translated
    if out and out[0].isdigit():
        out = "_" + out
    return out


def render_prometheus(
    snapshot: dict,
    *,
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text
    format (version 0.0.4).

    ``extra_gauges`` carries live values that are not registry metrics
    (queue depth, open connections) — exposed as plain gauges.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        pname = metric_name(name)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        if value is not None:
            pname = metric_name(name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {value}")
    for name, dump in snapshot.get("histograms", {}).items():
        base = metric_name(name)
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for bound, count in zip(dump["buckets"], dump["counts"]):
            cumulative += count
            lines.append(f'{base}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{base}_bucket{{le="+Inf"}} {dump["count"]}')
        lines.append(f"{base}_count {dump['count']}")
        lines.append(f"{base}_sum {dump['sum']}")
    for name, value in (extra_gauges or {}).items():
        pname = metric_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {value}")
    return "\n".join(lines) + "\n"
