"""Prometheus text exposition of a :class:`MetricsRegistry` snapshot.

One renderer shared by the verification server's ``/metrics`` endpoint
and by tests: internal metric names are dotted
(``service.rejected.rate``, ``faults.injected.service.read``) while
Prometheus names admit only ``[a-zA-Z0-9_:]``, so every name is
normalized through :func:`metric_name` — dots and dashes become
underscores, anything else illegal is dropped, and the ``flashmark_``
prefix namespaces the exposition.

Normalization is lossy: two distinct internal names that differ only in
punctuation (``engine.hung-skips`` vs ``engine.hung_skips``) would land
on the same exposition name and silently merge.  :func:`render_prometheus`
detects those collisions across the whole snapshot at render time and
suffixes each collided name with a short, deterministic hash of its
internal identity — stable across renders and processes, so scraped
series never alias.

Histogram buckets render with OpenMetrics-style exemplars when the
snapshot carries them (see :class:`~repro.telemetry.metrics.Histogram`):
``..._bucket{le="0.05"} 12 # {trace_id="..."} 0.048 1754650000.1``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "metric_name",
    "render_prometheus",
    "render_labeled",
    "escape_label_value",
]

PREFIX = "flashmark_"

_ALLOWED = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def metric_name(name: str, prefix: str = PREFIX) -> str:
    """Normalize an internal dotted metric name for Prometheus.

    ``service.rejected.bad_request`` -> ``flashmark_service_rejected_bad_request``.
    """
    translated = "".join(
        c if c in _ALLOWED else "_" for c in name.replace(".", "_")
    )
    out = prefix + translated
    if out and out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Dict[str, str]) -> str:
    return ",".join(
        f'{k}="{escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )


def _resolve_names(
    idents: Iterable[Tuple[str, str]],
) -> Dict[Tuple[str, str], str]:
    """Map each (kind, internal-name) identity to its exposition name.

    Identities whose normalized names collide each get a 6-hex-digit
    suffix derived from the identity itself, so the assignment depends
    only on the colliding name — not on which other metrics happen to
    be co-resident in the snapshot.
    """
    idents = list(idents)
    base = {ident: metric_name(ident[1]) for ident in idents}
    counts: Dict[str, int] = {}
    for name in base.values():
        counts[name] = counts.get(name, 0) + 1
    out: Dict[Tuple[str, str], str] = {}
    for ident, name in base.items():
        if counts[name] > 1:
            digest = hashlib.sha256(
                f"{ident[0]}:{ident[1]}".encode("utf-8")
            ).hexdigest()[:6]
            name = f"{name}_{digest}"
        out[ident] = name
    return out


def _exemplar_suffix(ex: dict) -> str:
    """OpenMetrics exemplar clause for a bucket sample line."""
    labels = _render_labels(ex.get("labels") or {})
    out = f" # {{{labels}}} {ex['value']}"
    unix_s = ex.get("unix_s")
    if unix_s:
        out += f" {unix_s}"
    return out


def render_prometheus(
    snapshot: dict,
    *,
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text
    format (version 0.0.4).

    ``extra_gauges`` carries live values that are not registry metrics
    (queue depth, open connections) — exposed as plain gauges.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    extra = extra_gauges or {}
    names = _resolve_names(
        [("counter", n) for n in counters]
        + [("gauge", n) for n, v in gauges.items() if v is not None]
        + [("histogram", n) for n in histograms]
        + [("extra", n) for n in extra]
    )
    lines: List[str] = []
    for name, value in counters.items():
        pname = names[("counter", name)]
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {value}")
    for name, value in gauges.items():
        if value is not None:
            pname = names[("gauge", name)]
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {value}")
    for name, dump in histograms.items():
        base = names[("histogram", name)]
        lines.append(f"# TYPE {base} histogram")
        exemplars = dump.get("exemplars") or {}
        cumulative = 0
        for i, (bound, count) in enumerate(
            zip(dump["buckets"], dump["counts"])
        ):
            cumulative += count
            line = f'{base}_bucket{{le="{bound}"}} {cumulative}'
            ex = exemplars.get(str(i))
            if ex is not None:
                line += _exemplar_suffix(ex)
            lines.append(line)
        inf_line = f'{base}_bucket{{le="+Inf"}} {dump["count"]}'
        ex = exemplars.get(str(len(dump["buckets"])))
        if ex is not None:
            inf_line += _exemplar_suffix(ex)
        lines.append(inf_line)
        lines.append(f"{base}_count {dump['count']}")
        lines.append(f"{base}_sum {dump['sum']}")
    for name, value in extra.items():
        pname = names[("extra", name)]
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {value}")
    return "\n".join(lines) + "\n"


def render_labeled(
    name: str,
    series: Iterable[Tuple[Dict[str, str], float]],
    *,
    kind: str = "counter",
) -> List[str]:
    """Render one labeled metric family as exposition lines.

    For per-entity series a flat registry cannot express — e.g. the
    fleet router's ``flashmark_fleet_evictions_total{shard="shard-2"}``.
    Callers append the returned lines to a :func:`render_prometheus`
    body.
    """
    pname = metric_name(name)
    lines = [f"# TYPE {pname} {kind}"]
    for labels, value in series:
        if labels:
            lines.append(f"{pname}{{{_render_labels(labels)}}} {value}")
        else:
            lines.append(f"{pname} {value}")
    return lines
