"""Run manifests: the machine-readable record of one run.

A manifest captures everything needed to interpret (and re-run) a
measurement after the fact: the parameters and seeds, per-stage spans
with device/wall time and op counts, the metrics snapshot, the device
totals, and the outcome.  ``repro telemetry summarize`` renders one;
``repro telemetry diff`` compares two — the before/after substrate every
perf or scaling change should be judged on.

Schema (``flashmark.run-manifest/v1``)::

    {
      "schema": "flashmark.run-manifest/v1",
      "kind": "session" | "verify" | "production_batch" | ...,
      "created_unix_s": 1738000000.0,
      "parameters": {...},          # run inputs
      "seeds": {...},               # everything needed to reproduce
      "stages": [                   # top-level spans, aggregated by name
        {"name": "imprint", "count": 1, "device_us": ..., "wall_s": ...,
         "energy_uj": ..., "op_counts": {...}, "attrs": {...}}
      ],
      "span_stats": {"verify/extract": {"count": 1, ...}, ...},
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "device": {"now_us": ..., "energy_uj": ..., "op_counts": {...},
                 "dropped_events": 0},
      "verdict": "authentic" | null,
      ...                           # kind-specific extras
    }
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "MANIFEST_SCHEMA",
    "sanitize",
    "build_manifest",
    "save_manifest",
    "load_manifest",
    "summarize_manifest",
    "diff_manifests",
]

MANIFEST_SCHEMA = "flashmark.run-manifest/v1"


def sanitize(obj: Any) -> Any:
    """Coerce numpy scalars/arrays and tuples into plain JSON types."""
    if isinstance(obj, dict):
        return {str(k): sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize(v) for v in obj]
    if obj is None or isinstance(obj, (str, bool)):
        return obj
    # numpy scalars expose item(); check before int/float because
    # np.float64 subclasses float but doesn't serialize everywhere.
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):
        return obj.item()
    if isinstance(obj, (int, float)):
        return obj
    if hasattr(obj, "tolist"):
        return sanitize(obj.tolist())
    if hasattr(obj, "name") and hasattr(obj, "value"):  # enums
        return obj.value
    return str(obj)


def _aggregate_stages(telemetry) -> List[dict]:
    """Top-level spans folded by name, preserving first-seen order."""
    stages: Dict[str, dict] = {}
    order: List[str] = []
    for span in telemetry.root_spans():
        st = stages.get(span.name)
        if st is None:
            st = stages[span.name] = {
                "name": span.name,
                "count": 0,
                "device_us": 0.0,
                "wall_s": 0.0,
                "energy_uj": 0.0,
                "op_counts": {},
                "attrs": {},
                "errors": 0,
            }
            order.append(span.name)
        st["count"] += 1
        st["device_us"] += span.device_us
        st["wall_s"] += span.wall_s
        st["energy_uj"] += span.energy_uj
        for op, n in span.op_counts.items():
            st["op_counts"][op] = st["op_counts"].get(op, 0) + n
        st["attrs"].update(span.attrs)
        if span.error is not None:
            st["errors"] += 1
    return [stages[name] for name in order]


def build_manifest(
    telemetry,
    kind: str,
    parameters: Optional[dict] = None,
    seeds: Optional[dict] = None,
    trace=None,
    verdict: Optional[str] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a run manifest from a telemetry context.

    ``trace`` defaults to the telemetry's bound trace and fills the
    ``device`` totals block; stage device times should reconcile with
    ``trace.now_us`` whenever the spans covered every charged operation.
    """
    if trace is None:
        trace = telemetry.trace
    manifest: dict = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "created_unix_s": time.time(),
        "parameters": parameters or {},
        "seeds": seeds or {},
        "stages": _aggregate_stages(telemetry),
        "span_stats": telemetry.span_stats(),
        "dropped_spans": telemetry.dropped_spans,
        "metrics": telemetry.registry.snapshot(),
        "verdict": verdict,
    }
    if trace is not None:
        manifest["device"] = {
            "now_us": trace.now_us,
            "energy_uj": trace.energy_uj,
            "op_counts": dict(trace.op_counts),
            "dropped_events": trace.dropped_events,
        }
    if extra:
        manifest.update(extra)
    return sanitize(manifest)


def save_manifest(manifest: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(sanitize(manifest), fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_manifest(path) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    schema = manifest.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: not a run manifest (schema={schema!r}, "
            f"expected {MANIFEST_SCHEMA!r})"
        )
    return manifest


# -- rendering -------------------------------------------------------------


def _fmt_us(us: float) -> str:
    if us >= 1e6:
        return f"{us / 1e6:.2f} s"
    if us >= 1e3:
        return f"{us / 1e3:.2f} ms"
    return f"{us:.1f} us"


def _top_ops(op_counts: dict, n: int = 3) -> str:
    items = sorted(op_counts.items(), key=lambda kv: -kv[1])[:n]
    return ", ".join(f"{op}x{cnt}" for op, cnt in items) or "-"


def summarize_manifest(manifest: dict) -> str:
    """Human-readable report of one manifest."""
    from ..analysis import format_table

    lines: List[str] = []
    lines.append(
        f"run manifest [{manifest.get('kind', '?')}] "
        f"schema={manifest.get('schema', '?')}"
    )
    params = manifest.get("parameters") or {}
    if params:
        lines.append(
            "parameters: "
            + ", ".join(f"{k}={v}" for k, v in params.items())
        )
    seeds = manifest.get("seeds") or {}
    if seeds:
        lines.append(
            "seeds:      " + ", ".join(f"{k}={v}" for k, v in seeds.items())
        )

    stages = manifest.get("stages") or []
    if stages:
        rows = [
            [
                s["name"],
                s["count"],
                _fmt_us(s["device_us"]),
                f"{s['wall_s'] * 1e3:.1f}",
                f"{s['energy_uj'] / 1e3:.2f}",
                _top_ops(s.get("op_counts", {})),
            ]
            for s in stages
        ]
        lines.append(
            format_table(
                ["stage", "n", "device", "wall [ms]", "energy [mJ]", "top ops"],
                rows,
                title="stages",
            )
        )

    span_stats = manifest.get("span_stats") or {}
    nested = {p: st for p, st in span_stats.items() if "/" in p}
    if nested:
        rows = [
            [p, st["count"], _fmt_us(st["device_us"]), f"{st['wall_s'] * 1e3:.1f}"]
            for p, st in sorted(nested.items())
        ]
        lines.append(
            format_table(
                ["span path", "n", "device", "wall [ms]"],
                rows,
                title="nested spans",
            )
        )

    gauges = (manifest.get("metrics") or {}).get("gauges") or {}
    if gauges:
        rows = [[name, value] for name, value in gauges.items()]
        lines.append(format_table(["gauge", "value"], rows, title="gauges"))
    counters = (manifest.get("metrics") or {}).get("counters") or {}
    if counters:
        rows = [[name, value] for name, value in counters.items()]
        lines.append(format_table(["counter", "value"], rows, title="counters"))

    device = manifest.get("device")
    if device:
        lines.append(
            f"device totals: clock {_fmt_us(device['now_us'])}, "
            f"energy {device['energy_uj'] / 1e3:.2f} mJ, "
            f"{sum(device['op_counts'].values())} ops"
            + (
                f", {device['dropped_events']} trace events dropped"
                if device.get("dropped_events")
                else ""
            )
        )
        if stages:
            covered = sum(s["device_us"] for s in stages)
            total = device["now_us"]
            pct = 100.0 * covered / total if total else 100.0
            lines.append(
                f"stage coverage: {_fmt_us(covered)} of "
                f"{_fmt_us(total)} device time in stages ({pct:.1f}%)"
            )
    kind_block = _summarize_kind(manifest)
    if kind_block:
        lines.append(kind_block)
    verdict = manifest.get("verdict")
    if verdict is not None:
        lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def _summarize_kind(manifest: dict) -> Optional[str]:
    """Kind-specific section: manifests that carry a structured result
    block (loadgen's ``load``, chaos's ``chaos``) render it instead of
    leaving the reader to dig through raw JSON."""
    from ..analysis import format_table

    kind = manifest.get("kind")
    if kind == "loadgen" and isinstance(manifest.get("load"), dict):
        load = manifest["load"]
        latency = load.get("latency") or {}
        rows = [
            ["mode", load.get("mode", "?")],
            [
                "requests",
                f"{load.get('completed', 0)}/{load.get('requests', 0)} "
                f"completed, {load.get('rejected', 0)} rejected",
            ],
            ["throughput", f"{load.get('throughput_rps', 0.0):.1f} req/s"],
        ]
        if latency.get("count"):
            rows.append(
                [
                    "latency",
                    f"p50 {latency['p50_ms']:.1f} ms, "
                    f"p95 {latency['p95_ms']:.1f} ms, "
                    f"p99 {latency['p99_ms']:.1f} ms",
                ]
            )
        for code, count in (load.get("errors_by_code") or {}).items():
            rows.append([f"error {code}", count])
        if load.get("mismatches"):
            rows.append(["verdict mismatches", load["mismatches"]])
        if load.get("traced"):
            rows.append(["traced requests", load["traced"]])
        return format_table(["load", "value"], rows, title="load run")
    if kind == "chaos" and isinstance(manifest.get("chaos"), dict):
        chaos = manifest["chaos"]
        rows = [
            [
                "responses",
                f"{chaos.get('completed', 0)}/{chaos.get('requests', 0)} "
                f"ok, {sum((chaos.get('errors_by_code') or {}).values())} "
                "error(s)",
            ],
            [
                "faults injected",
                f"{len(chaos.get('injected') or [])} of "
                f"{len((chaos.get('plan') or {}).get('specs') or [])} "
                "scheduled",
            ],
            ["reconnects", chaos.get("reconnects", 0)],
            ["divergences", len(chaos.get("divergences") or [])],
        ]
        for code, count in (chaos.get("errors_by_code") or {}).items():
            rows.append([f"error {code}", count])
        for label, passed in (chaos.get("invariants") or {}).items():
            rows.append([f"invariant: {label}", "ok" if passed else "FAIL"])
        rows.append(
            ["outcome", "passed" if chaos.get("passed") else "FAILED"]
        )
        return format_table(["chaos", "value"], rows, title="chaos soak")
    return None


def diff_manifests(a: dict, b: dict) -> str:
    """Compare two manifests stage-by-stage and gauge-by-gauge."""
    from ..analysis import format_table

    lines: List[str] = []
    lines.append(
        f"manifest diff: [{a.get('kind', '?')}] -> [{b.get('kind', '?')}]"
    )

    def _stage_map(m: dict) -> Dict[str, dict]:
        return {s["name"]: s for s in m.get("stages") or []}

    sa, sb = _stage_map(a), _stage_map(b)
    names = list(sa)
    names += [n for n in sb if n not in sa]
    rows = []
    for name in names:
        da = sa.get(name, {}).get("device_us")
        db = sb.get(name, {}).get("device_us")
        wa = sa.get(name, {}).get("wall_s")
        wb = sb.get(name, {}).get("wall_s")
        if da is not None and db is not None:
            delta = db - da
            pct = f"{100.0 * delta / da:+.1f}%" if da else "n/a"
            rows.append(
                [name, _fmt_us(da), _fmt_us(db), _fmt_us(delta), pct,
                 f"{(wb - wa) * 1e3:+.1f}"]
            )
        else:
            rows.append(
                [
                    name,
                    _fmt_us(da) if da is not None else "(absent)",
                    _fmt_us(db) if db is not None else "(absent)",
                    "-",
                    "-",
                    "-",
                ]
            )
    if rows:
        lines.append(
            format_table(
                ["stage", "device A", "device B", "delta", "delta %",
                 "wall delta [ms]"],
                rows,
                title="stage device time",
            )
        )

    ga = (a.get("metrics") or {}).get("gauges") or {}
    gb = (b.get("metrics") or {}).get("gauges") or {}
    names = list(ga)
    names += [n for n in gb if n not in ga]
    rows = []
    for name in names:
        va, vb = ga.get(name), gb.get(name)
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
            rows.append([name, va, vb, vb - va])
        else:
            rows.append(
                [
                    name,
                    va if va is not None else "(absent)",
                    vb if vb is not None else "(absent)",
                    "-",
                ]
            )
    if rows:
        lines.append(
            format_table(["gauge", "A", "B", "delta"], rows, title="gauges")
        )

    kind_block = _diff_kind(a, b)
    if kind_block:
        lines.append(kind_block)

    va, vb = a.get("verdict"), b.get("verdict")
    if va is not None or vb is not None:
        lines.append(f"verdict: {va} -> {vb}")
    da, db = a.get("device"), b.get("device")
    if da and db:
        lines.append(
            f"device clock: {_fmt_us(da['now_us'])} -> "
            f"{_fmt_us(db['now_us'])} "
            f"({_fmt_us(db['now_us'] - da['now_us'])} delta)"
        )
    return "\n".join(lines)


def _diff_kind(a: dict, b: dict) -> Optional[str]:
    """Kind-specific diff rows for two manifests of the same kind."""
    from ..analysis import format_table

    if a.get("kind") != b.get("kind"):
        return None
    kind = a.get("kind")
    if (
        kind == "loadgen"
        and isinstance(a.get("load"), dict)
        and isinstance(b.get("load"), dict)
    ):
        la, lb = a["load"], b["load"]
        rows = [
            [
                "throughput [req/s]",
                f"{la.get('throughput_rps', 0.0):.1f}",
                f"{lb.get('throughput_rps', 0.0):.1f}",
                f"{lb.get('throughput_rps', 0.0) - la.get('throughput_rps', 0.0):+.1f}",
            ],
            [
                "completed",
                la.get("completed", 0),
                lb.get("completed", 0),
                lb.get("completed", 0) - la.get("completed", 0),
            ],
            [
                "rejected",
                la.get("rejected", 0),
                lb.get("rejected", 0),
                lb.get("rejected", 0) - la.get("rejected", 0),
            ],
        ]
        for q in ("p50_ms", "p95_ms", "p99_ms"):
            qa = (la.get("latency") or {}).get(q)
            qb = (lb.get("latency") or {}).get(q)
            if qa is not None and qb is not None:
                rows.append(
                    [f"latency {q}", f"{qa:.1f}", f"{qb:.1f}",
                     f"{qb - qa:+.1f}"]
                )
        return format_table(
            ["load", "A", "B", "delta"], rows, title="load run"
        )
    if (
        kind == "chaos"
        and isinstance(a.get("chaos"), dict)
        and isinstance(b.get("chaos"), dict)
    ):
        ca, cb = a["chaos"], b["chaos"]
        rows = [
            [
                "faults injected",
                len(ca.get("injected") or []),
                len(cb.get("injected") or []),
            ],
            [
                "responses ok",
                ca.get("completed", 0),
                cb.get("completed", 0),
            ],
            [
                "errors",
                sum((ca.get("errors_by_code") or {}).values()),
                sum((cb.get("errors_by_code") or {}).values()),
            ],
            [
                "outcome",
                "passed" if ca.get("passed") else "FAILED",
                "passed" if cb.get("passed") else "FAILED",
            ],
        ]
        return format_table(["chaos", "A", "B"], rows, title="chaos soak")
    return None
