"""Metrics primitives: counters, gauges and fixed-bucket histograms.

The registry is deliberately minimal — a metric is a named slot holding
a Python number, and recording into one is an attribute store or an
integer add.  That keeps instrumentation cheap enough to leave enabled
during characterisation sweeps that issue millions of operations: the
hot path never allocates, and histogram buckets are fixed at creation
so ``observe`` is a bisect plus two adds.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: a 1-2-5 decade ladder wide enough for
#: microsecond-to-second device durations (values are unit-free).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0**e for e in range(0, 7) for m in (1.0, 2.0, 5.0)
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge instead")
        self.value += n


class Gauge:
    """A number that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram (cumulative-style upper bounds).

    ``buckets`` are sorted upper bounds; an implicit +inf bucket catches
    everything beyond the last bound.  Bounds are frozen at creation so
    observing is allocation-free.

    An observation may carry an *exemplar* — a small label dict (trace
    id, receipt id) identifying the concrete event behind the sample.
    Each bucket keeps the exemplar of its slowest observation per
    ``exemplar_window_s`` window, so a ``/metrics`` scrape can point an
    operator from a p99 bucket to the exact trace that landed there.
    Observations without an exemplar pay nothing beyond a None check.
    """

    __slots__ = (
        "name", "buckets", "counts", "count", "sum",
        "exemplars", "exemplar_window_s",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        *,
        exemplar_window_s: float = 60.0,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bucket bounds must be sorted")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        #: bucket index -> {"value", "unix_s", "labels"}; the +inf
        #: bucket is index ``len(buckets)``.
        self.exemplars: Dict[int, dict] = {}
        self.exemplar_window_s = float(exemplar_window_s)

    def observe(
        self,
        value: float,
        exemplar: Optional[Dict[str, str]] = None,
        unix_s: Optional[float] = None,
    ) -> None:
        value = float(value)
        idx = bisect_left(self.buckets, value)
        self.counts[idx] += 1
        self.count += 1
        self.sum += value
        if exemplar is not None:
            self._note_exemplar(idx, value, exemplar, unix_s)

    def _note_exemplar(
        self,
        idx: int,
        value: float,
        labels: Dict[str, str],
        unix_s: Optional[float],
    ) -> None:
        now = float(unix_s) if unix_s is not None else time.time()
        cur = self.exemplars.get(idx)
        # Keep the slowest observation per bucket per window; a new
        # window replaces unconditionally so exemplars stay fresh.
        if (
            cur is None
            or value >= cur["value"]
            or now - cur["unix_s"] >= self.exemplar_window_s
        ):
            self.exemplars[idx] = {
                "value": value,
                "unix_s": now,
                "labels": {k: str(v) for k, v in labels.items()},
            }

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket boundaries.

        Returns the upper bound of the bucket containing the ``q``-th
        sample (the last finite bound for the overflow bucket).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]


class MetricsRegistry:
    """Named counters, gauges and histograms with get-or-create access."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return h

    def snapshot(self) -> dict:
        """A plain-dict dump of every metric (manifest ``metrics`` block)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: self._dump_histogram(h)
                for n, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def _dump_histogram(h: Histogram) -> dict:
        dump = {
            "buckets": list(h.buckets),
            "counts": list(h.counts),
            "count": h.count,
            "sum": h.sum,
            "mean": h.mean,
        }
        if h.exemplars:
            # String keys so the dump survives a JSON round-trip.
            dump["exemplars"] = {
                str(i): dict(e) for i, e in sorted(h.exemplars.items())
            }
        return dump

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Used to aggregate metrics recorded in worker processes into the
        parent run's registry: counters add, gauges take the incoming
        value (last write wins), histograms require identical bucket
        bounds and add their counts.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, value in (snapshot.get("gauges") or {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, dump in (snapshot.get("histograms") or {}).items():
            bounds = tuple(float(b) for b in dump["buckets"])
            h = self.histogram(name, bounds)
            if h.buckets != bounds:
                raise ValueError(
                    f"histogram {name!r}: cannot merge mismatched "
                    f"bucket bounds"
                )
            for i, c in enumerate(dump["counts"]):
                h.counts[i] += int(c)
            h.count += int(dump["count"])
            h.sum += float(dump["sum"])
            for idx_s, ex in (dump.get("exemplars") or {}).items():
                h._note_exemplar(
                    int(idx_s),
                    float(ex["value"]),
                    ex.get("labels") or {},
                    ex.get("unix_s"),
                )

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
