"""Trace exporters: collapsed-stack (flamegraph) and Chrome trace_event.

Two interchange formats cover the common viewers:

* :func:`to_collapsed_stacks` — one ``root;child;leaf <value>`` line
  per stack, the format ``flamegraph.pl`` and speedscope ingest.
  Values are *self* microseconds (wall time not covered by children),
  so frame widths sum correctly.
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON that
  ``chrome://tracing`` / Perfetto load: one complete ``"X"`` event per
  span, one timeline row (tid) per trace.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

__all__ = ["to_collapsed_stacks", "to_chrome_trace"]


def _tree(doc: dict):
    by_id = {rec["span_id"]: rec for rec in doc["spans"]}
    children: Dict[str, List[dict]] = {}
    roots: List[dict] = []
    for rec in doc["spans"]:
        parent = rec.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)
    return roots, children


def to_collapsed_stacks(docs: Iterable[dict]) -> str:
    """Collapsed-stack lines for a set of trace documents.

    Identical stacks across traces aggregate (semicolon-joined frame
    names are the identity), so a 500-request load run folds into a
    handful of wide frames instead of 500 near-identical ones.
    """
    weights: Dict[str, int] = {}

    def _walk(rec: dict, children: Dict[str, List[dict]], stack: str):
        frame = str(rec.get("name", "?")).replace(";", "_")
        stack = f"{stack};{frame}" if stack else frame
        kids = children.get(rec["span_id"], [])
        child_wall = sum(k.get("wall_s", 0.0) for k in kids)
        self_us = max(0.0, rec.get("wall_s", 0.0) - child_wall) * 1e6
        weights[stack] = weights.get(stack, 0) + int(round(self_us))
        for kid in kids:
            _walk(kid, children, stack)

    for doc in docs:
        roots, children = _tree(doc)
        for rec in roots:
            _walk(rec, children, "")
    return "\n".join(
        f"{stack} {weight}"
        for stack, weight in sorted(weights.items())
        if weight > 0
    ) + ("\n" if weights else "")


def to_chrome_trace(docs: Iterable[dict]) -> dict:
    """Chrome ``trace_event`` JSON for a set of trace documents.

    Each trace gets its own thread row; timestamps are the recorded
    unix starts in microseconds, so concurrent requests line up the way
    they actually overlapped on the server.
    """
    events: List[dict] = []
    for tid, doc in enumerate(docs, start=1):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"trace {doc['trace_id'][:8]}"},
            }
        )
        for rec in doc["spans"]:
            args = {
                "span_id": rec["span_id"],
                "trace_id": rec.get("trace_id"),
            }
            if rec.get("device_us"):
                args["device_us"] = rec["device_us"]
            if rec.get("attrs"):
                args.update(
                    {f"attr.{k}": v for k, v in rec["attrs"].items()}
                )
            events.append(
                {
                    "name": rec.get("name", "?"),
                    "cat": "flashmark",
                    "ph": "X",
                    "ts": rec.get("t0_unix_s", 0.0) * 1e6,
                    "dur": rec.get("wall_s", 0.0) * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(docs: Iterable[dict], path) -> None:
    """Write :func:`to_chrome_trace` output as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(docs), fh, indent=1)
        fh.write("\n")
