"""Assemble distributed traces from span-record streams.

Spans are recorded independently by the client, the server's event
loop, and engine pool workers; each lands in some JSONL sink as a
``{"type": "span", ..., "trace_id": ..., "span_id": ..., "parent_id":
...}`` record.  This module re-threads them: group records by
``trace_id``, link parent pointers into a tree, and emit one
``flashmark.trace/v1`` document per trace with the critical path and a
per-stage latency breakdown.

Two clocks appear in the records.  ``wall_s`` / ``t0_unix_s`` are host
wall-clock measurements — what a user actually waited — while
``device_us`` is simulated device-clock time charged by the operation
trace.  The document reports both and never mixes them: stage
breakdowns and the critical path are wall-clock (the serving question),
device totals ride along per span (the fidelity question).

Span names map onto pipeline stages::

    client.request      client   (send -> verdict, client-observed)
      server.request    server   (admission -> response write)
        server.queue_wait   queue_wait  (bounded queue residency)
        server.batch_wait   batch_wait  (micro-batch window + grouping)
        server.decode       decode      (npz chip blob decode)
        server.engine       engine      (verify_population call)
          verify.chip       engine_worker  (pool-worker verification)
        server.registry     registry    (history write incl. retries)
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "TRACE_SCHEMA",
    "STAGE_OF_SPAN",
    "SERVER_STAGES",
    "read_span_records",
    "collect_traces",
    "assemble_trace",
    "assemble_traces",
    "format_trace",
    "format_critical_path",
]

TRACE_SCHEMA = "flashmark.trace/v1"

#: Span name -> pipeline stage label.
STAGE_OF_SPAN: Dict[str, str] = {
    "client.request": "client",
    "server.request": "server",
    "server.queue_wait": "queue_wait",
    "server.batch_wait": "batch_wait",
    "server.decode": "decode",
    "server.engine": "engine",
    "server.registry": "registry",
    "verify.chip": "engine_worker",
}

#: The stages whose wall times partition the server-side latency
#: (``engine_worker`` nests inside ``engine`` and would double count).
SERVER_STAGES = ("queue_wait", "batch_wait", "decode", "engine", "registry")


def read_span_records(paths: Sequence) -> List[dict]:
    """Load traced span records from JSONL sink files.

    Lines that are not span records, carry no trace id, or fail to
    parse are skipped — sinks interleave spans with other record types
    and may end mid-line after a crash.
    """
    records: List[dict] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(rec, dict):
                    continue
                if rec.get("type", "span") != "span":
                    continue
                if rec.get("trace_id") and rec.get("span_id"):
                    records.append(rec)
    return records


def collect_traces(records: Iterable[dict]) -> Dict[str, List[dict]]:
    """Group span records by trace id (insertion-ordered)."""
    traces: Dict[str, List[dict]] = {}
    for rec in records:
        tid = rec.get("trace_id")
        if tid and rec.get("span_id"):
            traces.setdefault(tid, []).append(rec)
    return traces


def _dedup(spans: List[dict]) -> List[dict]:
    """Drop duplicate span ids (the same sink read twice)."""
    seen = set()
    out = []
    for rec in spans:
        sid = rec["span_id"]
        if sid in seen:
            continue
        seen.add(sid)
        out.append(rec)
    return out


def _end(rec: dict) -> float:
    return rec.get("t0_unix_s", 0.0) + rec.get("wall_s", 0.0)


def assemble_trace(trace_id: str, spans: List[dict]) -> dict:
    """One ``flashmark.trace/v1`` document from the spans of a trace."""
    spans = sorted(
        _dedup(spans), key=lambda r: (r.get("t0_unix_s", 0.0), r["span_id"])
    )
    by_id = {rec["span_id"]: rec for rec in spans}
    children: Dict[str, List[dict]] = {}
    roots: List[dict] = []
    orphans: List[str] = []
    for rec in spans:
        parent = rec.get("parent_id")
        if parent is None:
            roots.append(rec)
        elif parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            # A parent pointer into a span nobody recorded: either a
            # sink is missing from the input or a stage span was lost.
            orphans.append(rec["span_id"])
            roots.append(rec)
    complete = len(orphans) == 0 and len(roots) == 1
    root = roots[0] if roots else None

    stages: Dict[str, dict] = {}
    for rec in spans:
        stage = STAGE_OF_SPAN.get(rec.get("name", ""))
        if stage is None:
            continue
        st = stages.setdefault(
            stage, {"wall_s": 0.0, "device_us": 0.0, "count": 0}
        )
        st["wall_s"] += rec.get("wall_s", 0.0)
        st["device_us"] += rec.get("device_us", 0.0)
        st["count"] += 1

    server_wall = stages.get("server", {}).get("wall_s")
    attributed = sum(
        stages[s]["wall_s"] for s in SERVER_STAGES if s in stages
    )
    unattributed = (
        max(0.0, server_wall - attributed)
        if server_wall is not None
        else None
    )

    return {
        "schema": TRACE_SCHEMA,
        "trace_id": trace_id,
        "n_spans": len(spans),
        "complete": complete,
        "orphans": orphans,
        "root": (
            {
                "name": root.get("name"),
                "span_id": root["span_id"],
                "wall_s": root.get("wall_s", 0.0),
                "t0_unix_s": root.get("t0_unix_s", 0.0),
            }
            if root is not None
            else None
        ),
        "wall_s": root.get("wall_s", 0.0) if root is not None else 0.0,
        "device_us": sum(r.get("device_us", 0.0) for r in spans),
        "stages": stages,
        "unattributed_s": unattributed,
        "critical_path": _critical_path(root, children),
        "spans": spans,
    }


def assemble_traces(records: Iterable[dict]) -> List[dict]:
    """Assemble every trace present in ``records``."""
    return [
        assemble_trace(tid, spans)
        for tid, spans in collect_traces(records).items()
    ]


def _critical_path(
    root: Optional[dict], children: Dict[str, List[dict]]
) -> List[dict]:
    """The chain from the root that dominates end-to-end latency.

    At each hop, descend into the child whose interval *ends last* —
    the span the parent was still waiting on when it closed.  Each
    entry carries ``self_s``: the hop's wall time not covered by its
    own children, i.e. where the time actually went.
    """
    path: List[dict] = []
    rec = root
    seen = set()
    while rec is not None and rec["span_id"] not in seen:
        seen.add(rec["span_id"])
        kids = children.get(rec["span_id"], [])
        child_wall = sum(k.get("wall_s", 0.0) for k in kids)
        path.append(
            {
                "name": rec.get("name"),
                "span_id": rec["span_id"],
                "stage": STAGE_OF_SPAN.get(rec.get("name", "")),
                "wall_s": rec.get("wall_s", 0.0),
                "device_us": rec.get("device_us", 0.0),
                "self_s": max(0.0, rec.get("wall_s", 0.0) - child_wall),
                "t0_unix_s": rec.get("t0_unix_s", 0.0),
            }
        )
        rec = max(kids, key=_end) if kids else None
    return path


# -- rendering -------------------------------------------------------------


def _fmt_ms(s: float) -> str:
    return f"{s * 1e3:.2f} ms"


def format_trace(doc: dict) -> str:
    """Render one trace document as an indented span tree."""
    lines = [
        f"trace {doc['trace_id']}  "
        f"({doc['n_spans']} span(s), {_fmt_ms(doc['wall_s'])}, "
        f"{'complete' if doc['complete'] else 'INCOMPLETE'})"
    ]
    if doc["orphans"]:
        lines.append(
            f"  ORPHAN span(s) with missing parents: "
            f"{', '.join(doc['orphans'])}"
        )
    by_id = {rec["span_id"]: rec for rec in doc["spans"]}
    children: Dict[str, List[dict]] = {}
    roots = []
    for rec in doc["spans"]:
        parent = rec.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)

    def _walk(rec: dict, depth: int) -> None:
        device = rec.get("device_us", 0.0)
        extra = f", device {device / 1e3:.2f} ms" if device else ""
        lines.append(
            f"  {'  ' * depth}{rec.get('name')}  "
            f"{_fmt_ms(rec.get('wall_s', 0.0))}{extra}"
            f"  [{rec['span_id']}]"
        )
        for kid in sorted(
            children.get(rec["span_id"], []),
            key=lambda r: r.get("t0_unix_s", 0.0),
        ):
            _walk(kid, depth + 1)

    for rec in roots:
        _walk(rec, 0)
    return "\n".join(lines)


def format_critical_path(doc: dict) -> str:
    """Render the critical path + stage breakdown of one trace."""
    lines = [f"critical path of trace {doc['trace_id']}:"]
    for hop in doc["critical_path"]:
        stage = f" [{hop['stage']}]" if hop.get("stage") else ""
        lines.append(
            f"  {hop['name']:<20}{stage:<16} "
            f"wall {_fmt_ms(hop['wall_s']):>12}   "
            f"self {_fmt_ms(hop['self_s']):>12}"
        )
    stages = doc.get("stages") or {}
    if stages:
        lines.append("stage breakdown (wall clock):")
        for stage in ("client", "server", *SERVER_STAGES, "engine_worker"):
            st = stages.get(stage)
            if st is None:
                continue
            lines.append(
                f"  {stage:<14} {_fmt_ms(st['wall_s']):>12}  "
                f"(x{st['count']}"
                + (
                    f", device {st['device_us'] / 1e3:.2f} ms"
                    if st.get("device_us")
                    else ""
                )
                + ")"
            )
        server = stages.get("server")
        if server is not None and doc.get("unattributed_s") is not None:
            attributed = sum(
                stages[s]["wall_s"] for s in SERVER_STAGES if s in stages
            )
            pct = (
                100.0 * attributed / server["wall_s"]
                if server["wall_s"]
                else 100.0
            )
            lines.append(
                f"  stages cover {pct:.1f}% of server wall; "
                f"unattributed {_fmt_ms(doc['unattributed_s'])}"
            )
        client = stages.get("client")
        if client is not None and server is not None:
            lines.append(
                f"  client-observed {_fmt_ms(client['wall_s'])} = "
                f"server {_fmt_ms(server['wall_s'])} + wire/client "
                f"overhead {_fmt_ms(client['wall_s'] - server['wall_s'])}"
            )
    return "\n".join(lines)
