"""TraceContext: the identity a request carries across process hops.

One verification request touches four execution contexts — the client,
the server's event loop, an engine pool worker, and the registry writer.
A :class:`TraceContext` names the request (``trace_id``), the current
unit of work within it (``span_id``) and the unit that caused it
(``parent_id``), so spans recorded in any of those contexts can later be
re-threaded into one tree by :mod:`repro.trace.assemble`.

The string form follows the W3C ``traceparent`` header layout
(``00-<trace_id>-<span_id>-<flags>``) so the wire field is recognisable
to anyone who has read an HTTP trace header, and so ids survive any
transport that can carry an ASCII string.  This module is dependency-
free on purpose: the telemetry layer imports it, never the reverse.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["TraceContext", "parse_traceparent"]

_VERSION = "00"
_FLAG_SAMPLED = "01"
_TRACE_ID_CHARS = 32
_SPAN_ID_CHARS = 16
_HEX = set("0123456789abcdef")


def _rand_hex(n_chars: int) -> str:
    return os.urandom(n_chars // 2).hex()


def _is_hex_id(value: str, n_chars: int) -> bool:
    return (
        isinstance(value, str)
        and len(value) == n_chars
        and set(value) <= _HEX
        and set(value) != {"0"}
    )


@dataclass(frozen=True)
class TraceContext:
    """Immutable (trace_id, span_id, parent_id) triple.

    ``span_id`` identifies the unit of work *currently being described*;
    a span recorded against this context uses ``span_id`` as its own id
    and ``parent_id`` as its parent pointer.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    sampled: bool = True

    def __post_init__(self):
        if not _is_hex_id(self.trace_id, _TRACE_ID_CHARS):
            raise ValueError(
                f"trace_id must be {_TRACE_ID_CHARS} lowercase hex chars, "
                f"got {self.trace_id!r}"
            )
        if not _is_hex_id(self.span_id, _SPAN_ID_CHARS):
            raise ValueError(
                f"span_id must be {_SPAN_ID_CHARS} lowercase hex chars, "
                f"got {self.span_id!r}"
            )

    # -- construction -----------------------------------------------------

    @classmethod
    def new_root(cls) -> "TraceContext":
        """A fresh trace: new trace_id, new span_id, no parent."""
        return cls(
            trace_id=_rand_hex(_TRACE_ID_CHARS),
            span_id=_rand_hex(_SPAN_ID_CHARS),
            parent_id=None,
        )

    def child(self) -> "TraceContext":
        """A child unit of work: same trace, new span under this one."""
        return replace(
            self, span_id=_rand_hex(_SPAN_ID_CHARS), parent_id=self.span_id
        )

    # -- wire form --------------------------------------------------------

    def to_traceparent(self) -> str:
        """``00-<trace_id>-<span_id>-01`` (W3C traceparent layout).

        The parent pointer is *not* carried — a receiver derives its own
        child context, so the sender's ``span_id`` becomes the
        receiver's ``parent_id`` exactly as in W3C context propagation.
        """
        flags = _FLAG_SAMPLED if self.sampled else "00"
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{flags}"

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse a traceparent string; raises :class:`ValueError` on a
        malformed header."""
        if not isinstance(header, str):
            raise ValueError(f"traceparent must be a string, got {header!r}")
        parts = header.strip().split("-")
        if len(parts) != 4:
            raise ValueError(
                f"traceparent needs 4 dash-separated fields: {header!r}"
            )
        version, trace_id, span_id, flags = parts
        if version != _VERSION:
            raise ValueError(f"unsupported traceparent version {version!r}")
        if len(flags) != 2 or set(flags) - _HEX:
            raise ValueError(f"malformed traceparent flags {flags!r}")
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=None,
            sampled=bool(int(flags, 16) & 1),
        )


def parse_traceparent(header) -> Optional[TraceContext]:
    """Lenient parse: ``None`` for absent or malformed headers.

    The server uses this at admission — a request carrying a damaged
    ``trace`` field must still verify (the field is advisory metadata),
    so parse failures degrade to "start a new root" rather than a 400.
    """
    if not header:
        return None
    try:
        return TraceContext.from_traceparent(header)
    except ValueError:
        return None
