"""Distributed tracing for the verification pipeline.

Built on :mod:`repro.telemetry` spans: a :class:`TraceContext` names a
request (W3C-traceparent-style string form on the wire), the client,
server, engine workers and registry writer record their stages against
it, and :mod:`repro.trace.assemble` re-threads the scattered span
records into ``flashmark.trace/v1`` documents with critical-path and
per-stage breakdowns.  ``repro trace`` (see :mod:`repro.cli`) renders,
analyses and exports them (collapsed-stack flamegraph and Chrome
``trace_event`` formats).

This package deliberately has no dependency on the rest of ``repro`` —
the telemetry layer imports :mod:`repro.trace.context`, never the
reverse — so the assembler also works on span logs from foreign
processes as long as they carry ``trace_id``/``span_id``/``parent_id``.
"""

from .assemble import (
    SERVER_STAGES,
    STAGE_OF_SPAN,
    TRACE_SCHEMA,
    assemble_trace,
    assemble_traces,
    collect_traces,
    format_critical_path,
    format_trace,
    read_span_records,
)
from .context import TraceContext, parse_traceparent
from .export import dump_chrome_trace, to_chrome_trace, to_collapsed_stacks

__all__ = [
    "TRACE_SCHEMA",
    "STAGE_OF_SPAN",
    "SERVER_STAGES",
    "TraceContext",
    "parse_traceparent",
    "read_span_records",
    "collect_traces",
    "assemble_trace",
    "assemble_traces",
    "format_trace",
    "format_critical_path",
    "to_collapsed_stacks",
    "to_chrome_trace",
    "dump_chrome_trace",
]
