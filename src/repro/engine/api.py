"""The batch-facing API: parallel calibration and population verification.

Every batch entry point shares one calling convention (keyword-only
``workers=``, ``seed=``, ``telemetry=``) and one result shape
(``.results`` aligned with the submitted jobs, ``.failures``,
``.manifest``):

* :func:`calibrate_family` — the family-calibration sweep of Section
  IV, fanned across sample chips, optionally memoized through a
  :class:`~repro.engine.cache.CalibrationCache`;
* :func:`verify_population` — population-scale verification (the
  deployment scenario of Section I), one chip per job;
* :meth:`repro.workloads.ProductionLine.run` — die-sort production
  (lives with the production line but follows the same convention).

Worker processes record their own telemetry and device traces; the
engine folds them back via :meth:`Telemetry.absorb` and
:meth:`OperationTrace.merge`, so merged manifests still reconcile
device-clock totals exactly as single-process runs do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import copy

import numpy as np

from ..core.calibration import (
    CalibrationSweepJob,
    ChipSweep,
    FamilyCalibration,
    default_t_grid_us,
    run_calibration_sweep,
    select_window,
)
from ..core.verifier import (
    VerificationReport,
    WatermarkFormat,
    WatermarkVerifier,
)
from ..core.watermark import Watermark
from ..device.mcu import Microcontroller
from ..device.tracing import OperationTrace
from ..telemetry import Telemetry, build_manifest
from ..telemetry import current as current_telemetry
from .cache import CalibrationCache, calibration_to_dict
from .executor import BatchExecutor, BatchResult, JobFailure

__all__ = [
    "CalibrationResult",
    "VerificationResult",
    "CalibrationError",
    "calibrate_family",
    "verify_population",
]


class CalibrationError(RuntimeError):
    """A calibration batch lost sample chips and cannot publish a window."""


@dataclass
class CalibrationResult(BatchResult):
    """Batch result of :func:`calibrate_family`.

    ``results`` holds the per-chip
    :class:`~repro.core.calibration.ChipSweep` curves (empty on a cache
    hit); ``calibration`` is the published
    :class:`~repro.core.calibration.FamilyCalibration`.
    """

    calibration: Optional[FamilyCalibration] = None
    #: Whether the calibration came from the cache without sweeping.
    cache_hit: bool = False
    #: Content-hash key the cache used (None when no cache was given).
    cache_key: Optional[str] = None


@dataclass
class VerificationResult(BatchResult):
    """Batch result of :func:`verify_population`.

    ``results`` holds one
    :class:`~repro.core.verifier.VerificationReport` per input chip
    (``None`` where a job failed).
    """

    @property
    def verdicts(self) -> List[Optional[str]]:
        """Verdict string per chip (None for failed jobs)."""
        return [
            r.verdict.value if r is not None else None for r in self.results
        ]

    @property
    def verdict_counts(self) -> dict:
        """Histogram of verdicts across the population."""
        counts: dict = {}
        for v in self.verdicts:
            if v is not None:
                counts[v] = counts.get(v, 0) + 1
        return counts


# -- family calibration ----------------------------------------------------


def calibrate_family(
    chip_factory: Callable[[int], Microcontroller],
    n_pe: int,
    *,
    n_replicas: int = 1,
    watermark: Optional[Watermark] = None,
    t_grid_us: Optional[Sequence[float]] = None,
    n_reads: int = 1,
    n_chips: int = 1,
    segment: int = 0,
    window_tolerance: float = 0.25,
    operating_point: str = "safe",
    workers: int = 1,
    seed: int = 1000,
    telemetry=None,
    cache: Optional[CalibrationCache] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    chunk_size: Optional[int] = None,
) -> CalibrationResult:
    """Find (or recall) the best partial-erase window for a family.

    The batch-engine form of the Section IV characterization process:
    each sample chip's imprint + sweep is one job, fanned across
    ``workers`` processes with deterministic per-chip seeding
    (``seed + chip_index``), so any worker count — including the
    inline ``workers=1`` path — publishes bit-identical windows.

    With a ``cache``, the sweep is skipped entirely when an entry keyed
    by the family physics and every calibration setting exists; the
    result then reports ``cache_hit=True``.

    Raises :class:`CalibrationError` if any sample chip's job failed
    after retries — a published window must average every sample.
    """
    if operating_point not in ("min", "safe"):
        raise ValueError("operating_point must be 'min' or 'safe'")
    if n_chips < 1:
        raise ValueError("n_chips must be >= 1")
    tel = telemetry if telemetry is not None else current_telemetry()
    probe = chip_factory(seed)
    segment_bits = probe.geometry.bits_per_segment
    if watermark is None:
        n_chars = segment_bits // n_replicas // 8
        rng = np.random.default_rng(seed)
        watermark = Watermark.ascii_uppercase(n_chars, rng)
    if t_grid_us is None:
        t_grid_us = default_t_grid_us(n_pe)
    grid = np.asarray(t_grid_us, dtype=np.float64)
    model = probe.model

    cache_key = None
    if cache is not None:
        cache_key = CalibrationCache.key_for(
            model=model,
            params=probe.params.describe(),
            n_pe=n_pe,
            n_replicas=n_replicas,
            watermark_bits=watermark.bits,
            t_grid_us=grid,
            n_reads=n_reads,
            n_chips=n_chips,
            segment=segment,
            window_tolerance=window_tolerance,
            seed=seed,
            operating_point=operating_point,
        )
        cached = cache.get(cache_key)
        if cached is not None:
            tel.count("calibration.cache_hits")
            manifest = build_manifest(
                tel,
                kind="calibration",
                parameters=_calibration_parameters(
                    model, n_pe, n_replicas, grid, n_reads, n_chips,
                    segment, window_tolerance, operating_point, workers,
                ),
                seeds={"seed": seed},
                trace=OperationTrace(),
                extra={
                    "calibration": calibration_to_dict(cached),
                    "cache": {**cache.stats(), "hit": True, "key": cache_key},
                },
            )
            return CalibrationResult(
                results=[],
                failures=[],
                manifest=manifest,
                workers=1,
                calibration=cached,
                cache_hit=True,
                cache_key=cache_key,
            )
        tel.count("calibration.cache_misses")

    jobs = [
        CalibrationSweepJob(
            index=c,
            seed=seed + c,
            factory=chip_factory,
            watermark=watermark,
            n_pe=n_pe,
            n_replicas=n_replicas,
            t_grid_us=tuple(float(t) for t in grid),
            n_reads=n_reads,
            segment=segment,
            want_asymmetry=(c == 0),
        )
        for c in range(n_chips)
    ]
    executor = BatchExecutor(
        workers,
        chunk_size=chunk_size,
        timeout_s=timeout_s,
        retries=retries,
    )
    with tel.span(
        "calibration.sweep",
        model=model,
        n_chips=n_chips,
        grid_points=int(grid.size),
        n_pe=n_pe,
        workers=workers,
    ) as sweep_span:
        batch = executor.map(run_calibration_sweep, jobs, telemetry=tel)
        prefix = getattr(sweep_span, "path", None)
        for sweep in batch.successes():
            tel.absorb(sweep.telemetry, prefix=prefix)
    if batch.failures:
        detail = "; ".join(
            f"chip {f.index}: {f.error.strip().splitlines()[-1]}"
            for f in batch.failures
        )
        raise CalibrationError(
            f"calibration lost {len(batch.failures)} of {n_chips} "
            f"sample chip(s): {detail}"
        )

    sweeps: List[ChipSweep] = batch.results
    # Sequential accumulation keeps float order identical to the
    # original serial procedure (sum over chips, then divide).
    ber_sum = np.zeros(grid.size)
    for sweep in sweeps:
        ber_sum += sweep.ber
    ber = ber_sum / n_chips
    op_idx, lo_idx, hi_idx = select_window(
        ber, grid, window_tolerance, operating_point
    )
    calibration = FamilyCalibration(
        model=model,
        t_pew_us=float(grid[op_idx]),
        window_lo_us=float(grid[lo_idx]),
        window_hi_us=float(grid[hi_idx]),
        n_pe=n_pe,
        n_replicas=n_replicas,
        expected_ber=float(ber[op_idx]),
        asymmetry=sweeps[0].asymmetry[op_idx],
        window_tolerance=window_tolerance,
        operating_point=operating_point,
    )
    if cache is not None and cache_key is not None:
        cache.put(
            cache_key,
            calibration,
            key_fields={"model": model, "n_pe": n_pe, "seed": seed},
        )
    tel.gauge("calibration.t_pew_us", calibration.t_pew_us)
    tel.gauge("calibration.expected_ber", calibration.expected_ber)

    merged = OperationTrace()
    for sweep in sweeps:
        merged.merge(sweep.trace)
    extra: dict = {"calibration": calibration_to_dict(calibration)}
    if cache is not None:
        extra["cache"] = {**cache.stats(), "hit": False, "key": cache_key}
    manifest = build_manifest(
        tel,
        kind="calibration",
        parameters=_calibration_parameters(
            model, n_pe, n_replicas, grid, n_reads, n_chips,
            segment, window_tolerance, operating_point, batch.workers,
        ),
        seeds={"seed": seed, "chip_seeds": [s.seed for s in sweeps]},
        trace=merged,
        extra=extra,
    )
    return CalibrationResult(
        results=sweeps,
        failures=batch.failures,
        manifest=manifest,
        workers=batch.workers,
        wall_s=batch.wall_s,
        calibration=calibration,
        cache_hit=False,
        cache_key=cache_key,
    )


def _calibration_parameters(
    model, n_pe, n_replicas, grid, n_reads, n_chips,
    segment, window_tolerance, operating_point, workers,
) -> dict:
    return {
        "model": model,
        "n_pe": n_pe,
        "n_replicas": n_replicas,
        "grid_points": int(grid.size),
        "n_reads": n_reads,
        "n_chips": n_chips,
        "segment": segment,
        "window_tolerance": window_tolerance,
        "operating_point": operating_point,
        "workers": workers,
    }


# -- population verification ----------------------------------------------


@dataclass(frozen=True)
class VerifyJob:
    """One chip's verification, as a picklable payload."""

    index: int
    chip: Microcontroller
    verifier: WatermarkVerifier
    segment: int = 0
    n_reads: int = 1
    temperature_c: Optional[float] = None
    #: Optional distributed-trace context (traceparent string form) the
    #: worker's spans re-parent under; carried as a string so the
    #: payload pickles identically with tracing on or off.
    traceparent: Optional[str] = None


@dataclass
class VerifiedChip:
    """Worker-side outcome of one verification job."""

    index: int
    report: VerificationReport
    #: Device trace of the verification alone (the job's chip copy is
    #: reset before extraction, so this is pure verification cost).
    trace: OperationTrace
    telemetry: dict = field(default_factory=dict)


def run_verify_job(job: VerifyJob) -> VerifiedChip:
    """Verify one chip (module-level so the pool can run it).

    When the job carries a ``traceparent``, the worker's spans record
    distributed-trace ids parented under it, so the snapshot absorbed
    back into the parent process re-threads into the request's trace.
    """
    chip = job.chip
    chip.trace.reset()
    tel = Telemetry()
    tel.bind_trace(chip.trace)
    with tel.trace_scope(job.traceparent):
        with tel.span("verify.chip", index=job.index) as sp:
            report = job.verifier.verify(
                chip.flash,
                job.segment,
                n_reads=job.n_reads,
                temperature_c=job.temperature_c,
                telemetry=tel,
            )
            sp.set("verdict", report.verdict.value)
    return VerifiedChip(
        index=job.index,
        report=report,
        trace=chip.trace,
        telemetry=tel.snapshot(),
    )


def verify_population(
    chips: Sequence[Union[Microcontroller, object]],
    verifier: Optional[WatermarkVerifier] = None,
    *,
    calibration: Optional[FamilyCalibration] = None,
    format: Optional[WatermarkFormat] = None,
    segment: int = 0,
    n_reads: int = 1,
    temperature_c: Optional[float] = None,
    workers: int = 1,
    seed: Optional[int] = None,
    telemetry=None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    chunk_size: Optional[int] = None,
    trace_contexts: Optional[Sequence[Optional[str]]] = None,
) -> VerificationResult:
    """Verify a population of chips against published family parameters.

    The deployment-scale counterpart of
    :meth:`~repro.core.FlashmarkSession.verify`: one job per chip,
    fanned across ``workers`` processes.  ``chips`` may be
    :class:`Microcontroller` objects or any wrapper exposing a ``.chip``
    attribute (:class:`~repro.workloads.ChipSample`,
    :class:`~repro.workloads.ProducedChip`).

    Input chips are never mutated: every job verifies a private copy
    (extraction physically rewrites the watermark segment), so the
    inline and pooled paths return bit-identical reports.

    Pass either a ready ``verifier`` or ``calibration`` + ``format`` to
    build one.  ``seed`` is accepted for calling-convention uniformity;
    verification is deterministic given each chip's recorded state, so
    it is currently unused.

    ``trace_contexts`` optionally carries one traceparent string (or
    ``None``) per chip; each worker's ``verify.chip`` span then records
    distributed-trace ids under the matching request's context.
    """
    if verifier is None:
        if calibration is None or format is None:
            raise ValueError(
                "pass a verifier, or calibration= and format= to build one"
            )
        verifier = WatermarkVerifier(calibration, format)
    del seed  # reserved: verification derives no randomness of its own
    tel = telemetry if telemetry is not None else current_telemetry()
    bare = [getattr(c, "chip", c) for c in chips]
    if trace_contexts is not None and len(trace_contexts) != len(bare):
        raise ValueError(
            f"trace_contexts has {len(trace_contexts)} entries for "
            f"{len(bare)} chip(s)"
        )
    jobs = [
        VerifyJob(
            index=i,
            chip=copy.deepcopy(chip),
            verifier=verifier,
            segment=segment,
            n_reads=n_reads,
            temperature_c=temperature_c,
            traceparent=(
                trace_contexts[i] if trace_contexts is not None else None
            ),
        )
        for i, chip in enumerate(bare)
    ]
    executor = BatchExecutor(
        workers,
        chunk_size=chunk_size,
        timeout_s=timeout_s,
        retries=retries,
    )
    with tel.span(
        "verify.population", n_chips=len(jobs), workers=workers
    ) as pop_span:
        batch = executor.map(run_verify_job, jobs, telemetry=tel)
        prefix = getattr(pop_span, "path", None)
        for verified in batch.successes():
            tel.absorb(verified.telemetry, prefix=prefix)
        reports: List[Optional[VerificationReport]] = [None] * len(jobs)
        merged = OperationTrace()
        for verified in batch.successes():
            reports[verified.index] = verified.report
            merged.merge(verified.trace)
            tel.count(f"verify.verdict.{verified.report.verdict.value}")
        if any(r is not None for r in reports):
            pop_span.set(
                "verdicts",
                {
                    v: sum(
                        1
                        for r in reports
                        if r is not None and r.verdict.value == v
                    )
                    for v in {
                        r.verdict.value for r in reports if r is not None
                    }
                },
            )
    result = VerificationResult(
        results=reports,
        failures=batch.failures,
        workers=batch.workers,
        wall_s=batch.wall_s,
    )
    result.manifest = build_manifest(
        tel,
        kind="verification_batch",
        parameters={
            "n_chips": len(jobs),
            "segment": segment,
            "n_reads": n_reads,
            "temperature_c": temperature_c,
            "workers": batch.workers,
        },
        seeds={"chip_seeds": [c.seed for c in bare]},
        trace=merged,
        extra={
            "verdicts": result.verdict_counts,
            "chips": [
                {
                    "index": i,
                    "die_id": f"0x{bare[i].die_id:012X}",
                    "verdict": r.verdict.value if r is not None else None,
                    "ber": r.ber if r is not None else None,
                    "reason": r.reason if r is not None else "job failed",
                }
                for i, r in enumerate(reports)
            ],
        },
    )
    return result
