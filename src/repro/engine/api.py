"""The batch-facing API: parallel calibration and population verification.

Every batch entry point shares one calling convention (keyword-only
``workers=``, ``seed=``, ``telemetry=``) and one result shape
(``.results`` aligned with the submitted jobs, ``.failures``,
``.manifest``):

* :func:`calibrate_family` — the family-calibration sweep of Section
  IV, fanned across sample chips, optionally memoized through a
  :class:`~repro.engine.cache.CalibrationCache`;
* :func:`verify_population` — population-scale verification (the
  deployment scenario of Section I), one chip per job;
* :meth:`repro.workloads.ProductionLine.run` — die-sort production
  (lives with the production line but follows the same convention).

Worker processes record their own telemetry and device traces; the
engine folds them back via :meth:`Telemetry.absorb` and
:meth:`OperationTrace.merge`, so merged manifests still reconcile
device-clock totals exactly as single-process runs do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import copy

import numpy as np

from ..core.calibration import (
    CalibrationSweepJob,
    ChipSweep,
    FamilyCalibration,
    default_t_grid_us,
    run_calibration_sweep,
    select_window,
)
from ..core.extract import ExtractionResult
from ..core.verifier import (
    VerificationReport,
    WatermarkFormat,
    WatermarkVerifier,
)
from ..core.watermark import Watermark
from ..device.mcu import Microcontroller
from ..device.population import ChipPopulation
from ..device.tracing import OperationTrace
from ..telemetry import Telemetry, build_manifest
from ..telemetry import current as current_telemetry
from .cache import CalibrationCache, calibration_to_dict
from .executor import BatchExecutor, BatchResult, JobFailure

__all__ = [
    "CalibrationResult",
    "VerificationResult",
    "CalibrationError",
    "calibrate_family",
    "verify_population",
    "VerifyJob",
    "VerifyBatchJob",
    "run_verify_job",
    "run_verify_batch_job",
]


class CalibrationError(RuntimeError):
    """A calibration batch lost sample chips and cannot publish a window."""


@dataclass
class CalibrationResult(BatchResult):
    """Batch result of :func:`calibrate_family`.

    ``results`` holds the per-chip
    :class:`~repro.core.calibration.ChipSweep` curves (empty on a cache
    hit); ``calibration`` is the published
    :class:`~repro.core.calibration.FamilyCalibration`.
    """

    calibration: Optional[FamilyCalibration] = None
    #: Whether the calibration came from the cache without sweeping.
    cache_hit: bool = False
    #: Content-hash key the cache used (None when no cache was given).
    cache_key: Optional[str] = None


@dataclass
class VerificationResult(BatchResult):
    """Batch result of :func:`verify_population`.

    ``results`` holds one
    :class:`~repro.core.verifier.VerificationReport` per input chip
    (``None`` where a job failed).
    """

    @property
    def verdicts(self) -> List[Optional[str]]:
        """Verdict string per chip (None for failed jobs)."""
        return [
            r.verdict.value if r is not None else None for r in self.results
        ]

    @property
    def verdict_counts(self) -> dict:
        """Histogram of verdicts across the population."""
        counts: dict = {}
        for v in self.verdicts:
            if v is not None:
                counts[v] = counts.get(v, 0) + 1
        return counts


# -- family calibration ----------------------------------------------------


def calibrate_family(
    chip_factory: Callable[[int], Microcontroller],
    n_pe: int,
    *,
    n_replicas: int = 1,
    watermark: Optional[Watermark] = None,
    t_grid_us: Optional[Sequence[float]] = None,
    n_reads: int = 1,
    n_chips: int = 1,
    segment: int = 0,
    window_tolerance: float = 0.25,
    operating_point: str = "safe",
    workers: int = 1,
    seed: int = 1000,
    telemetry=None,
    cache: Optional[CalibrationCache] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    chunk_size: Optional[int] = None,
) -> CalibrationResult:
    """Find (or recall) the best partial-erase window for a family.

    The batch-engine form of the Section IV characterization process:
    each sample chip's imprint + sweep is one job, fanned across
    ``workers`` processes with deterministic per-chip seeding
    (``seed + chip_index``), so any worker count — including the
    inline ``workers=1`` path — publishes bit-identical windows.

    With a ``cache``, the sweep is skipped entirely when an entry keyed
    by the family physics and every calibration setting exists; the
    result then reports ``cache_hit=True``.

    Raises :class:`CalibrationError` if any sample chip's job failed
    after retries — a published window must average every sample.
    """
    if operating_point not in ("min", "safe"):
        raise ValueError("operating_point must be 'min' or 'safe'")
    if n_chips < 1:
        raise ValueError("n_chips must be >= 1")
    tel = telemetry if telemetry is not None else current_telemetry()
    probe = chip_factory(seed)
    segment_bits = probe.geometry.bits_per_segment
    if watermark is None:
        n_chars = segment_bits // n_replicas // 8
        rng = np.random.default_rng(seed)
        watermark = Watermark.ascii_uppercase(n_chars, rng)
    if t_grid_us is None:
        t_grid_us = default_t_grid_us(n_pe)
    grid = np.asarray(t_grid_us, dtype=np.float64)
    model = probe.model

    cache_key = None
    if cache is not None:
        cache_key = CalibrationCache.key_for(
            model=model,
            params=probe.params.describe(),
            n_pe=n_pe,
            n_replicas=n_replicas,
            watermark_bits=watermark.bits,
            t_grid_us=grid,
            n_reads=n_reads,
            n_chips=n_chips,
            segment=segment,
            window_tolerance=window_tolerance,
            seed=seed,
            operating_point=operating_point,
        )
        cached = cache.get(cache_key)
        if cached is not None:
            tel.count("calibration.cache_hits")
            manifest = build_manifest(
                tel,
                kind="calibration",
                parameters=_calibration_parameters(
                    model, n_pe, n_replicas, grid, n_reads, n_chips,
                    segment, window_tolerance, operating_point, workers,
                ),
                seeds={"seed": seed},
                trace=OperationTrace(),
                extra={
                    "calibration": calibration_to_dict(cached),
                    "cache": {**cache.stats(), "hit": True, "key": cache_key},
                },
            )
            return CalibrationResult(
                results=[],
                failures=[],
                manifest=manifest,
                workers=1,
                calibration=cached,
                cache_hit=True,
                cache_key=cache_key,
            )
        tel.count("calibration.cache_misses")

    jobs = [
        CalibrationSweepJob(
            index=c,
            seed=seed + c,
            factory=chip_factory,
            watermark=watermark,
            n_pe=n_pe,
            n_replicas=n_replicas,
            t_grid_us=tuple(float(t) for t in grid),
            n_reads=n_reads,
            segment=segment,
            want_asymmetry=(c == 0),
        )
        for c in range(n_chips)
    ]
    executor = BatchExecutor(
        workers,
        chunk_size=chunk_size,
        timeout_s=timeout_s,
        retries=retries,
    )
    with tel.span(
        "calibration.sweep",
        model=model,
        n_chips=n_chips,
        grid_points=int(grid.size),
        n_pe=n_pe,
        workers=workers,
    ) as sweep_span:
        batch = executor.map(run_calibration_sweep, jobs, telemetry=tel)
        prefix = getattr(sweep_span, "path", None)
        for sweep in batch.successes():
            tel.absorb(sweep.telemetry, prefix=prefix)
    if batch.failures:
        detail = "; ".join(
            f"chip {f.index}: {f.error.strip().splitlines()[-1]}"
            for f in batch.failures
        )
        raise CalibrationError(
            f"calibration lost {len(batch.failures)} of {n_chips} "
            f"sample chip(s): {detail}"
        )

    sweeps: List[ChipSweep] = batch.results
    # Sequential accumulation keeps float order identical to the
    # original serial procedure (sum over chips, then divide).
    ber_sum = np.zeros(grid.size)
    for sweep in sweeps:
        ber_sum += sweep.ber
    ber = ber_sum / n_chips
    op_idx, lo_idx, hi_idx = select_window(
        ber, grid, window_tolerance, operating_point
    )
    calibration = FamilyCalibration(
        model=model,
        t_pew_us=float(grid[op_idx]),
        window_lo_us=float(grid[lo_idx]),
        window_hi_us=float(grid[hi_idx]),
        n_pe=n_pe,
        n_replicas=n_replicas,
        expected_ber=float(ber[op_idx]),
        asymmetry=sweeps[0].asymmetry[op_idx],
        window_tolerance=window_tolerance,
        operating_point=operating_point,
    )
    if cache is not None and cache_key is not None:
        cache.put(
            cache_key,
            calibration,
            key_fields={"model": model, "n_pe": n_pe, "seed": seed},
        )
    tel.gauge("calibration.t_pew_us", calibration.t_pew_us)
    tel.gauge("calibration.expected_ber", calibration.expected_ber)

    merged = OperationTrace()
    for sweep in sweeps:
        merged.merge(sweep.trace)
    extra: dict = {"calibration": calibration_to_dict(calibration)}
    if cache is not None:
        extra["cache"] = {**cache.stats(), "hit": False, "key": cache_key}
    manifest = build_manifest(
        tel,
        kind="calibration",
        parameters=_calibration_parameters(
            model, n_pe, n_replicas, grid, n_reads, n_chips,
            segment, window_tolerance, operating_point, batch.workers,
        ),
        seeds={"seed": seed, "chip_seeds": [s.seed for s in sweeps]},
        trace=merged,
        extra=extra,
    )
    return CalibrationResult(
        results=sweeps,
        failures=batch.failures,
        manifest=manifest,
        workers=batch.workers,
        wall_s=batch.wall_s,
        calibration=calibration,
        cache_hit=False,
        cache_key=cache_key,
    )


def _calibration_parameters(
    model, n_pe, n_replicas, grid, n_reads, n_chips,
    segment, window_tolerance, operating_point, workers,
) -> dict:
    return {
        "model": model,
        "n_pe": n_pe,
        "n_replicas": n_replicas,
        "grid_points": int(grid.size),
        "n_reads": n_reads,
        "n_chips": n_chips,
        "segment": segment,
        "window_tolerance": window_tolerance,
        "operating_point": operating_point,
        "workers": workers,
    }


# -- population verification ----------------------------------------------


@dataclass(frozen=True)
class VerifyJob:
    """One chip's verification, as a picklable payload."""

    index: int
    chip: Microcontroller
    verifier: WatermarkVerifier
    segment: int = 0
    n_reads: int = 1
    temperature_c: Optional[float] = None
    #: Optional distributed-trace context (traceparent string form) the
    #: worker's spans re-parent under; carried as a string so the
    #: payload pickles identically with tracing on or off.
    traceparent: Optional[str] = None
    #: Sampling-profiler rate for this job (0: off).  The worker runs
    #: its own :class:`~repro.obs.profiler.SamplingProfiler` and hands
    #: the collapsed stacks back inside ``telemetry["profile"]``.
    profile_hz: float = 0.0


def _start_profiler(hz: float):
    """Worker-side profiler start (lazy import keeps engine payloads
    importable without the obs stack)."""
    if hz <= 0:
        return None
    from ..obs.profiler import SamplingProfiler

    return SamplingProfiler(hz).start()


@dataclass
class VerifiedChip:
    """Worker-side outcome of one verification job."""

    index: int
    report: VerificationReport
    #: Device trace of the verification alone (the job's chip copy is
    #: reset before extraction, so this is pure verification cost).
    trace: OperationTrace
    telemetry: dict = field(default_factory=dict)


def run_verify_job(job: VerifyJob) -> VerifiedChip:
    """Verify one chip (module-level so the pool can run it).

    When the job carries a ``traceparent``, the worker's spans record
    distributed-trace ids parented under it, so the snapshot absorbed
    back into the parent process re-threads into the request's trace.
    """
    chip = job.chip
    chip.trace.reset()
    tel = Telemetry()
    tel.bind_trace(chip.trace)
    profiler = _start_profiler(job.profile_hz)
    try:
        with tel.trace_scope(job.traceparent):
            with tel.span("verify.chip", index=job.index) as sp:
                report = job.verifier.verify(
                    chip.flash,
                    job.segment,
                    n_reads=job.n_reads,
                    temperature_c=job.temperature_c,
                    telemetry=tel,
                )
                sp.set("verdict", report.verdict.value)
    finally:
        if profiler is not None:
            tel.merge_profile(profiler.stop().to_dict())
    return VerifiedChip(
        index=job.index,
        report=report,
        trace=chip.trace,
        telemetry=tel.snapshot(),
    )


@dataclass(frozen=True)
class VerifyBatchJob:
    """One chunk of a homogeneous population, verified in a single
    batched device pass.

    Carries a :class:`~repro.device.ChipPopulation` (the stacked
    watermark-segment state of every die in the chunk) instead of whole
    chip copies, so the pickled payload is the segment slice rather
    than the full microcontroller — the other half of the batched
    path's speed-up besides the 2-D kernels.
    """

    #: Population-wide chip indices, aligned with the population's rows.
    indices: tuple
    population: ChipPopulation
    verifier: WatermarkVerifier
    segment: int = 0
    n_reads: int = 1
    temperature_c: Optional[float] = None
    #: One traceparent (or None) per die.
    traceparents: tuple = ()
    #: Per-die segment base address, for trace-event parity.
    addresses: tuple = ()
    #: Per-die trace configuration, mirroring each chip's own trace so
    #: synthesized per-die traces match what the serial path returns.
    keep_events: tuple = ()
    max_events: tuple = ()
    #: Sampling-profiler rate for this chunk (0: off); the collapsed
    #: stacks ride back in the first die's telemetry snapshot.
    profile_hz: float = 0.0


def run_verify_batch_job(job: VerifyBatchJob) -> List[VerifiedChip]:
    """Verify one population chunk (module-level so the pool can run it).

    Runs the extraction physics once over the stacked ``(n_dies,
    n_cells)`` state, then decodes and classifies each die's row through
    the exact per-die code path
    (:meth:`~repro.core.WatermarkVerifier.classify_extraction`).

    The job's population is consumed in place — extraction advances its
    threshold voltages, wear counters and RNG streams — mirroring how
    :func:`run_verify_job` mutates its job's chip copy.  The engine
    always builds the payload from a private
    :meth:`~repro.device.ChipPopulation.from_chips` copy, so input
    chips are never touched; callers constructing jobs by hand should
    pass a population they can spare (or ``clone()`` it first).

    Returns one :class:`VerifiedChip` per die — same shape the per-die
    path produces, with per-die ``verify.chip`` / ``extract`` spans and
    synthesized device traces whose clocks, energy and op counts are
    bit-identical to a serial verification of the same die.
    """
    verifier = job.verifier
    pop = job.population
    profiler = _start_profiler(job.profile_hz)
    try:
        out = _run_verify_batch(job, verifier, pop)
    finally:
        dump = (
            profiler.stop().to_dict() if profiler is not None else None
        )
    if dump is not None and out:
        # The chunk runs as one unit (shared extraction pass), so the
        # whole chunk's profile rides home in the first die's snapshot;
        # the parent's absorb() merges profiles additively anyway.
        out[0].telemetry["profile"] = dump
    return out


def _run_verify_batch(
    job: VerifyBatchJob, verifier, pop
) -> List[VerifiedChip]:
    t_pew = verifier.scaled_window_us(pop.params.cell, job.temperature_c)
    layout = verifier.format.layout_for(pop.n_cells)
    readout = pop.extract_readout(t_pew, n_reads=job.n_reads)
    out: List[VerifiedChip] = []
    for k, index in enumerate(job.indices):
        trace = OperationTrace(
            keep_events=job.keep_events[k], max_events=job.max_events[k]
        )
        tel = Telemetry()
        tel.bind_trace(trace)
        with tel.trace_scope(job.traceparents[k]):
            with tel.span("verify.chip", index=index) as sp:
                with tel.span(
                    "extract",
                    segment=job.segment,
                    t_pew_us=t_pew,
                    n_reads=job.n_reads,
                ) as esp:
                    pop.charge_extraction(
                        trace,
                        t_pew,
                        job.n_reads,
                        address=job.addresses[k],
                    )
                    duration_ms = trace.now_us / 1e3
                    esp.set("duration_ms", duration_ms)
                extraction = ExtractionResult(
                    segment=job.segment,
                    t_pew_us=t_pew,
                    n_reads=job.n_reads,
                    raw_bits=readout.raw_bits[k],
                    duration_ms=duration_ms,
                )
                report = verifier.classify_extraction(extraction, layout)
                sp.set("verdict", report.verdict.value)
        out.append(
            VerifiedChip(
                index=index,
                report=report,
                trace=trace,
                telemetry=tel.snapshot(),
            )
        )
    return out


def _run_verify_unit(job) -> List[VerifiedChip]:
    """Dispatch one submitted unit: a per-die job or a population chunk."""
    if isinstance(job, VerifyBatchJob):
        return run_verify_batch_job(job)
    return [run_verify_job(job)]


def _plan_verify_jobs(
    bare: Sequence[Microcontroller],
    segment: int,
    batch: str,
    batch_size: Optional[int],
    workers: int,
):
    """Partition chips into per-die indices and batchable groups.

    A chip is batchable when its flash is unlocked (locked chips must
    fail through the real controller so failure semantics match) and
    its :meth:`~repro.device.ChipPopulation.batch_key` — physics
    parameters, segment geometry, timing — is computable.  ``auto``
    additionally leaves singleton groups on the per-die path (no
    batching win to collect).

    Returns ``(per_die_indices, chunks)`` where each chunk is a list of
    chip indices destined for one :class:`VerifyBatchJob`.
    """
    per_die: List[int] = []
    groups: dict = {}
    for i, chip in enumerate(bare):
        if batch == "die":
            per_die.append(i)
            continue
        try:
            if chip.flash.locked:
                raise ValueError("locked")
            key = ChipPopulation.batch_key(chip, segment)
        except Exception:
            per_die.append(i)
            continue
        groups.setdefault(key, []).append(i)
    if batch == "auto":
        for key in list(groups):
            if len(groups[key]) < 2:
                per_die.extend(groups.pop(key))
    chunks: List[List[int]] = []
    for indices in groups.values():
        size = batch_size
        if size is None:
            # Spread each group across the workers; one chunk per
            # worker keeps every process on the 2-D kernels.
            size = max(1, -(-len(indices) // max(workers, 1)))
        for start in range(0, len(indices), size):
            chunks.append(indices[start : start + size])
    per_die.sort()
    return per_die, chunks


def verify_population(
    chips: Sequence[Union[Microcontroller, object]],
    verifier: Optional[WatermarkVerifier] = None,
    *,
    calibration: Optional[FamilyCalibration] = None,
    format: Optional[WatermarkFormat] = None,
    segment: int = 0,
    n_reads: int = 1,
    temperature_c: Optional[float] = None,
    workers: int = 1,
    seed: Optional[int] = None,
    telemetry=None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    chunk_size: Optional[int] = None,
    trace_contexts: Optional[Sequence[Optional[str]]] = None,
    batch: str = "auto",
    batch_size: Optional[int] = None,
    profile_hz: float = 0.0,
) -> VerificationResult:
    """Verify a population of chips against published family parameters.

    The deployment-scale counterpart of
    :meth:`~repro.core.FlashmarkSession.verify`, fanned across
    ``workers`` processes.  ``chips`` may be :class:`Microcontroller`
    objects or any wrapper exposing a ``.chip`` attribute
    (:class:`~repro.workloads.ChipSample`,
    :class:`~repro.workloads.ProducedChip`).

    Input chips are never mutated: per-die jobs verify a private copy
    (extraction physically rewrites the watermark segment) and batched
    jobs copy segment state into a
    :class:`~repro.device.ChipPopulation`, so the inline and pooled
    paths return bit-identical reports.

    ``batch`` selects the dispatch strategy:

    * ``"auto"`` (default) — chips sharing physics parameters, segment
      geometry and timing are stacked into population chunks and
      verified through the 2-D kernels of :mod:`repro.phys.kernels`;
      locked chips, out-of-family chips and singleton groups take the
      per-die path.  Verdicts, statistics and extracted bits are
      byte-identical either way (the per-die RNG streams are replayed
      in the serial draw order).
    * ``"population"`` — batch every eligible chip, even singletons.
    * ``"die"`` — the legacy one-chip-per-job path.

    ``batch_size`` caps dies per population chunk (default: one chunk
    per worker and group).

    Pass either a ready ``verifier`` or ``calibration`` + ``format`` to
    build one.  ``seed`` is accepted for calling-convention uniformity;
    verification is deterministic given each chip's recorded state, so
    it is currently unused.

    ``trace_contexts`` optionally carries one traceparent string (or
    ``None``) per chip; each worker's ``verify.chip`` span then records
    distributed-trace ids under the matching request's context.

    ``profile_hz`` > 0 turns on continuous profiling inside every
    worker: each job runs under a
    :class:`~repro.obs.profiler.SamplingProfiler` at that rate and the
    collapsed stacks merge into the caller's telemetry
    (``telemetry.profile``), naming the actual hot frames — typically
    inside :mod:`repro.phys.kernels` — behind the verify wall time.
    """
    if verifier is None:
        if calibration is None or format is None:
            raise ValueError(
                "pass a verifier, or calibration= and format= to build one"
            )
        verifier = WatermarkVerifier(calibration, format)
    if batch not in ("auto", "population", "die"):
        raise ValueError(
            f"batch must be 'auto', 'population' or 'die', got {batch!r}"
        )
    del seed  # reserved: verification derives no randomness of its own
    tel = telemetry if telemetry is not None else current_telemetry()
    bare = [getattr(c, "chip", c) for c in chips]
    if trace_contexts is not None and len(trace_contexts) != len(bare):
        raise ValueError(
            f"trace_contexts has {len(trace_contexts)} entries for "
            f"{len(bare)} chip(s)"
        )

    def _traceparent(i: int) -> Optional[str]:
        return trace_contexts[i] if trace_contexts is not None else None

    per_die, batch_chunks = _plan_verify_jobs(
        bare, segment, batch, batch_size, workers
    )
    path_by_index = ["die"] * len(bare)
    jobs: List[object] = [
        VerifyJob(
            index=i,
            chip=copy.deepcopy(bare[i]),
            verifier=verifier,
            segment=segment,
            n_reads=n_reads,
            temperature_c=temperature_c,
            traceparent=_traceparent(i),
            profile_hz=profile_hz,
        )
        for i in per_die
    ]
    for chunk in batch_chunks:
        jobs.append(
            VerifyBatchJob(
                indices=tuple(chunk),
                population=ChipPopulation.from_chips(
                    [bare[i] for i in chunk], segment
                ),
                verifier=verifier,
                segment=segment,
                n_reads=n_reads,
                temperature_c=temperature_c,
                traceparents=tuple(_traceparent(i) for i in chunk),
                addresses=tuple(
                    bare[i].geometry.segment_base(segment) for i in chunk
                ),
                keep_events=tuple(
                    bare[i].trace.keep_events for i in chunk
                ),
                max_events=tuple(bare[i].trace.max_events for i in chunk),
                profile_hz=profile_hz,
            )
        )
        for i in chunk:
            path_by_index[i] = "population"
    executor = BatchExecutor(
        workers,
        chunk_size=chunk_size,
        timeout_s=timeout_s,
        retries=retries,
    )
    with tel.span(
        "verify.population",
        n_chips=len(bare),
        workers=workers,
        batch=batch,
        batched_chips=sum(len(c) for c in batch_chunks),
    ) as pop_span:
        batch_result = executor.map(_run_verify_unit, jobs, telemetry=tel)
        prefix = getattr(pop_span, "path", None)
        for unit in batch_result.successes():
            for verified in unit:
                tel.absorb(verified.telemetry, prefix=prefix)
        reports: List[Optional[VerificationReport]] = [None] * len(bare)
        merged = OperationTrace()
        for unit in batch_result.successes():
            for verified in unit:
                reports[verified.index] = verified.report
                merged.merge(verified.trace)
                tel.count(
                    f"verify.verdict.{verified.report.verdict.value}"
                )
        if any(r is not None for r in reports):
            pop_span.set(
                "verdicts",
                {
                    v: sum(
                        1
                        for r in reports
                        if r is not None and r.verdict.value == v
                    )
                    for v in {
                        r.verdict.value for r in reports if r is not None
                    }
                },
            )
    result = VerificationResult(
        results=reports,
        failures=batch_result.failures,
        workers=batch_result.workers,
        wall_s=batch_result.wall_s,
    )
    result.manifest = build_manifest(
        tel,
        kind="verification_batch",
        parameters={
            "n_chips": len(bare),
            "segment": segment,
            "n_reads": n_reads,
            "temperature_c": temperature_c,
            "workers": batch_result.workers,
            "batch": batch,
            "batched_chips": sum(len(c) for c in batch_chunks),
            "per_die_chips": len(per_die),
        },
        seeds={"chip_seeds": [c.seed for c in bare]},
        trace=merged,
        extra={
            "verdicts": result.verdict_counts,
            "chips": [
                {
                    "index": i,
                    "die_id": f"0x{bare[i].die_id:012X}",
                    "verdict": r.verdict.value if r is not None else None,
                    "ber": r.ber if r is not None else None,
                    "reason": r.reason if r is not None else "job failed",
                    "path": path_by_index[i],
                }
                for i, r in enumerate(reports)
            ],
        },
    )
    return result
