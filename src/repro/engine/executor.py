"""BatchExecutor: deterministic chip-granular fan-out over a process pool.

Flashmark's heavy workflows are embarrassingly parallel at the die
level — the paper imprints "during the die-sort testing phase" across
whole wafers, and family calibration sweeps t_PE over many sample
chips.  The executor fans such jobs across a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping the
results bit-identical to a serial run:

* **determinism** — a job is a picklable payload carrying its own seed;
  the job function derives every random draw from that payload, so
  results do not depend on scheduling, worker count or retry history;
* **chunked submission** — jobs are grouped into chunks to amortise
  pickling and process round-trips;
* **timeouts and retries** — each chunk's drain is bounded by
  ``timeout_s``; jobs of failed or timed-out chunks are retried inline
  (in the parent) up to ``retries`` times before being reported as
  :class:`JobFailure` entries;
* **graceful fallback** — with ``max_workers=1``, an unpicklable
  payload, or a pool that cannot start, the executor runs every job
  inline in submission order; callers observe the same
  :class:`BatchResult` either way.

The executor is workload-agnostic: the production line, family
calibration and population verification all submit their per-chip job
functions through :meth:`BatchExecutor.map`.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import warnings
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from ..faults import fault_point
from ..telemetry import current as current_telemetry

__all__ = ["BatchExecutor", "BatchResult", "JobFailure", "default_workers"]


class _FailedMarker:
    """Internal placeholder distinguishing "job failed" from a job whose
    function legitimately returned ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<failed>"


#: Private sentinel stored at failed indices while a batch accumulates.
_FAILED = _FailedMarker()


def default_workers() -> int:
    """CPUs available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


@dataclass(frozen=True)
class JobFailure:
    """One job that failed every attempt."""

    #: Index of the job in the submitted sequence.
    index: int
    #: The job payload as submitted.
    job: Any
    #: Formatted error (exception repr or traceback) of the last attempt.
    error: str
    #: Total attempts made (first run + retries).
    attempts: int
    #: Whether the final attempt timed out rather than raised.
    timed_out: bool = False


@dataclass
class BatchResult:
    """Outcome of one batch: the common ``.results`` / ``.failures`` /
    ``.manifest`` shape every batch-facing API returns.

    ``results`` is aligned with the submitted jobs (``None`` at failed
    indices).  A job function may itself legitimately return ``None`` —
    use :meth:`successes` / :meth:`failure_indices`, which are driven by
    the ``failures`` records rather than by the stored values, to tell
    the two cases apart.  ``manifest`` is filled by workload-level
    wrappers (production, calibration, verification), not by the
    executor.
    """

    results: List[Any]
    failures: List[JobFailure] = field(default_factory=list)
    manifest: Optional[dict] = None
    #: Worker processes the batch actually used (1 = inline/serial).
    workers: int = 1
    #: Parent-side wall time of the whole batch [s].
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every job produced a result."""
        return not self.failures

    def failure_indices(self) -> set:
        """Indices of jobs that failed every attempt."""
        return {f.index for f in self.failures}

    def successes(self) -> List[Any]:
        """The non-failed results, in submission order.

        Failure-index-aware: a job that returned ``None`` successfully
        is included (as ``None``), only jobs with a recorded
        :class:`JobFailure` are dropped.
        """
        failed = self.failure_indices()
        return [
            r for i, r in enumerate(self.results) if i not in failed
        ]


class _PoolUnavailable(Exception):
    """Internal: the process pool cannot be used for this batch."""


def _run_chunk(fn: Callable[[Any], Any], chunk: List) -> List:
    """Worker-side: run one chunk of (index, job) pairs.

    Per-job exceptions are captured so one bad die does not poison its
    chunk-mates; the parent decides whether to retry.
    """
    out = []
    for index, job in chunk:
        try:
            out.append((index, True, fn(job), None))
        except Exception:
            out.append((index, False, None, traceback.format_exc()))
    return out


class BatchExecutor:
    """Fans picklable jobs across worker processes, deterministically.

    Parameters
    ----------
    max_workers:
        Worker processes; ``None`` uses the CPUs available to this
        process, ``1`` runs every job inline (no pool, no pickling).
    chunk_size:
        Jobs per worker task; ``None`` auto-sizes to roughly four
        chunks per worker so stragglers still load-balance.
    timeout_s:
        Bound on draining each chunk once the engine starts waiting on
        it.  A hung worker cannot be killed portably, so a timed-out
        chunk's jobs are retried inline and the stuck process is left
        to the pool's shutdown.  ``None`` waits forever.
    retries:
        Inline re-attempts for jobs whose chunk failed, timed out, or
        whose own execution raised.  Retries are deterministic: a job's
        result depends only on its payload, so a retry after a
        transient worker crash reproduces exactly what the worker would
        have returned.
    mp_context:
        Multiprocessing start-method name (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.
    """

    def __init__(
        self,
        max_workers: Optional[int] = 1,
        *,
        chunk_size: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        mp_context: Optional[str] = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 (or None for auto)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None for auto)")
        self.max_workers = (
            max_workers if max_workers is not None else default_workers()
        )
        self.chunk_size = chunk_size
        self.timeout_s = timeout_s
        self.retries = retries
        self.mp_context = mp_context

    # -- public API -------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        jobs: Sequence[Any],
        *,
        telemetry=None,
    ) -> BatchResult:
        """Run ``fn`` over ``jobs``; results keep submission order.

        ``fn`` must be a module-level callable and each job a picklable
        payload when a pool is used; otherwise the batch silently runs
        inline (with a ``RuntimeWarning`` naming the reason).
        """
        tel = telemetry if telemetry is not None else current_telemetry()
        jobs = list(jobs)
        t0 = time.perf_counter()
        workers = min(self.max_workers, max(1, len(jobs)))
        tel.count("engine.batches")
        tel.count("engine.jobs", len(jobs))
        if workers <= 1 or not jobs:
            results, failures = self._run_inline(fn, jobs, tel)
            used = 1
        else:
            try:
                self._preflight(fn, jobs)
                results, failures = self._run_pool(fn, jobs, workers, tel)
                used = workers
            except _PoolUnavailable as exc:
                tel.count("engine.serial_fallbacks")
                warnings.warn(
                    f"engine: process pool unavailable ({exc}); "
                    f"running {len(jobs)} job(s) inline",
                    RuntimeWarning,
                    stacklevel=2,
                )
                results, failures = self._run_inline(fn, jobs, tel)
                used = 1
        if failures:
            tel.count("engine.failures", len(failures))
        # The public contract stores None at failed indices; the private
        # sentinel only disambiguates internally while accumulating.
        results = [None if r is _FAILED else r for r in results]
        return BatchResult(
            results=results,
            failures=sorted(failures, key=lambda f: f.index),
            workers=used,
            wall_s=time.perf_counter() - t0,
        )

    # -- internals --------------------------------------------------------

    def _auto_chunk(self, n_jobs: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, n_jobs // (4 * workers))

    @staticmethod
    def _preflight(fn: Callable, jobs: List) -> None:
        """Fail fast (to the inline path) on unpicklable work."""
        try:
            # Injection point: an "error" here (PicklingError) models an
            # unpicklable payload slipping past the caller.
            fault_point("engine.preflight")
            pickle.dumps(fn)
            if jobs:
                pickle.dumps(jobs[0])
        except Exception as exc:
            raise _PoolUnavailable(f"unpicklable job: {exc!r}") from exc

    def _attempt_inline(self, fn, index, job, tel, first_error, attempts):
        """Retry a job in the parent until it succeeds or runs dry."""
        error = first_error
        timed_out = error == "timeout"
        for _ in range(self.retries):
            attempts += 1
            tel.count("engine.retries")
            try:
                action = fault_point("engine.job")
                if action is not None and action.kind == "hang":
                    time.sleep(action.hang_s)
                return fn(job), None
            except Exception:
                error = traceback.format_exc()
                timed_out = False
        return None, JobFailure(
            index=index,
            job=job,
            error=error,
            attempts=attempts,
            timed_out=timed_out,
        )

    def _run_inline(self, fn, jobs, tel):
        results: List[Any] = [_FAILED] * len(jobs)
        failures: List[JobFailure] = []
        for index, job in enumerate(jobs):
            try:
                # Injection point: per-job "error" exercises the retry
                # path, "hang" a slow job, deterministically.
                action = fault_point("engine.job")
                if action is not None and action.kind == "hang":
                    time.sleep(action.hang_s)
                results[index] = fn(job)
            except Exception:
                value, failure = self._attempt_inline(
                    fn, index, job, tel, traceback.format_exc(), 1
                )
                if failure is None:
                    results[index] = value
                else:
                    failures.append(failure)
        return results, failures

    def _run_pool(self, fn, jobs, workers, tel):
        try:
            import multiprocessing

            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context
                else None
            )
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        except Exception as exc:
            raise _PoolUnavailable(f"pool start failed: {exc!r}") from exc

        chunk_size = self._auto_chunk(len(jobs), workers)
        indexed = list(enumerate(jobs))
        chunks = [
            indexed[i : i + chunk_size]
            for i in range(0, len(indexed), chunk_size)
        ]
        results: List[Any] = [_FAILED] * len(jobs)
        failures: List[JobFailure] = []
        pending: List = []  # (future, chunk) in submission order
        broken = False
        hung = False
        try:
            for chunk in chunks:
                pending.append((pool.submit(_run_chunk, fn, chunk), chunk))
            for future, chunk in pending:
                if broken:
                    self._finish_chunk_inline(
                        fn, chunk, "pool broken", results, failures, tel
                    )
                    continue
                if hung:
                    # The pool already wedged once: never wait another
                    # timeout_s per remaining chunk (worst case used to
                    # be n_chunks * timeout_s against a dead pool).
                    # Harvest chunks that happen to be done, drain the
                    # rest inline immediately.
                    future.cancel()
                    outcome = None
                    error = "timeout"
                    if future.done() and not future.cancelled():
                        try:
                            outcome = future.result(timeout=0)
                        except BrokenExecutor:
                            broken = True
                            error = "pool broken"
                        except Exception:
                            outcome = None
                    if outcome is None:
                        tel.count("engine.hung_skips")
                        self._finish_chunk_inline(
                            fn, chunk, error, results, failures, tel
                        )
                        continue
                    self._consume_outcome(
                        fn, jobs, outcome, results, failures, tel
                    )
                    continue
                try:
                    # Injection point: a scheduled TimeoutError or
                    # BrokenExecutor here simulates a hung worker or a
                    # crashed pool on exactly this chunk drain.
                    fault_point("engine.chunk")
                    outcome = future.result(timeout=self.timeout_s)
                except FutureTimeoutError:
                    tel.count("engine.timeouts")
                    hung = True
                    future.cancel()
                    self._finish_chunk_inline(
                        fn, chunk, "timeout", results, failures, tel
                    )
                    continue
                except BrokenExecutor:
                    broken = True
                    self._finish_chunk_inline(
                        fn, chunk, "pool broken", results, failures, tel
                    )
                    continue
                except Exception:
                    self._finish_chunk_inline(
                        fn,
                        chunk,
                        traceback.format_exc(),
                        results,
                        failures,
                        tel,
                    )
                    continue
                self._consume_outcome(
                    fn, jobs, outcome, results, failures, tel
                )
        finally:
            # A timed-out chunk may leave a worker wedged mid-job; don't
            # block teardown on it.  Otherwise join cleanly so no pool
            # plumbing outlives the batch.
            pool.shutdown(wait=not hung, cancel_futures=True)
        return results, failures

    def _consume_outcome(self, fn, jobs, outcome, results, failures, tel):
        """Fold one worker chunk's (index, ok, value, error) rows in."""
        for index, ok, value, error in outcome:
            if ok:
                results[index] = value
            else:
                value, failure = self._attempt_inline(
                    fn, index, jobs[index], tel, error, 1
                )
                if failure is None:
                    results[index] = value
                else:
                    failures.append(failure)

    def _finish_chunk_inline(self, fn, chunk, error, results, failures, tel):
        """Drain a failed/timed-out chunk's jobs in the parent."""
        for index, job in chunk:
            value, failure = self._attempt_inline(
                fn, index, job, tel, error, 1
            )
            if failure is None:
                results[index] = value
            else:
                failures.append(failure)
