"""Parallel batch engine: executor, calibration cache, batch APIs.

Flashmark's workloads are chip-granular and embarrassingly parallel —
producing and imprinting a die, sweeping one sample chip's calibration
grid, verifying one fielded chip are all independent jobs.  This package
provides the shared machinery:

* :class:`BatchExecutor` — fans picklable jobs across a process pool
  with deterministic per-job seeding, chunked submission, per-job
  timeout, bounded retry and a graceful single-process fallback;
* :class:`CalibrationCache` — memoizes published family calibrations
  keyed by a content hash of the family physics and settings, in memory
  and optionally on disk (versioned JSON);
* :func:`calibrate_family` / :func:`verify_population` — the
  batch-facing API surface (one calling convention, one result shape),
  alongside :meth:`repro.workloads.ProductionLine.run`.

Workers record their own telemetry; the engine folds the snapshots back
into the parent context so merged manifests reconcile device-clock
totals exactly like single-process runs.
"""

from .api import (
    CalibrationError,
    CalibrationResult,
    VerificationResult,
    VerifyBatchJob,
    VerifyJob,
    calibrate_family,
    run_verify_batch_job,
    run_verify_job,
    verify_population,
)
from .cache import CACHE_SCHEMA, CacheError, CalibrationCache
from .executor import (
    BatchExecutor,
    BatchResult,
    JobFailure,
    default_workers,
)

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "JobFailure",
    "default_workers",
    "CalibrationCache",
    "CacheError",
    "CACHE_SCHEMA",
    "CalibrationError",
    "CalibrationResult",
    "VerificationResult",
    "VerifyJob",
    "VerifyBatchJob",
    "calibrate_family",
    "run_verify_job",
    "run_verify_batch_job",
    "verify_population",
]
