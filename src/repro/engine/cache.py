"""CalibrationCache: memoized family calibrations, in memory and on disk.

Section IV publishes one t_PEW window per device family — "determined
by the manufacturer ... and can be publicly communicated to system
integrators".  Deriving it is the single most expensive step of every
session, benchmark and CLI verification (a full imprint plus a
~100-point partial-erase sweep per sample chip), yet the answer depends
only on the family physics and the calibration settings.  The cache
keys calibrations by a stable content hash of exactly those inputs, so
repeated sessions stop re-deriving the same published window.

Disk format (versioned)::

    {
      "schema": "flashmark.calibration-cache/v1",
      "entries": {
        "<sha256 key>": {
          "created_unix_s": ...,
          "key_fields": {...},        # human-readable key provenance
          "calibration": {...}        # FamilyCalibration fields
        }
      }
    }

Any change to a keyed field — family :class:`~repro.phys.PhysicalParams`,
imprint stress, replica format, probe grid, sample count, tolerance,
seed or operating point — changes the hash and misses the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.calibration import FamilyCalibration
from ..core.decoder import ErrorAsymmetry

__all__ = ["CACHE_SCHEMA", "CacheError", "CalibrationCache"]

CACHE_SCHEMA = "flashmark.calibration-cache/v1"


class CacheError(ValueError):
    """A cache file is unreadable, unversioned or structurally invalid."""


def _canonical(obj: Any) -> Any:
    """Make a key field JSON-canonical (tuples -> lists, numpy -> float)."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if hasattr(obj, "tolist"):
        return _canonical(obj.tolist())
    if hasattr(obj, "item"):
        return obj.item()
    return obj


def calibration_to_dict(calibration: FamilyCalibration) -> dict:
    """Serialize a :class:`FamilyCalibration` for the cache file."""
    return {
        "model": calibration.model,
        "t_pew_us": calibration.t_pew_us,
        "window_lo_us": calibration.window_lo_us,
        "window_hi_us": calibration.window_hi_us,
        "n_pe": calibration.n_pe,
        "n_replicas": calibration.n_replicas,
        "expected_ber": calibration.expected_ber,
        "asymmetry": {
            "p_bad_reads_good": calibration.asymmetry.p_bad_reads_good,
            "p_good_reads_bad": calibration.asymmetry.p_good_reads_bad,
        },
        "window_tolerance": calibration.window_tolerance,
        "operating_point": calibration.operating_point,
    }


def calibration_from_dict(raw: dict) -> FamilyCalibration:
    """Inverse of :func:`calibration_to_dict`."""
    try:
        asym = raw["asymmetry"]
        return FamilyCalibration(
            model=raw["model"],
            t_pew_us=float(raw["t_pew_us"]),
            window_lo_us=float(raw["window_lo_us"]),
            window_hi_us=float(raw["window_hi_us"]),
            n_pe=int(raw["n_pe"]),
            n_replicas=int(raw["n_replicas"]),
            expected_ber=float(raw["expected_ber"]),
            asymmetry=ErrorAsymmetry(
                p_bad_reads_good=float(asym["p_bad_reads_good"]),
                p_good_reads_bad=float(asym["p_good_reads_bad"]),
            ),
            window_tolerance=float(raw["window_tolerance"]),
            operating_point=raw["operating_point"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError(f"malformed cached calibration: {exc}") from exc


class CalibrationCache:
    """Hash-keyed store of :class:`FamilyCalibration` results.

    Parameters
    ----------
    path:
        Optional JSON file backing the cache.  An existing file is
        loaded eagerly; new entries are written back on every
        :meth:`put` when ``autosave`` is on.
    autosave:
        Persist after each :meth:`put` (default).  With it off, call
        :meth:`save` explicitly.
    strict:
        With the default ``strict=False``, a truncated or corrupted
        backing file degrades to an empty cache (every lookup misses)
        with a :class:`RuntimeWarning` — a damaged memo file must never
        take down a calibration run.  ``strict=True`` restores the old
        fail-fast behaviour and raises :class:`CacheError` instead.
        Explicit :meth:`load` calls always raise.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        autosave: bool = True,
        strict: bool = False,
    ):
        self.path = Path(path) if path is not None else None
        self.autosave = autosave
        self.hits = 0
        self.misses = 0
        #: The load error a non-strict constructor recovered from, if any.
        self.recovered_error: Optional[str] = None
        self._entries: Dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            try:
                self.load(self.path)
            except CacheError as exc:
                if strict:
                    raise
                self.recovered_error = str(exc)
                warnings.warn(
                    f"ignoring unreadable calibration cache: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- keying -----------------------------------------------------------

    @staticmethod
    def key_for(**fields: Any) -> str:
        """Stable content hash of the calibration inputs.

        Callers pass every input that influences the published window
        (model, flattened physical parameters, stress, format, grid,
        settings); the key is the SHA-256 of their canonical JSON.
        """
        blob = json.dumps(
            _canonical(fields), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- access -----------------------------------------------------------

    def get(self, key: str) -> Optional[FamilyCalibration]:
        """The cached calibration for ``key``, or None (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return calibration_from_dict(entry["calibration"])

    def put(
        self,
        key: str,
        calibration: FamilyCalibration,
        key_fields: Optional[dict] = None,
    ) -> None:
        """Store ``calibration`` under ``key`` (and autosave if backed)."""
        self._entries[key] = {
            "created_unix_s": time.time(),
            "key_fields": _canonical(key_fields or {}),
            "calibration": calibration_to_dict(calibration),
        }
        if self.autosave and self.path is not None:
            self.save()

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        existed = self._entries.pop(key, None) is not None
        if existed and self.autosave and self.path is not None:
            self.save()
        return existed

    def clear(self) -> None:
        self._entries.clear()
        if self.autosave and self.path is not None:
            self.save()

    # -- persistence ------------------------------------------------------

    def load(self, path: Optional[Union[str, Path]] = None) -> int:
        """Load entries from ``path`` (merging over in-memory entries).

        Returns the number of entries loaded; raises :class:`CacheError`
        on an unreadable or unversioned file.
        """
        path = Path(path) if path is not None else self.path
        if path is None:
            raise CacheError("no cache path configured")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except OSError as exc:
            raise CacheError(f"cannot read cache {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CacheError(f"{path}: not valid JSON ({exc})") from exc
        schema = raw.get("schema") if isinstance(raw, dict) else None
        if schema != CACHE_SCHEMA:
            raise CacheError(
                f"{path}: not a calibration cache "
                f"(schema={schema!r}, expected {CACHE_SCHEMA!r})"
            )
        entries = raw.get("entries")
        if not isinstance(entries, dict):
            raise CacheError(f"{path}: missing 'entries' table")
        self._entries.update(entries)
        return len(entries)

    def save(self, path: Optional[Union[str, Path]] = None) -> None:
        """Write the cache as versioned JSON to ``path`` (or ``self.path``).

        Crash-safe: the payload is written to a sibling temp file,
        flushed and fsynced, then atomically renamed over the target —
        a reader never observes a half-written cache.
        """
        path = Path(path) if path is not None else self.path
        if path is None:
            raise CacheError("no cache path configured")
        payload = {"schema": CACHE_SCHEMA, "entries": self._entries}
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def stats(self) -> dict:
        """Hit/miss counters and entry count (for manifests and the CLI)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "path": str(self.path) if self.path is not None else None,
        }
