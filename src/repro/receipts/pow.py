"""Hashcash-style proof-of-work tickets for the open verify endpoint.

The token buckets in :mod:`repro.service.server` meter *named* clients;
an anonymous flash-crowd can sidestep them by rotating client ids.  PoW
meters by compute instead: before the server even decodes a chip blob,
the request must carry a ticket whose hash

    SHA256(client_id | endpoint | body_hash | nonce)

has at least ``difficulty`` leading zero *bits*.  ``body_hash`` is the
hex SHA-256 of the request body excluding the ``pow`` field itself and
the router-rewritten ``trace`` field, so a ticket binds to one exact
request — replaying it with a different
chip, family or request id changes ``body_hash`` and invalidates the
ticket.  Replaying it with the *same* body is caught by the server-side
replay cache: each ticket digest is accepted exactly once.

``difficulty`` counts bits, so each +1 doubles expected minting work;
0 disables the gate entirely (the server then never answers 428).
Rejections use the dedicated ``428 POW_REQUIRED`` wire code — distinct
from ``429`` so a client can tell "mint harder" apart from "back off".
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Optional, Tuple

__all__ = [
    "POW_ENDPOINT_VERIFY",
    "body_hash",
    "ticket_digest",
    "leading_zero_bits",
    "mint_ticket",
    "check_ticket",
    "PowGate",
]

#: Endpoint label verify tickets bind to — stable whether the request
#: lands on a lone server, a shard, or travels through the router.
POW_ENDPOINT_VERIFY = "verify"

#: Wire fields excluded from the body hash: the ticket itself, plus
#: ``trace`` — the fleet router re-parents the traceparent before
#: forwarding, so binding PoW to it would invalidate every ticket that
#: crosses the router.  Trace context is observability metadata, not
#: request semantics; excluding it costs nothing security-wise.
_EXCLUDED_FIELDS = ("pow", "nonce", "difficulty", "trace")


def body_hash(body: dict) -> str:
    """Hex SHA-256 of a request body, excluding the ticket fields."""
    trimmed = {
        k: v for k, v in body.items() if k not in _EXCLUDED_FIELDS
    }
    blob = json.dumps(
        trimmed, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def ticket_digest(
    client_id: str, endpoint: str, body_hash_hex: str, nonce: int
) -> bytes:
    """The hashcash digest a ticket is judged (and replay-keyed) by."""
    blob = f"{client_id}|{endpoint}|{body_hash_hex}|{int(nonce)}"
    return hashlib.sha256(blob.encode("utf-8")).digest()


def leading_zero_bits(digest: bytes) -> int:
    """Number of leading zero bits of a digest."""
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        # 7 - floor(log2(byte)) leading zeros within this byte.
        bits += 8 - byte.bit_length()
        break
    return bits


def mint_ticket(
    client_id: str,
    body: dict,
    difficulty: int,
    *,
    endpoint: str = POW_ENDPOINT_VERIFY,
    start_nonce: int = 0,
    max_iterations: Optional[int] = None,
) -> dict:
    """Search nonces until the digest clears ``difficulty`` bits.

    Returns the wire ticket ``{"nonce": n, "difficulty": d}``.  Expected
    work is ``2**difficulty`` hashes; ``max_iterations`` bounds a search
    that cannot finish (raises ``RuntimeError`` when exhausted).
    """
    if difficulty < 0:
        raise ValueError("difficulty must be >= 0")
    bh = body_hash(body)
    nonce = int(start_nonce)
    remaining = max_iterations
    while True:
        digest = ticket_digest(client_id, endpoint, bh, nonce)
        if leading_zero_bits(digest) >= difficulty:
            return {"nonce": nonce, "difficulty": int(difficulty)}
        nonce += 1
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                raise RuntimeError(
                    f"no nonce cleared difficulty {difficulty} within "
                    f"{max_iterations} iterations"
                )


def check_ticket(
    client_id: str,
    body: dict,
    nonce: int,
    difficulty: int,
    *,
    endpoint: str = POW_ENDPOINT_VERIFY,
) -> bool:
    """True when ``nonce`` clears ``difficulty`` bits for this body."""
    digest = ticket_digest(client_id, endpoint, body_hash(body), nonce)
    return leading_zero_bits(digest) >= difficulty


class PowGate:
    """Server-side ticket checker with an exactly-once replay cache.

    ``difficulty == 0`` disables the gate: :meth:`evaluate` always
    accepts and records nothing, so a server configured without PoW
    behaves byte-identically to one predating the feature.

    The replay cache is a bounded FIFO over accepted ticket digests —
    a ticket is spendable exactly once within the cache horizon.  The
    bound keeps memory flat under sustained anonymous load; an attacker
    who waits for eviction must still re-mint against a fresh nonce
    for less total throughput than honest minting.
    """

    #: Rejection reasons, also used as telemetry counter suffixes.
    MISSING = "missing"
    MALFORMED = "malformed"
    WEAK = "weak"
    REPLAYED = "replayed"

    def __init__(self, difficulty: int, *, replay_cache: int = 4096):
        if difficulty < 0:
            raise ValueError("difficulty must be >= 0")
        if replay_cache < 1:
            raise ValueError("replay_cache must be >= 1")
        self.difficulty = int(difficulty)
        self.replay_cache = int(replay_cache)
        self._seen: "OrderedDict[bytes, None]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.difficulty > 0

    def evaluate(
        self,
        client_id: str,
        body: dict,
        *,
        endpoint: str = POW_ENDPOINT_VERIFY,
    ) -> Tuple[bool, Optional[str]]:
        """``(accepted, rejection_reason)`` for one request body.

        The ticket is read from ``body["pow"]`` (``{"nonce": int}``);
        acceptance spends it — an identical ticket on an identical body
        is rejected as ``"replayed"`` afterwards.
        """
        if not self.enabled:
            return True, None
        ticket = body.get("pow")
        if ticket is None:
            return False, self.MISSING
        if not isinstance(ticket, dict) or not isinstance(
            ticket.get("nonce"), int
        ):
            return False, self.MALFORMED
        nonce = ticket["nonce"]
        digest = ticket_digest(
            client_id, endpoint, body_hash(body), nonce
        )
        if leading_zero_bits(digest) < self.difficulty:
            return False, self.WEAK
        if digest in self._seen:
            return False, self.REPLAYED
        self._seen[digest] = None
        while len(self._seen) > self.replay_cache:
            self._seen.popitem(last=False)
        return True, None
