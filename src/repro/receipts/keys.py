"""Receipt signing keys: Ed25519 when available, HMAC as a fallback.

A receipt is only *publicly* verifiable when checking it needs no
secret.  Ed25519 gives that: the manufacturer holds a 32-byte seed,
publishes the 32-byte verifying key in the registry, and anyone holding
the registry snapshot can check signatures offline.  The implementation
comes from the ``cryptography`` package when it is importable.

When ``cryptography`` is absent the module degrades to HMAC-SHA256
with a documented trust caveat: the "verifying key" is the secret
itself, so whoever can verify a receipt can also forge one.  That
reduces the trust model from *publicly verifiable* back to *shared
secret* — fine for an integrator who already trusts the operator,
useless for customs screening.  :data:`best_algorithm` reports which
world the process is in; servers degrade rather than fail
(``docs/robustness.md``).

Keys never enter the registry in private form: the registry stores the
*verifying* key (next to the watermark signing-key fingerprint it
already keeps), and :func:`key_fingerprint` of that verifying key is
the ``key_id`` stamped into every receipt.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import Optional, Tuple

__all__ = [
    "ED25519",
    "HMAC_SHA256",
    "ALGORITHMS",
    "ReceiptKeyError",
    "ed25519_available",
    "best_algorithm",
    "generate_key",
    "key_fingerprint",
    "ReceiptSigner",
    "verify_signature",
    "keypair_for",
]

ED25519 = "ed25519"
#: Symmetric fallback: verification needs the signing secret, so a
#: verifier can forge — not publicly verifiable, only tamper-evident
#: between parties that already share the key.
HMAC_SHA256 = "hmac-sha256"

ALGORITHMS = (ED25519, HMAC_SHA256)

#: Both algorithms take a 32-byte private input.
KEY_BYTES = 32


class ReceiptKeyError(ValueError):
    """A key or algorithm argument is unusable."""


def _ed25519():
    """The cryptography Ed25519 module, or None when unavailable."""
    try:
        from cryptography.hazmat.primitives.asymmetric import ed25519

        return ed25519
    except Exception:  # pragma: no cover - depends on environment
        return None


def ed25519_available() -> bool:
    return _ed25519() is not None


def best_algorithm() -> str:
    """The strongest algorithm this process can sign with."""
    return ED25519 if ed25519_available() else HMAC_SHA256


def generate_key() -> bytes:
    """A fresh 32-byte private key (Ed25519 seed / HMAC secret)."""
    return os.urandom(KEY_BYTES)


def key_fingerprint(verify_key: bytes) -> str:
    """SHA-256 hex of a verifying key — the ``key_id`` in receipts.

    Matches :meth:`repro.service.WatermarkRegistry.fingerprint` so the
    two key surfaces read alike in audit output.
    """
    return hashlib.sha256(bytes(verify_key)).hexdigest()


def _check_algorithm(algorithm: str) -> str:
    if algorithm not in ALGORITHMS:
        raise ReceiptKeyError(
            f"unknown receipt algorithm {algorithm!r} "
            f"(expected one of {', '.join(ALGORITHMS)})"
        )
    if algorithm == ED25519 and not ed25519_available():
        raise ReceiptKeyError(
            "ed25519 requested but the 'cryptography' package is not "
            "importable; use hmac-sha256 (shared-secret trust) instead"
        )
    return algorithm


class ReceiptSigner:
    """Sign receipt bytes with a 32-byte private key.

    Parameters
    ----------
    key:
        The private input — an Ed25519 seed or an HMAC secret,
        exactly 32 bytes.
    algorithm:
        ``"ed25519"`` or ``"hmac-sha256"``; defaults to the best one
        available in this process.
    """

    def __init__(self, key: bytes, algorithm: Optional[str] = None):
        if len(key) != KEY_BYTES:
            raise ReceiptKeyError(
                f"receipt key must be {KEY_BYTES} bytes, got {len(key)}"
            )
        self.algorithm = _check_algorithm(
            algorithm if algorithm is not None else best_algorithm()
        )
        self._key = bytes(key)
        if self.algorithm == ED25519:
            ed = _ed25519()
            self._private = ed.Ed25519PrivateKey.from_private_bytes(
                self._key
            )
            from cryptography.hazmat.primitives import serialization

            self.verify_key = self._private.public_key().public_bytes(
                serialization.Encoding.Raw,
                serialization.PublicFormat.Raw,
            )
        else:
            self._private = None
            # HMAC caveat: the "verifying key" is the secret itself.
            self.verify_key = self._key

    @property
    def key_id(self) -> str:
        return key_fingerprint(self.verify_key)

    def sign(self, message: bytes) -> bytes:
        if self.algorithm == ED25519:
            return self._private.sign(message)
        return hmac.new(self._key, message, hashlib.sha256).digest()


def verify_signature(
    algorithm: str,
    verify_key: bytes,
    message: bytes,
    signature: bytes,
) -> bool:
    """Check one signature; False rather than raising on mismatch."""
    if algorithm == HMAC_SHA256:
        expected = hmac.new(
            bytes(verify_key), message, hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, bytes(signature))
    if algorithm == ED25519:
        ed = _ed25519()
        if ed is None:
            raise ReceiptKeyError(
                "cannot verify ed25519 signatures: the 'cryptography' "
                "package is not importable"
            )
        try:
            ed.Ed25519PublicKey.from_public_bytes(
                bytes(verify_key)
            ).verify(bytes(signature), message)
            return True
        except Exception:
            return False
    raise ReceiptKeyError(f"unknown receipt algorithm {algorithm!r}")


def keypair_for(
    key: bytes, algorithm: Optional[str] = None
) -> Tuple[str, bytes]:
    """``(algorithm, verify_key)`` a private key would publish."""
    signer = ReceiptSigner(key, algorithm)
    return signer.algorithm, signer.verify_key
