"""repro.receipts — publicly verifiable verdicts + PoW metering.

The trust layer over the verification service: every verify verdict
can be issued as a signed **receipt** anchored in the registry's
hash-chained audit log (:mod:`repro.receipts.receipt`), checkable
offline by anyone holding the family's published verifying key
(:mod:`repro.receipts.keys` — Ed25519, HMAC fallback with a
shared-secret caveat).  Anonymous open-loop traffic is metered with
hashcash-style proof-of-work tickets (:mod:`repro.receipts.pow`)
answered with the dedicated ``428 POW_REQUIRED`` wire code.

Quick start (offline check, zero network access)::

    from repro.receipts import read_receipts, verify_receipts_offline

    receipts = read_receipts("receipts.jsonl")
    report = verify_receipts_offline(
        receipts,
        keys={"msp430-default": ("ed25519", verify_key_bytes)},
        audit_entries=registry.audit_entries(),
    )
    assert report["ok"] == report["checked"], report["failures"]

``python -m repro receipt {verify,show}`` and ``repro pow mint`` wrap
the same functions for the shell; see ``docs/service.md`` for the
trust-boundary diagram.
"""

from .keys import (
    ALGORITHMS,
    ED25519,
    HMAC_SHA256,
    KEY_BYTES,
    ReceiptKeyError,
    ReceiptSigner,
    best_algorithm,
    ed25519_available,
    generate_key,
    key_fingerprint,
    keypair_for,
    verify_signature,
)
from .pow import (
    POW_ENDPOINT_VERIFY,
    PowGate,
    body_hash,
    check_ticket,
    leading_zero_bits,
    mint_ticket,
    ticket_digest,
)
from .receipt import (
    RECEIPT_SCHEMA,
    AnchorIndex,
    ReceiptError,
    build_receipt,
    check_anchor,
    params_hash,
    read_receipts,
    signing_bytes,
    verify_receipt,
    verify_receipts_offline,
    write_receipts,
)

__all__ = [
    "RECEIPT_SCHEMA",
    "ALGORITHMS",
    "ED25519",
    "HMAC_SHA256",
    "KEY_BYTES",
    "POW_ENDPOINT_VERIFY",
    "ReceiptKeyError",
    "ReceiptError",
    "ReceiptSigner",
    "AnchorIndex",
    "PowGate",
    "best_algorithm",
    "ed25519_available",
    "generate_key",
    "key_fingerprint",
    "keypair_for",
    "verify_signature",
    "body_hash",
    "check_ticket",
    "leading_zero_bits",
    "mint_ticket",
    "ticket_digest",
    "build_receipt",
    "check_anchor",
    "params_hash",
    "read_receipts",
    "signing_bytes",
    "verify_receipt",
    "verify_receipts_offline",
    "write_receipts",
]
