"""Signed verify-verdict receipts (``flashmark.receipt/v1``).

A receipt turns one verify response into a claim anyone can check
offline, against nothing but the manufacturer's published verifying
key and a registry (or fleet-audit) snapshot::

    {"schema": "flashmark.receipt/v1",
     "family": "msp430-default", "die_id": "0x00000000002A",
     "decision": "authentic", "statistic": 0.125,
     "params_hash": "<sha256 of the published calibration+format>",
     "history_seq": 17,
     "audit_head": "<entry_hash of the audit chain head at issuance>",
     "issued_unix_s": 1754650000.0,
     "algorithm": "ed25519", "key_id": "<sha256 of verify key>",
     "sig": "<hex signature over every other field>"}

Three independent checks compose into public verifiability:

1. **Signature** — the ``sig`` covers the canonical JSON of every
   other field, so a tampered decision or statistic fails the key.
2. **Anchor** — ``audit_head`` must be a real ``entry_hash`` in the
   hash-chained audit log.  The chain is append-only, so every
   historical head survives as some entry's hash; an operator who
   rewrites history breaks either the chain or the anchor.
3. **History** — ``history_seq`` must match a ``verification.record``
   audit entry whose recorded die id and verdict agree with the
   receipt, tying the signed claim to the registry row it created.

None of the checks needs the issuing server: the CLI
(``repro receipt verify``) runs them against a registry snapshot or a
``flashmark.fleet-audit/v1`` document with zero network access.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .keys import ReceiptSigner, verify_signature

__all__ = [
    "RECEIPT_SCHEMA",
    "ReceiptError",
    "params_hash",
    "signing_bytes",
    "build_receipt",
    "verify_receipt",
    "AnchorIndex",
    "check_anchor",
    "verify_receipts_offline",
    "read_receipts",
    "write_receipts",
]

RECEIPT_SCHEMA = "flashmark.receipt/v1"

#: Every field a receipt must carry (``sig`` covers all the others).
_REQUIRED_FIELDS = (
    "schema",
    "family",
    "die_id",
    "decision",
    "statistic",
    "params_hash",
    "history_seq",
    "audit_head",
    "issued_unix_s",
    "algorithm",
    "key_id",
    "sig",
)


class ReceiptError(ValueError):
    """A receipt fails a verification check."""


def _canonical(obj) -> bytes:
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def params_hash(
    family_id: str,
    model: str,
    calibration: dict,
    format: dict,
) -> str:
    """Hex digest binding a receipt to the published family params.

    Computed over the same dict forms the registry persists
    (``calibration_json`` / ``format_json``), so re-deriving it from a
    registry snapshot reproduces the issuing server's value exactly.
    """
    return hashlib.sha256(
        _canonical(
            {
                "family": family_id,
                "model": model,
                "calibration": calibration,
                "format": format,
            }
        )
    ).hexdigest()


def signing_bytes(receipt: dict) -> bytes:
    """The canonical bytes the signature covers (all fields but sig)."""
    return _canonical(
        {k: v for k, v in receipt.items() if k != "sig"}
    )


def build_receipt(
    signer: ReceiptSigner,
    *,
    family: str,
    die_id: str,
    decision: str,
    statistic: float,
    params_hash: str,
    history_seq: Optional[int],
    audit_head: str,
    issued_unix_s: Optional[float] = None,
) -> dict:
    """Assemble and sign one receipt."""
    receipt = {
        "schema": RECEIPT_SCHEMA,
        "family": family,
        "die_id": die_id,
        "decision": decision,
        "statistic": statistic,
        "params_hash": params_hash,
        "history_seq": history_seq,
        "audit_head": audit_head,
        "issued_unix_s": (
            issued_unix_s if issued_unix_s is not None else time.time()
        ),
        "algorithm": signer.algorithm,
        "key_id": signer.key_id,
    }
    receipt["sig"] = signer.sign(signing_bytes(receipt)).hex()
    return receipt


def verify_receipt(
    receipt: dict,
    verify_key: bytes,
    *,
    algorithm: Optional[str] = None,
) -> None:
    """Check a receipt's shape and signature; raises on failure.

    ``algorithm`` pins the expected algorithm; by default the
    receipt's own claim is used (the signature still fails if the
    claim lies, since ``algorithm`` is under the signature).
    """
    if not isinstance(receipt, dict):
        raise ReceiptError("receipt must be a JSON object")
    missing = [f for f in _REQUIRED_FIELDS if f not in receipt]
    if missing:
        raise ReceiptError(
            f"receipt is missing field(s): {', '.join(missing)}"
        )
    if receipt["schema"] != RECEIPT_SCHEMA:
        raise ReceiptError(
            f"schema {receipt['schema']!r} is not {RECEIPT_SCHEMA!r}"
        )
    claimed = receipt["algorithm"]
    if algorithm is not None and claimed != algorithm:
        raise ReceiptError(
            f"receipt algorithm {claimed!r} is not the expected "
            f"{algorithm!r}"
        )
    try:
        signature = bytes.fromhex(receipt["sig"])
    except (TypeError, ValueError) as exc:
        raise ReceiptError(f"undecodable signature: {exc}") from exc
    if not verify_signature(
        claimed, verify_key, signing_bytes(receipt), signature
    ):
        raise ReceiptError(
            "signature check failed (tampered receipt or wrong key)"
        )


class AnchorIndex:
    """Fast anchor lookups over an audit log (or fleet timeline).

    Accepts the entry dicts of
    :meth:`repro.service.WatermarkRegistry.audit_entries` or of a
    ``flashmark.fleet-audit/v1`` merged ``timeline`` — both carry
    ``entry_hash``, ``action`` and ``detail``.
    """

    def __init__(self, entries: Iterable[dict]):
        self.entry_hashes = set()
        self.records: Dict[int, dict] = {}
        for entry in entries:
            self.entry_hashes.add(entry["entry_hash"])
            if entry.get("action") == "verification.record":
                detail = entry.get("detail") or {}
                seq = detail.get("seq")
                if isinstance(seq, int):
                    self.records[seq] = detail


def check_anchor(receipt: dict, index: AnchorIndex) -> None:
    """Check a receipt's audit-chain anchor; raises on failure."""
    head = receipt.get("audit_head")
    if head not in index.entry_hashes:
        raise ReceiptError(
            "audit_head is not an entry of the audit chain "
            "(rewritten log, foreign registry, or forged receipt)"
        )
    seq = receipt.get("history_seq")
    if seq is None:
        # Issued while the registry was degraded (history unrecorded);
        # the signature and head anchor still hold.
        return
    detail = index.records.get(seq)
    if detail is None:
        raise ReceiptError(
            f"history_seq {seq} has no verification.record audit entry"
        )
    if detail.get("die_id") != receipt.get("die_id"):
        raise ReceiptError(
            f"history_seq {seq} recorded die "
            f"{detail.get('die_id')!r}, receipt claims "
            f"{receipt.get('die_id')!r}"
        )
    if detail.get("verdict") != receipt.get("decision"):
        raise ReceiptError(
            f"history_seq {seq} recorded verdict "
            f"{detail.get('verdict')!r}, receipt claims "
            f"{receipt.get('decision')!r}"
        )


def verify_receipts_offline(
    receipts: List[dict],
    *,
    keys: Dict[str, Tuple[str, bytes]],
    audit_entries: Optional[Iterable[dict]] = None,
    params_hashes: Optional[Dict[str, str]] = None,
) -> dict:
    """Run the full offline check over a batch of receipts.

    Parameters
    ----------
    keys:
        ``family -> (algorithm, verify_key)``.  A receipt for a family
        with no key fails (nothing to check its signature against).
    audit_entries:
        Audit-log entries (registry or fleet timeline) for the anchor
        checks; None skips anchoring (signature-only mode).
    params_hashes:
        ``family -> expected params_hash``; receipts claiming other
        published parameters fail.

    Returns a ``flashmark.receipt-check/v1`` report; never raises for
    individual bad receipts — they land in ``failures``.
    """
    index = (
        AnchorIndex(audit_entries) if audit_entries is not None else None
    )
    failures: List[dict] = []
    algorithms: Dict[str, int] = {}
    for i, receipt in enumerate(receipts):
        family = (
            receipt.get("family") if isinstance(receipt, dict) else None
        )
        try:
            key = keys.get(family)
            if key is None:
                raise ReceiptError(
                    f"no verifying key for family {family!r}"
                )
            algorithm, verify_key = key
            verify_receipt(receipt, verify_key, algorithm=algorithm)
            if params_hashes is not None:
                expected = params_hashes.get(family)
                if (
                    expected is not None
                    and receipt["params_hash"] != expected
                ):
                    raise ReceiptError(
                        "params_hash does not match the published "
                        "family parameters"
                    )
            if index is not None:
                check_anchor(receipt, index)
        except ReceiptError as exc:
            failures.append(
                {
                    "index": i,
                    "family": family,
                    "die_id": (
                        receipt.get("die_id")
                        if isinstance(receipt, dict)
                        else None
                    ),
                    "error": str(exc),
                }
            )
            continue
        algo = receipt["algorithm"]
        algorithms[algo] = algorithms.get(algo, 0) + 1
    return {
        "schema": "flashmark.receipt-check/v1",
        "checked": len(receipts),
        "ok": len(receipts) - len(failures),
        "anchored": index is not None,
        "algorithms": algorithms,
        "failures": failures,
    }


def read_receipts(path: Union[str, Path]) -> List[dict]:
    """Load a receipts JSONL file (blank lines ignored)."""
    receipts = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                receipts.append(json.loads(line))
    return receipts


def write_receipts(
    receipts: Iterable[dict], path: Union[str, Path]
) -> Path:
    """Persist receipts as JSONL (one receipt per line)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        for receipt in receipts:
            fh.write(
                json.dumps(
                    receipt, sort_keys=True, separators=(",", ":")
                )
                + "\n"
            )
    return out
