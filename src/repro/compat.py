"""Version-portability shims shared across the package.

The project declares a wide dependency window (``numpy>=1.21`` in
``pyproject.toml``), so hot-path code must not call APIs that exist only
at one end of that window.  ``np.trapezoid`` is the canonical example:
it was introduced in numpy 2.0 as the new name of ``np.trapz`` (which
2.x deprecates), so naming either one directly breaks one half of the
supported range.  Every caller goes through :func:`trapezoid` instead.

A CI leg installs the declared *minimum* dependency versions and runs
the test suite against them, so a newly introduced floor violation
fails the build instead of surfacing as an ``AttributeError`` on a
user's older install.
"""

from __future__ import annotations

import numpy as np

__all__ = ["trapezoid"]

#: The integration routine available under this numpy: ``np.trapezoid``
#: (numpy >= 2.0) or the legacy ``np.trapz`` spelling (numpy 1.x).
_TRAPEZOID = getattr(np, "trapezoid", None)
if _TRAPEZOID is None:  # pragma: no cover - exercised on numpy 1.x only
    _TRAPEZOID = np.trapz


def trapezoid(y, x=None, dx: float = 1.0, axis: int = -1):
    """Trapezoidal-rule integration, portable across numpy 1.x and 2.x.

    Same contract as ``np.trapezoid`` / ``np.trapz``: integrate ``y``
    along ``axis`` using sample points ``x`` (or uniform spacing
    ``dx``).
    """
    if x is not None:
        return _TRAPEZOID(y, x=x, axis=axis)
    return _TRAPEZOID(y, dx=dx, axis=axis)
