"""Multi-stress-level characterisation sweeps (paper Fig. 4).

Drives the Fig. 3 procedures over a set of segments preconditioned to
different wear levels (0 K .. 100 K program/erase cycles) and collects
one :class:`CharacterizationResult` per level — the data behind Fig. 4's
family of cells_0/cells_1 curves and the Section III list of full-erase
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..device.mcu import Microcontroller
from .partial_erase import (
    CharacterizationResult,
    characterize_segment,
    default_t_pe_grid,
    stress_segment,
)

__all__ = ["StressSweepResult", "run_stress_sweep"]


@dataclass
class StressSweepResult:
    """Characterisation curves for several stress levels on one chip."""

    #: stress level (P/E cycles) -> characterisation curve
    curves: Dict[int, CharacterizationResult]

    @property
    def stress_levels(self) -> list:
        return sorted(self.curves)

    def full_erase_times_us(self) -> Dict[int, Optional[float]]:
        """Stress level -> minimum t_PE at which all cells read erased."""
        return {
            level: curve.full_erase_time_us()
            for level, curve in self.curves.items()
        }

    def onsets_us(self) -> Dict[int, Optional[float]]:
        """Stress level -> first t_PE at which any cell reads erased."""
        return {
            level: curve.transition_onset_us()
            for level, curve in self.curves.items()
        }


def run_stress_sweep(
    mcu: Microcontroller,
    stress_levels: Sequence[int] = (0, 20_000, 40_000, 60_000, 80_000, 100_000),
    t_pe_values_us: Optional[np.ndarray] = None,
    n_reads: int = 3,
    first_segment: int = 0,
) -> StressSweepResult:
    """Precondition one segment per stress level and characterise each.

    Mirrors the Section III experiment: segment *i* receives
    ``stress_levels[i]`` full program/erase cycles (every bit programmed,
    then the segment erased), then the partial-erase characterisation of
    Fig. 3 runs on it.

    Parameters
    ----------
    mcu:
        Simulated chip with at least ``len(stress_levels)`` segments
        available from ``first_segment``.
    stress_levels:
        P/E cycle counts; the paper uses 0 K to 100 K in 20 K steps.
    t_pe_values_us:
        Partial-erase sampling grid (defaults to
        :func:`default_t_pe_grid`).
    n_reads:
        Majority-vote reads per word in AnalyzeSegment.
    """
    if t_pe_values_us is None:
        t_pe_values_us = default_t_pe_grid()
    needed = first_segment + len(stress_levels)
    if needed > mcu.geometry.n_segments:
        raise ValueError(
            f"sweep needs {needed} segments, chip has "
            f"{mcu.geometry.n_segments}"
        )
    curves: Dict[int, CharacterizationResult] = {}
    for i, level in enumerate(stress_levels):
        segment = first_segment + i
        if level:
            stress_segment(mcu.flash, segment, int(level))
        curves[int(level)] = characterize_segment(
            mcu.flash, segment, t_pe_values_us, n_reads=n_reads
        )
    return StressSweepResult(curves=curves)
