"""Characterisation of flash cell physical properties (paper Section III).

Implements the two pseudocode procedures of Fig. 3:

* ``AnalyzeSegment`` — read every word of a segment N times (N odd) and
  majority-vote each bit, returning the counts of cells reading
  programmed (``cells_0``) and erased (``cells_1``);
* ``CharacterizeSegment`` — for increasing partial-erase times t_PE:
  erase the segment, program it fully, initiate an erase, abort after
  t_PE, and analyse — tracing out the wear-dependent erase transition
  that Figs. 4 and 5 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..device.controller import FlashController

__all__ = [
    "AnalysisResult",
    "CharacterizationPoint",
    "CharacterizationResult",
    "analyze_segment",
    "characterize_segment",
    "stress_segment",
    "default_t_pe_grid",
]


@dataclass(frozen=True)
class AnalysisResult:
    """Output of one AnalyzeSegment round."""

    #: Number of cells reading programmed (logic 0) after majority vote.
    cells_0: int
    #: Number of cells reading erased (logic 1) after majority vote.
    cells_1: int
    #: The majority-voted bit map itself (1 = erased).
    bits: np.ndarray

    @property
    def total(self) -> int:
        return self.cells_0 + self.cells_1


@dataclass(frozen=True)
class CharacterizationPoint:
    """One (t_PE, cells_0, cells_1) sample of the erase transition."""

    t_pe_us: float
    cells_0: int
    cells_1: int


@dataclass
class CharacterizationResult:
    """A full partial-erase sweep over one segment.

    Provides the derived quantities the paper reads off Fig. 4: the
    transition onset (first partial-erase time at which any cell reads
    erased) and the full-erase time (first time at which every cell
    does).
    """

    segment: int
    n_reads: int
    points: List[CharacterizationPoint] = field(default_factory=list)

    @property
    def t_pe_us(self) -> np.ndarray:
        return np.array([p.t_pe_us for p in self.points])

    @property
    def cells_0(self) -> np.ndarray:
        return np.array([p.cells_0 for p in self.points])

    @property
    def cells_1(self) -> np.ndarray:
        return np.array([p.cells_1 for p in self.points])

    @property
    def n_cells(self) -> int:
        if not self.points:
            raise ValueError("characterisation has no samples")
        return self.points[0].cells_0 + self.points[0].cells_1

    def transition_onset_us(self) -> Optional[float]:
        """First sampled t_PE at which at least one cell reads erased."""
        for p in self.points:
            if p.cells_1 > 0:
                return p.t_pe_us
        return None

    def full_erase_time_us(self) -> Optional[float]:
        """First sampled t_PE at which every cell reads erased.

        This is the per-stress-level "minimum t_PE when all cells read as
        erased" quantity of Section III (35 us fresh, 115 us at 20 K, ...).
        """
        for p in self.points:
            if p.cells_0 == 0:
                return p.t_pe_us
        return None

    def transition_width_us(self) -> Optional[float]:
        """Width of the erase transition (full-erase minus onset)."""
        onset = self.transition_onset_us()
        done = self.full_erase_time_us()
        if onset is None or done is None:
            return None
        return done - onset

    def cells_0_at(self, t_pe_us: float) -> float:
        """Linearly interpolated programmed-cell count at ``t_pe_us``."""
        t = self.t_pe_us
        if t.size == 0:
            raise ValueError("characterisation has no samples")
        return float(np.interp(t_pe_us, t, self.cells_0.astype(float)))


def analyze_segment(
    flash: FlashController, segment: int, n_reads: int = 3
) -> AnalysisResult:
    """AnalyzeSegment of Fig. 3: N-read majority vote over a segment."""
    if n_reads < 1 or n_reads % 2 == 0:
        raise ValueError("n_reads must be a positive odd number")
    bits = flash.read_segment_bits(segment, n_reads=n_reads)
    cells_1 = int(bits.sum())
    return AnalysisResult(
        cells_0=bits.size - cells_1, cells_1=cells_1, bits=bits
    )


def characterize_segment(
    flash: FlashController,
    segment: int,
    t_pe_values_us: Sequence[float],
    n_reads: int = 3,
) -> CharacterizationResult:
    """CharacterizeSegment of Fig. 3 over an explicit t_PE grid.

    For each partial-erase time: erase the segment, program every cell,
    initiate an erase, abort after t_PE, and majority-read the result.
    The paper sweeps t_PE from 0 to T_ERASE with a fixed step; passing an
    explicit grid keeps sweeps over heavily worn segments (transitions
    out to ~1 ms) affordable with logarithmic spacing.
    """
    result = CharacterizationResult(segment=segment, n_reads=n_reads)
    n_bits = flash.geometry.bits_per_segment
    all_programmed = np.zeros(n_bits, dtype=np.uint8)
    for t_pe in t_pe_values_us:
        if t_pe < 0:
            raise ValueError("partial-erase times must be non-negative")
        flash.erase_segment(segment)
        flash.program_segment_bits(segment, all_programmed)
        flash.partial_erase_segment(segment, float(t_pe))
        analysis = analyze_segment(flash, segment, n_reads=n_reads)
        result.points.append(
            CharacterizationPoint(
                t_pe_us=float(t_pe),
                cells_0=analysis.cells_0,
                cells_1=analysis.cells_1,
            )
        )
    return result


def stress_segment(
    flash: FlashController,
    segment: int,
    n_cycles: int,
    pattern: Optional[np.ndarray] = None,
    bulk: bool = True,
) -> None:
    """Precondition a segment with ``n_cycles`` program/erase cycles.

    With the default all-programmed pattern this reproduces the paper's
    segment wear-out preparation ("a segment marked as 10 K is subjected
    to 10,000 P/E operations", every bit programmed then erased).
    """
    if pattern is None:
        pattern = np.zeros(flash.geometry.bits_per_segment, dtype=np.uint8)
    if bulk:
        flash.bulk_pe_cycles(segment, pattern, n_cycles)
        return
    for _ in range(n_cycles):
        flash.erase_segment(segment)
        flash.program_segment_bits(segment, pattern)


def default_t_pe_grid(
    t_max_us: float = 1500.0, n_linear: int = 40, n_log: int = 25
) -> np.ndarray:
    """A t_PE grid dense through the fresh transition, log-spaced after.

    Linear 0..60 us (where fresh and lightly stressed segments flip),
    then logarithmic out to ``t_max_us`` (heavily worn tails).
    """
    linear = np.linspace(0.0, 60.0, n_linear)
    log = np.geomspace(65.0, t_max_us, n_log)
    return np.concatenate([linear, log])
