"""Wear forensics: estimating how many P/E cycles a segment has seen.

The characterisation curves of Section III are monotone in stress, so
they can be inverted: measure a suspect segment's partial-erase curve
and locate it between reference curves taken at known stress levels.
Applications: grading recycled chips (not just flagging them), auditing
whether a returned part matches its logged usage, and estimating the
N_PE a competitor spent on their watermark.

The estimator matches curves by the time at which a given fraction of
cells has erased (robust quantile landmarks), interpolating stress
between the bracketing references on a log scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..device.mcu import Microcontroller
from .partial_erase import (
    CharacterizationResult,
    characterize_segment,
    default_t_pe_grid,
)

__all__ = ["WearEstimate", "WearEstimator"]

#: Erased-cell fractions used as curve landmarks.
_LANDMARKS = (0.25, 0.5, 0.75)


def _landmark_times(curve: CharacterizationResult) -> np.ndarray:
    """t_PE at which 25/50/75 % of cells read erased [us]."""
    t = curve.t_pe_us
    erased = curve.cells_1.astype(float) / curve.n_cells
    # erased is (statistically) monotone in t; np.interp needs that.
    return np.array(
        [float(np.interp(q, erased, t)) for q in _LANDMARKS]
    )


@dataclass(frozen=True)
class WearEstimate:
    """Outcome of a wear-forensics probe."""

    #: Estimated prior program/erase cycles.
    estimated_cycles: float
    #: Bracketing reference stress levels used [cycles].
    bracket: tuple
    #: Landmark times measured on the suspect segment [us].
    landmark_times_us: tuple

    @property
    def estimated_kcycles(self) -> float:
        return self.estimated_cycles / 1000.0


class WearEstimator:
    """Estimates prior stress by inverting reference characterisations.

    Build the reference family once per device family (golden chips at
    known stress levels), then probe suspects.

    Parameters
    ----------
    reference_levels:
        Stress levels of the reference curves [cycles]; 0 must be
        included, and levels should bracket the range of interest.
    """

    def __init__(
        self,
        reference_levels: Sequence[int] = (
            0,
            5_000,
            10_000,
            20_000,
            40_000,
            80_000,
        ),
        t_grid_us: Optional[np.ndarray] = None,
        n_reads: int = 3,
    ):
        if 0 not in reference_levels:
            raise ValueError("reference levels must include 0 (fresh)")
        if sorted(reference_levels) != list(reference_levels):
            raise ValueError("reference levels must be increasing")
        self.reference_levels = tuple(int(x) for x in reference_levels)
        self.t_grid_us = (
            t_grid_us if t_grid_us is not None else default_t_pe_grid()
        )
        self.n_reads = n_reads
        self._landmarks: Dict[int, np.ndarray] = {}

    def build_references(self, chip_factory, seed0: int = 3000) -> None:
        """Characterise one golden chip per reference stress level."""
        from .partial_erase import stress_segment

        for i, level in enumerate(self.reference_levels):
            chip = chip_factory(seed0 + i)
            if level:
                stress_segment(chip.flash, 0, level)
            curve = characterize_segment(
                chip.flash, 0, self.t_grid_us, n_reads=self.n_reads
            )
            self._landmarks[level] = _landmark_times(curve)

    @property
    def ready(self) -> bool:
        return len(self._landmarks) == len(self.reference_levels)

    def estimate(
        self, chip: Microcontroller, segment: int = 0
    ) -> WearEstimate:
        """Probe a suspect segment and estimate its prior cycles.

        The median landmark (t at 50 % erased) is interpolated between
        the two bracketing reference curves on a log-cycle scale; the
        25/75 % landmarks are reported for inspection.
        """
        if not self.ready:
            raise ValueError(
                "references not built yet; call build_references first"
            )
        curve = characterize_segment(
            chip.flash, segment, self.t_grid_us, n_reads=self.n_reads
        )
        landmarks = _landmark_times(curve)
        t50 = landmarks[1]
        levels = self.reference_levels
        ref_t50 = np.array([self._landmarks[lv][1] for lv in levels])
        # Clamp outside the reference range.
        if t50 <= ref_t50[0]:
            return WearEstimate(
                estimated_cycles=float(levels[0]),
                bracket=(levels[0], levels[0]),
                landmark_times_us=tuple(landmarks),
            )
        if t50 >= ref_t50[-1]:
            return WearEstimate(
                estimated_cycles=float(levels[-1]),
                bracket=(levels[-1], levels[-1]),
                landmark_times_us=tuple(landmarks),
            )
        hi = int(np.searchsorted(ref_t50, t50))
        lo = hi - 1
        # Interpolate in log(1 + cycles) against the t50 landmark.
        x0, x1 = ref_t50[lo], ref_t50[hi]
        y0, y1 = (
            np.log1p(float(levels[lo])),
            np.log1p(float(levels[hi])),
        )
        frac = (t50 - x0) / (x1 - x0)
        estimated = float(np.expm1(y0 + frac * (y1 - y0)))
        return WearEstimate(
            estimated_cycles=estimated,
            bracket=(levels[lo], levels[hi]),
            landmark_times_us=tuple(landmarks),
        )
