"""Recycled-flash detection baseline (paper references [6], [7]).

Before Flashmark, the closest related techniques detected *recycled*
flash chips by sensing prior-use wear through partial program/erase
timing characterisation.  They answer only "has this chip been used?" —
not "who made it / did it pass die-sort?" — which is exactly the gap the
paper motivates Flashmark with.  This module implements such a detector
so benchmarks can compare both approaches on the same chip populations.

The detector is trained on characterisation curves from known-fresh
chips and flags a chip as recycled when any probed segment's full-erase
time exceeds the fresh population's maximum by a safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..device.mcu import Microcontroller
from .partial_erase import (
    CharacterizationResult,
    characterize_segment,
    default_t_pe_grid,
)

__all__ = ["RecycledVerdict", "RecycledFlashDetector"]


@dataclass(frozen=True)
class RecycledVerdict:
    """Outcome of probing one chip."""

    recycled: bool
    #: Largest observed full-erase time across probed segments [us].
    max_full_erase_us: float
    #: Decision threshold used [us].
    threshold_us: float
    #: Per-probed-segment full-erase times [us].
    segment_times_us: tuple


@dataclass
class RecycledFlashDetector:
    """Timing-characterisation recycled-chip detector ([7]-style).

    Usage::

        detector = RecycledFlashDetector()
        detector.enroll_fresh(fresh_chip)        # one or more golden chips
        verdict = detector.probe(suspect_chip)
    """

    #: Multiplicative guard band over the fresh maximum.
    margin: float = 1.3
    #: Segments probed on each suspect chip.
    probe_segments: Sequence[int] = (0,)
    #: Majority-vote reads during characterisation.
    n_reads: int = 3
    _fresh_times_us: List[float] = field(default_factory=list)

    def enroll_fresh(self, chip: Microcontroller, segment: int = 0) -> float:
        """Characterise a known-fresh chip and record its full-erase time."""
        curve = self._characterize(chip, segment)
        t_full = curve.full_erase_time_us()
        if t_full is None:
            raise ValueError(
                "fresh enrollment curve never reached full erase; "
                "extend the t_PE grid"
            )
        self._fresh_times_us.append(t_full)
        return t_full

    @property
    def threshold_us(self) -> float:
        """Current decision threshold [us]."""
        if not self._fresh_times_us:
            raise ValueError("no fresh chips enrolled yet")
        return max(self._fresh_times_us) * self.margin

    def probe(self, chip: Microcontroller) -> RecycledVerdict:
        """Characterise the probe segments of a suspect chip and decide."""
        threshold = self.threshold_us
        times = []
        for segment in self.probe_segments:
            curve = self._characterize(chip, segment)
            t_full = curve.full_erase_time_us()
            # A curve that never completes within the grid is maximally
            # suspicious: score it at the grid end.
            times.append(
                t_full if t_full is not None else float(curve.t_pe_us.max())
            )
        worst = max(times)
        return RecycledVerdict(
            recycled=worst > threshold,
            max_full_erase_us=worst,
            threshold_us=threshold,
            segment_times_us=tuple(times),
        )

    def _characterize(
        self, chip: Microcontroller, segment: int
    ) -> CharacterizationResult:
        return characterize_segment(
            chip.flash,
            segment,
            default_t_pe_grid(),
            n_reads=self.n_reads,
        )
