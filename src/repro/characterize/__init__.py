"""Characterisation of flash cell physical properties (paper Section III).

Partial-erase sweeps (Fig. 3/4), sensing-window selection (Fig. 5),
multi-stress-level experiment drivers, and the recycled-flash detection
baseline of the related work ([6], [7]).
"""

from .partial_erase import (
    AnalysisResult,
    CharacterizationPoint,
    CharacterizationResult,
    analyze_segment,
    characterize_segment,
    default_t_pe_grid,
    stress_segment,
)
from .forensics import WearEstimate, WearEstimator
from .partial_program import (
    FfdDetector,
    FfdVerdict,
    PartialProgramCurve,
    characterize_partial_program,
)
from .recycled import RecycledFlashDetector, RecycledVerdict
from .sweep import StressSweepResult, run_stress_sweep
from .window import TpewSelection, distinguishable_bits_at, select_t_pew

__all__ = [
    "AnalysisResult",
    "CharacterizationPoint",
    "CharacterizationResult",
    "analyze_segment",
    "characterize_segment",
    "default_t_pe_grid",
    "stress_segment",
    "StressSweepResult",
    "run_stress_sweep",
    "TpewSelection",
    "select_t_pew",
    "distinguishable_bits_at",
    "WearEstimate",
    "WearEstimator",
    "FfdDetector",
    "FfdVerdict",
    "PartialProgramCurve",
    "characterize_partial_program",
    "RecycledFlashDetector",
    "RecycledVerdict",
]
