"""Partial-erase window selection (paper Fig. 5 and Section IV).

The manufacturer picks one partial-erase time t_PEW per device family —
the time that best separates fresh cells from stressed cells in a single
characterisation round — and publishes it to system integrators.  This
module derives that window from characterisation curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .partial_erase import CharacterizationResult

__all__ = ["TpewSelection", "select_t_pew", "distinguishable_bits_at"]


@dataclass(frozen=True)
class TpewSelection:
    """Chosen partial-erase window for a device family."""

    #: The recommended partial-erase time [us].
    t_pew_us: float
    #: Bits distinguishable at ``t_pew_us`` (fresh reading erased while
    #: stressed still reads programmed), out of ``n_cells``.
    distinguishable_bits: int
    #: Total cells compared.
    n_cells: int
    #: Interval of t_PE values achieving at least ``window_fraction`` of
    #: the best separation [us].
    window_lo_us: float
    window_hi_us: float
    #: Fraction of the optimum used to define the window.
    window_fraction: float

    @property
    def separation_fraction(self) -> float:
        """Distinguishable bits as a fraction of all cells."""
        return self.distinguishable_bits / self.n_cells


def distinguishable_bits_at(
    fresh: CharacterizationResult,
    stressed: CharacterizationResult,
    t_pe_us: float,
) -> float:
    """Expected count of bits separated at ``t_pe_us``.

    A bit is distinguishable when a fresh cell has already flipped to
    erased while a stressed cell still reads programmed; with cell states
    summarised by the two curves, the expected count is
    ``cells_1_fresh(t) * cells_0_stressed(t) / n``-free product form is
    not needed — both segments have the same size, so the count is the
    overlap ``min(cells_1_fresh, cells_0_stressed)`` in the worst case
    and the product under independence; we report the conservative
    product estimate.
    """
    n = fresh.n_cells
    fresh_erased = n - fresh.cells_0_at(t_pe_us)
    stressed_programmed = stressed.cells_0_at(t_pe_us)
    return fresh_erased * stressed_programmed / n


def select_t_pew(
    fresh: CharacterizationResult,
    stressed: CharacterizationResult,
    window_fraction: float = 0.95,
    grid: Optional[np.ndarray] = None,
) -> TpewSelection:
    """Pick the single-round sensing window t_PEW (Fig. 5).

    Scans partial-erase times and maximises the number of cells whose
    state separates a fresh segment from a stressed one.  Also reports
    the surrounding window of times achieving ``window_fraction`` of the
    optimum — the paper notes the usable window widens with replication
    and shifts right with stress.
    """
    if not 0.0 < window_fraction <= 1.0:
        raise ValueError("window_fraction must be in (0, 1]")
    if grid is None:
        lo = min(fresh.t_pe_us.min(), stressed.t_pe_us.min())
        hi = max(fresh.t_pe_us.max(), stressed.t_pe_us.max())
        grid = np.linspace(max(lo, 1.0), hi, 400)
    scores = np.array(
        [distinguishable_bits_at(fresh, stressed, t) for t in grid]
    )
    best_idx = int(np.argmax(scores))
    best = scores[best_idx]
    if best <= 0:
        raise ValueError(
            "no partial-erase time separates the two segments; "
            "was the stressed segment preconditioned?"
        )
    ok = scores >= window_fraction * best
    lo_idx = best_idx
    while lo_idx > 0 and ok[lo_idx - 1]:
        lo_idx -= 1
    hi_idx = best_idx
    while hi_idx < len(grid) - 1 and ok[hi_idx + 1]:
        hi_idx += 1
    return TpewSelection(
        t_pew_us=float(grid[best_idx]),
        distinguishable_bits=int(round(best)),
        n_cells=fresh.n_cells,
        window_lo_us=float(grid[lo_idx]),
        window_hi_us=float(grid[hi_idx]),
        window_fraction=window_fraction,
    )
