"""Sweeping partial-program characterisation: the FFD baseline ([6]).

"FFD: A framework for fake flash detection" (DAC 2017) senses prior use
with the *program* transient instead of the erase transient: erase a
segment, program every cell with a pulse far shorter than T_PROG, and
count how many already read programmed.  Worn cells carry trapped
charge that adds to the injected charge, so they cross the read
threshold after shorter pulses — the program-side mirror image of
Flashmark's partial-erase sensing.

Like the partial-erase detector in :mod:`repro.characterize.recycled`,
this answers only "has this chip been used?", which is exactly the
limitation the Flashmark paper positions itself against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..device.controller import FlashController
from ..device.mcu import Microcontroller
from .partial_erase import CharacterizationPoint

__all__ = [
    "PartialProgramCurve",
    "characterize_partial_program",
    "FfdDetector",
    "FfdVerdict",
]


@dataclass
class PartialProgramCurve:
    """cells_0/cells_1 vs partial-program time for one segment."""

    segment: int
    n_reads: int
    points: List[CharacterizationPoint] = field(default_factory=list)

    @property
    def t_pp_us(self) -> np.ndarray:
        return np.array([p.t_pe_us for p in self.points])

    @property
    def cells_0(self) -> np.ndarray:
        return np.array([p.cells_0 for p in self.points])

    def half_program_time_us(self) -> float:
        """Interpolated pulse length at which half the cells read 0.

        The FFD discriminant: it shrinks as the segment wears.
        """
        if not self.points:
            raise ValueError("curve has no samples")
        half = self.points[0].cells_0 + self.points[0].cells_1
        half = half / 2.0
        t = self.t_pp_us
        c0 = self.cells_0.astype(float)
        return float(np.interp(half, c0, t))


def characterize_partial_program(
    flash: FlashController,
    segment: int,
    t_pp_values_us: Sequence[float],
    n_reads: int = 3,
) -> PartialProgramCurve:
    """Sweep the partial-program time over one segment.

    For each pulse length: erase the segment, apply one partial program
    of every cell, majority-read.
    """
    curve = PartialProgramCurve(segment=segment, n_reads=n_reads)
    n_bits = flash.geometry.bits_per_segment
    all_zero = np.zeros(n_bits, dtype=np.uint8)
    for t_pp in t_pp_values_us:
        if t_pp < 0:
            raise ValueError("partial-program times must be non-negative")
        flash.erase_segment(segment)
        flash.partial_program_segment(segment, all_zero, float(t_pp))
        bits = flash.read_segment_bits(segment, n_reads=n_reads)
        ones = int(bits.sum())
        curve.points.append(
            CharacterizationPoint(
                t_pe_us=float(t_pp),
                cells_0=bits.size - ones,
                cells_1=ones,
            )
        )
    return curve


@dataclass(frozen=True)
class FfdVerdict:
    """Outcome of probing one chip with the FFD method."""

    recycled: bool
    half_program_time_us: float
    threshold_us: float


@dataclass
class FfdDetector:
    """Partial-program recycled-chip detector in the style of [6]."""

    #: Guard band below the fresh population's minimum half-program time.
    margin: float = 0.9
    #: Pulse-length grid swept on every characterisation [us].
    t_grid_us: Sequence[float] = tuple(np.arange(4.0, 40.0, 0.5))
    n_reads: int = 3
    _fresh_times_us: List[float] = field(default_factory=list)

    def enroll_fresh(self, chip: Microcontroller, segment: int = 0) -> float:
        """Record a known-fresh chip's half-program time."""
        curve = characterize_partial_program(
            chip.flash, segment, self.t_grid_us, n_reads=self.n_reads
        )
        t_half = curve.half_program_time_us()
        self._fresh_times_us.append(t_half)
        return t_half

    @property
    def threshold_us(self) -> float:
        if not self._fresh_times_us:
            raise ValueError("no fresh chips enrolled yet")
        return min(self._fresh_times_us) * self.margin

    def probe(self, chip: Microcontroller, segment: int = 0) -> FfdVerdict:
        """Worn cells program faster: flag chips below the threshold."""
        threshold = self.threshold_us
        curve = characterize_partial_program(
            chip.flash, segment, self.t_grid_us, n_reads=self.n_reads
        )
        t_half = curve.half_program_time_us()
        return FfdVerdict(
            recycled=t_half < threshold,
            half_program_time_us=t_half,
            threshold_us=threshold,
        )
