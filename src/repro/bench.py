"""Performance-baseline exporter (``repro bench``).

Runs the same workloads the benchmark suite exercises — simulator
primitive microbenchmarks, the engine-scaling comparison, and a
traced-vs-untraced verification pass — and writes one
``flashmark.bench/v1`` JSON document.  CI uploads the file per commit,
so a throughput regression shows up as a diffable artifact trail
(``BENCH_perf.json``) rather than a feeling.

The document is self-describing (``host`` records the interpreter and
numpy versions the run actually used)::

    {"schema": "flashmark.bench/v1",
     "created_unix_s": ..., "git_sha": "...", "quick": false,
     "host": {"python": sys.version, "numpy": np.__version__,
              "cpus": 8},
     "ops": [{"name": "erase_pulse", "n": 200,
              "p50_ms": ..., "p95_ms": ..., "mean_ms": ...,
              "throughput_per_s": ...}, ...],
     "engine_scaling": {"serial_s": ..., "parallel_s": ...,
                        "workers": 4, "speedup": ...},
     "verify_population": {"n_dies": ..., "per_die_s": ...,
                           "batched_s": ..., "speedup": ...,
                           "verdicts_identical": true},
     "tracing_overhead": {"untraced_s": ..., "traced_s": ...,
                          "ratio": ...}}

Verification ops carry a ``"path"`` field recording which engine
dispatch produced them (``"die"`` or ``"population"``), so a regression
in the batched kernels cannot hide behind the per-die fallback.

Op latencies are host wall-clock (the regression question), not
device-clock — the simulated device time of these ops is fixed by the
physics and cannot regress.

:func:`check_bench` turns a document plus a committed baseline
(``benchmarks/bench_baseline.json``) into a pass/fail regression gate
for CI (``repro bench --gate``).
"""

from __future__ import annotations

import math
import subprocess
import sys
import time
from typing import Callable, List, Optional

import numpy as np

__all__ = ["BENCH_SCHEMA", "run_bench", "check_bench"]

BENCH_SCHEMA = "flashmark.bench/v1"

SEGMENT_BITS = 4096


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


def _time_op(
    name: str, fn: Callable[[], object], *, repeats: int, warmup: int = 2
) -> dict:
    """Latency distribution of ``fn`` over ``repeats`` runs."""
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    mean = sum(samples) / len(samples)
    return {
        "name": name,
        "n": len(samples),
        "p50_ms": 1e3 * _percentile(samples, 50),
        "p95_ms": 1e3 * _percentile(samples, 95),
        "mean_ms": 1e3 * mean,
        "throughput_per_s": (1.0 / mean) if mean > 0 else float("inf"),
    }


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _simulator_ops(quick: bool) -> List[dict]:
    """The primitive-operation microbenchmarks of
    ``benchmarks/test_simulator_performance.py``, as data."""
    from .device import make_mcu

    repeats = 20 if quick else 100
    ops: List[dict] = []

    chip = make_mcu(seed=1, n_segments=2)
    ops.append(
        _time_op(
            "erase_pulse",
            lambda: chip.flash.partial_erase_segment(0, 23.0),
            repeats=repeats,
        )
    )

    chip2 = make_mcu(seed=2, n_segments=2)
    pattern = np.zeros(SEGMENT_BITS, dtype=np.uint8)
    chip2.flash.erase_segment(0)
    ops.append(
        _time_op(
            "program_segment",
            lambda: chip2.flash.program_segment_bits(0, pattern),
            repeats=repeats,
        )
    )

    chip3 = make_mcu(seed=3, n_segments=2)
    ops.append(
        _time_op(
            "majority_read_x3",
            lambda: chip3.flash.read_segment_bits(0, n_reads=3),
            repeats=repeats,
        )
    )

    stripes = (np.arange(SEGMENT_BITS) % 2).astype(np.uint8)
    n_cycles = 4_000 if quick else 40_000
    seeds = iter(range(10, 100_000))

    def bulk_imprint():
        fresh = make_mcu(seed=next(seeds), n_segments=1)
        fresh.flash.bulk_pe_cycles(0, stripes, n_cycles)

    ops.append(
        _time_op(
            f"bulk_imprint_{n_cycles // 1000}k",
            bulk_imprint,
            repeats=max(3, repeats // 10),
            warmup=1,
        )
    )

    mk_seeds = iter(range(200_000, 300_000))
    ops.append(
        _time_op(
            "chip_manufacture",
            lambda: make_mcu(seed=next(mk_seeds), n_segments=1),
            repeats=repeats,
        )
    )
    return ops


def _engine_scaling(quick: bool, workers: Optional[int]) -> dict:
    """Serial vs parallel die-sort production (wall clock + speedup)."""
    from .engine.executor import default_workers
    from .workloads import ProductionLine

    if workers is None:
        workers = max(2, min(4, default_workers()))
    n_dies = 4 if quick else 8
    n_pe = 1_000 if quick else 4_000
    line = ProductionLine(n_pe=n_pe)

    t0 = time.perf_counter()
    serial = line.run(n_dies, seed=9, workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = line.run(n_dies, seed=9, workers=workers)
    parallel_s = time.perf_counter() - t0

    return {
        "n_dies": n_dies,
        "n_pe": n_pe,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "workers": parallel.workers,
        "speedup": (serial_s / parallel_s) if parallel_s > 0 else None,
        "deterministic": bool(
            serial.ok
            and parallel.ok
            and all(
                a.chip.die_id == b.chip.die_id
                and a.die_sort == b.die_sort
                for a, b in zip(serial.batch, parallel.batch)
            )
        ),
    }


def _verify_population_bench(quick: bool) -> tuple:
    """Batched vs per-die verification over one imprinted fleet.

    Returns ``(ops, section)``: two op entries (each tagged with the
    engine ``path`` that produced it) plus the summary section with the
    headline speedup and the verdict-equivalence bit.  Both passes run
    ``workers=1`` so the measured gain is the batched dispatch itself
    (2-D population kernels plus segment-slice payloads), not process
    fan-out.

    The fleet carries realistic die state: the per-die path deep-copies
    the *whole* microcontroller for every job, while the batched path
    stacks only the watermark segment of each die, so benchmarking
    single-segment toy chips would hide most of the per-die dispatch
    cost.  ``n_segments=64`` (full run) is still an 8x understatement
    of the real MSP430F5438's 512 main segments — the measured speedup
    is a conservative bound, not an inflated one.
    """
    from .core import Watermark
    from .core.imprint import imprint_watermark
    from .core.verifier import WatermarkFormat, WatermarkVerifier
    from .device import make_mcu
    from .engine import calibrate_family, verify_population

    n_dies = 60 if quick else 200
    n_segments = 16 if quick else 64
    n_pe = 4_000
    grid = tuple(np.arange(16.0, 36.0, 4.0))
    calibration = calibrate_family(
        lambda seed: make_mcu(seed=seed, n_segments=1),
        n_pe,
        n_replicas=7,
        n_chips=1,
        t_grid_us=grid,
        seed=33,
    ).calibration
    fmt = WatermarkFormat(n_bits=32, n_replicas=7, balanced=True)
    verifier = WatermarkVerifier(calibration, fmt)
    watermark = Watermark.ascii_uppercase(
        4, np.random.default_rng(17)
    ).balanced()
    chips = []
    for seed in range(1_000, 1_000 + n_dies):
        chip = make_mcu(seed=seed, n_segments=n_segments)
        if seed % 5:  # leave some blank so both verdict classes occur
            imprint_watermark(
                chip.flash, 0, watermark, n_pe,
                n_replicas=7, accelerated=True,
            )
        chips.append(chip)

    def run(batch):
        return verify_population(
            chips, verifier, workers=1, batch=batch
        )

    repeats = 3 if quick else 5
    per_die_op = _time_op(
        "verify_population_per_die",
        lambda: run("die"),
        repeats=repeats,
        warmup=1,
    )
    per_die_op["path"] = "die"
    per_die_op["n_dies"] = n_dies
    batched_op = _time_op(
        "verify_population_batched",
        lambda: run("population"),
        repeats=repeats,
        warmup=1,
    )
    batched_op["path"] = "population"
    batched_op["n_dies"] = n_dies

    die_result = run("die")
    pop_result = run("population")
    identical = die_result.verdicts == pop_result.verdicts and all(
        (a is None) == (b is None)
        and (a is None or (a.ber == b.ber and a.reason == b.reason))
        for a, b in zip(die_result.results, pop_result.results)
    )
    per_die_s = per_die_op["mean_ms"] / 1e3
    batched_s = batched_op["mean_ms"] / 1e3
    section = {
        "n_dies": n_dies,
        "n_segments": n_segments,
        "per_die_s": per_die_s,
        "batched_s": batched_s,
        "speedup": (per_die_s / batched_s) if batched_s > 0 else None,
        "verdicts_identical": bool(identical),
    }
    return [per_die_op, batched_op], section


def _tracing_overhead(quick: bool) -> dict:
    """Wall cost of trace-context propagation on the engine path.

    Verifies the same chips with and without per-chip trace contexts
    (``workers=1``, telemetry enabled both times, so the only delta is
    the context plumbing).  The ratio backs the design claim that
    tracing is effectively free on the hot path.
    """
    from .core import WatermarkVerifier
    from .device import make_mcu
    from .engine import calibrate_family, verify_population
    from .telemetry import Telemetry
    from .trace import TraceContext
    from .workloads.traffic import TrafficGenerator

    gen = TrafficGenerator(seed=5)
    pop = gen.spec.population
    calibration = calibrate_family(
        lambda seed: make_mcu(seed=seed, n_segments=1),
        pop.n_pe,
        n_replicas=pop.format.n_replicas,
        n_chips=1,
        seed=77,
    ).calibration
    verifier = WatermarkVerifier(calibration, pop.format)
    items = [
        it for it in gen.draw(6 if quick else 10) if it.chip is not None
    ]
    chips = [it.chip for it in items]
    tps = [TraceContext.new_root().to_traceparent() for _ in chips]

    def run(trace_contexts):
        return verify_population(
            chips,
            verifier,
            workers=1,
            telemetry=Telemetry(),
            trace_contexts=trace_contexts,
        )

    run(None)  # warmup
    best_plain = min(
        _timed(lambda: run(None)) for _ in range(3)
    )
    best_traced = min(
        _timed(lambda: run(tps)) for _ in range(3)
    )
    return {
        "n_chips": len(chips),
        "untraced_s": best_plain,
        "traced_s": best_traced,
        "ratio": (best_traced / best_plain) if best_plain > 0 else None,
    }


def _profiling_overhead(quick: bool) -> dict:
    """Wall cost of continuous profiling on the engine path.

    Verifies the same fleet with the sampling profiler off and on
    (``profile_hz=99``, a typical production rate; ``workers=1`` so
    the sampler thread and the workload share one process).  The ratio
    backs the observability plane's ≤10% overhead budget — the profiled
    runs must also actually capture samples, or the "overhead" would be
    the cost of a profiler that never fired.
    """
    from .core import WatermarkVerifier
    from .device import make_mcu
    from .engine import calibrate_family, verify_population
    from .telemetry import Telemetry
    from .workloads.traffic import TrafficGenerator

    gen = TrafficGenerator(seed=5)
    pop = gen.spec.population
    calibration = calibrate_family(
        lambda seed: make_mcu(seed=seed, n_segments=1),
        pop.n_pe,
        n_replicas=pop.format.n_replicas,
        n_chips=1,
        seed=77,
    ).calibration
    verifier = WatermarkVerifier(calibration, pop.format)
    # One engine call must outlive several 99 Hz sampling intervals
    # (~10ms each), so the fleet is sized for a ~60-120ms call.
    chips = [
        it.chip
        for it in gen.draw(60 if quick else 120)
        if it.chip is not None
    ]
    hz = 99.0
    telemetries: list = []

    def run(profile_hz):
        tel = Telemetry()
        if profile_hz:
            telemetries.append(tel)
        verify_population(
            chips,
            verifier,
            workers=1,
            telemetry=tel,
            profile_hz=profile_hz,
        )

    run(0.0)  # warmup
    best_plain = min(_timed(lambda: run(0.0)) for _ in range(3))
    best_profiled = min(_timed(lambda: run(hz)) for _ in range(3))
    n_samples = sum(
        (tel.snapshot().get("profile") or {}).get("n_samples", 0)
        for tel in telemetries
    )
    return {
        "n_chips": len(chips),
        "hz": hz,
        "unprofiled_s": best_plain,
        "profiled_s": best_profiled,
        "n_samples": int(n_samples),
        "ratio": (
            (best_profiled / best_plain) if best_plain > 0 else None
        ),
    }


def _timed(fn: Callable[[], object]) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_bench(
    *, quick: bool = False, workers: Optional[int] = None
) -> dict:
    """Run every section and return the ``flashmark.bench/v1`` document."""
    import os

    verify_ops, verify_section = _verify_population_bench(quick)
    return {
        "schema": BENCH_SCHEMA,
        "created_unix_s": time.time(),
        "git_sha": _git_sha(),
        "quick": bool(quick),
        "host": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "ops": _simulator_ops(quick) + verify_ops,
        "engine_scaling": _engine_scaling(quick, workers),
        "verify_population": verify_section,
        "tracing_overhead": _tracing_overhead(quick),
        "profiling_overhead": _profiling_overhead(quick),
    }


def check_bench(
    doc: dict,
    baseline: dict,
    *,
    max_regression: float = 0.6,
    min_speedup: float = 1.5,
    min_speedup_frac: float = 0.4,
    max_profiling_ratio: float = 1.1,
) -> List[str]:
    """Regression-gate a bench document against a committed baseline.

    Returns a list of human-readable problems (empty = gate passes):

    * any op present in both documents whose throughput dropped by more
      than ``max_regression`` (fractional; the default tolerates CI
      hardware jitter but not an order-of-magnitude cliff);
    * a batched-verify speedup below ``min_speedup`` absolute or below
      ``min_speedup_frac`` of the baseline's (the speedup is a
      same-host ratio, so this check is hardware-independent);
    * batched and per-die verdicts disagreeing (never acceptable);
    * a profiled verify slower than ``max_profiling_ratio`` times the
      unprofiled run (the observability plane's ≤10% overhead budget),
      checked only when the document carries the section — older
      baselines without it still gate.

    Per-op throughput is only compared when both documents ran the same
    mode (``quick`` flag): quick and full runs size their workloads
    differently (fleet size, die geometry), so cross-mode latencies are
    not the same measurement.  The speedup and verdict checks are
    mode-independent ratios and always apply.
    """
    problems: List[str] = []
    same_mode = doc.get("quick") == baseline.get("quick")
    base_ops = (
        {op.get("name"): op for op in baseline.get("ops", [])}
        if same_mode
        else {}
    )
    for op in doc.get("ops", []):
        base = base_ops.get(op.get("name"))
        if base is None:
            continue
        now = op.get("throughput_per_s")
        then = base.get("throughput_per_s")
        if not now or not then:
            continue
        floor = (1.0 - max_regression) * then
        if now < floor:
            problems.append(
                f"op {op['name']}: throughput {now:.2f}/s is below "
                f"{floor:.2f}/s ({(1 - max_regression) * 100:.0f}% of "
                f"baseline {then:.2f}/s)"
            )
    vp = doc.get("verify_population")
    base_vp = baseline.get("verify_population")
    if vp is not None:
        speedup = vp.get("speedup")
        if speedup is None or speedup < min_speedup:
            problems.append(
                f"verify_population: batched speedup {speedup} is below "
                f"the absolute floor {min_speedup}"
            )
        elif base_vp is not None and base_vp.get("speedup"):
            floor = min_speedup_frac * base_vp["speedup"]
            if speedup < floor:
                problems.append(
                    f"verify_population: batched speedup {speedup:.2f}x "
                    f"is below {floor:.2f}x ({min_speedup_frac * 100:.0f}% "
                    f"of baseline {base_vp['speedup']:.2f}x)"
                )
        if vp.get("verdicts_identical") is False:
            problems.append(
                "verify_population: batched and per-die verdicts differ"
            )
    elif base_vp is not None:
        problems.append(
            "verify_population section missing from this run but "
            "present in the baseline"
        )
    po = doc.get("profiling_overhead")
    if po is not None:
        ratio = po.get("ratio")
        if ratio is None or ratio > max_profiling_ratio:
            problems.append(
                f"profiling_overhead: profiled verify is {ratio}x the "
                f"unprofiled run, above the {max_profiling_ratio}x "
                "budget"
            )
        if not po.get("n_samples"):
            problems.append(
                "profiling_overhead: the profiled run captured zero "
                "samples — the overhead measurement is vacuous"
            )
    return problems
