"""VerificationServer: the online watermark verification authority.

A long-running asyncio service that turns one-shot library verification
into the supply-chain deployment of Section V: integrators connect,
stream chips in (``flashmark.wire/v1`` frames), and get verdicts back,
while the server records history into the
:class:`~repro.service.registry.WatermarkRegistry`.

Throughput architecture::

    connections ──> admission ──> bounded queue ──> micro-batcher
                    (rate limit,    (backpressure:     (drains up to
                     400/404        queue full ->       max_batch, groups
                     checks)        429, never hangs)   compatible requests,
                                                        one engine call)
                                          │
                                          v
                       engine.verify_population(workers=N)

Admission control is synchronous with the reader loop, so a client that
floods past the queue bound gets an immediate 429-style rejection frame
per excess request — the queue never grows beyond ``queue_depth`` and
accepted requests are never dropped.  The micro-batcher amortizes the
engine's fan-out across concurrent clients: requests against the same
family/segment settings that arrive within ``batch_window_s`` of each
other share one :func:`~repro.engine.verify_population` call.

The same port also answers plain HTTP ``GET /healthz`` and
``GET /metrics`` (Prometheus text format), detected by protocol
sniffing on the first line.

Distributed tracing: a verify request may carry a ``trace`` field
(traceparent form, see :mod:`repro.trace.context`).  With tracing
enabled the server records one ``server.request`` span per request plus
stage spans (``server.queue_wait`` / ``server.batch_wait`` /
``server.decode`` / ``server.engine`` / ``server.registry``) against the
request's context, and threads a per-request child context into the
engine so pool-worker ``verify.chip`` spans land in the same trace.
Requests without the field get a server-minted root, so every request
is traceable; stage wall times also feed ``service.stage.*_s``
histograms either way.
"""

from __future__ import annotations

import asyncio
import json
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.signature import SignatureScheme
from ..core.verifier import WatermarkVerifier
from ..engine import verify_population
from ..engine.cache import calibration_to_dict
from ..faults import InjectedFault, fault_point
from ..receipts import PowGate, ReceiptSigner, build_receipt
from ..receipts import params_hash as receipt_params_hash
from ..telemetry import Telemetry, build_manifest
from ..telemetry.prometheus import render_prometheus
from ..trace.context import TraceContext, parse_traceparent
from . import protocol
from .endpoint import Endpoint
from .health import HealthReport, engine_counters
from .registry import RegistryError, WatermarkRegistry

__all__ = ["ServerConfig", "VerificationServer"]

#: Latency histogram buckets [s] — service-scale, not device-scale.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of a :class:`VerificationServer`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: Bound on queued-but-unbatched requests; admission past this is
    #: rejected with a 429-style frame.
    queue_depth: int = 64
    #: Most requests one engine call may absorb.
    max_batch: int = 16
    #: How long the batcher lingers for companions after the first
    #: request of a batch arrives.
    batch_window_s: float = 0.002
    #: Worker processes per engine call (1 = inline, deterministic
    #: either way).
    workers: int = 1
    #: Token-bucket size per client id (None disables rate limiting).
    rate_capacity: Optional[float] = None
    #: Token refill rate per second per client.
    rate_refill_per_s: float = 50.0
    #: Record each verification into the registry history.
    record_history: bool = True
    #: Record distributed-trace spans for verify requests (the wire
    #: ``trace`` field is honored either way; off skips span recording
    #: entirely for zero per-request overhead).
    tracing: bool = True
    #: Feed per-request outcome events to a fleet monitor
    #: (:class:`~repro.monitor.FleetMonitor`): drift detection, SLO
    #: burn alerting, the ``monitor`` wire op and ``monitor.*`` gauges.
    monitoring: bool = True
    #: Engine dispatch strategy for each verify call: ``"auto"`` stacks
    #: same-family chips of a micro-batch into population chunks (the
    #: 2-D kernel fast path, byte-identical verdicts), ``"die"`` forces
    #: the legacy one-job-per-chip path, ``"population"`` batches even
    #: singletons.
    engine_batch: str = "auto"
    #: Hashcash proof-of-work difficulty (leading zero bits) every
    #: verify request's ``pow`` ticket must clear.  0 disables the gate
    #: entirely — no 428s, byte-identical admission to pre-PoW servers.
    pow_difficulty: int = 0
    #: Accepted-ticket digests remembered for exactly-once spending.
    pow_replay_cache: int = 4096
    #: Continuous-profiling sample rate in Hz (0 disables).  Non-zero
    #: starts a :class:`~repro.obs.SamplingProfiler` on the event-loop
    #: thread for the server's lifetime and passes the same rate into
    #: every engine call, so worker stacks land in the merged profile
    #: too; the aggregate rides ``telemetry.snapshot()["profile"]``.
    profile_hz: float = 0.0


class _TokenBucket:
    """Per-client token bucket (monotonic-clock refill)."""

    __slots__ = ("capacity", "refill_per_s", "tokens", "stamp")

    def __init__(self, capacity: float, refill_per_s: float, now: float):
        self.capacity = capacity
        self.refill_per_s = refill_per_s
        self.tokens = capacity
        self.stamp = now

    def allow(self, now: float) -> bool:
        self.tokens = min(
            self.capacity,
            self.tokens + (now - self.stamp) * self.refill_per_s,
        )
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class _Pending:
    """One admitted verify request waiting for its batch.

    Carries the still-encoded chip blob: decoding an ``.npz`` chip costs
    milliseconds, so it happens in the batch executor thread rather
    than on the event loop during admission.
    """

    request_id: Any
    chip_b64: str
    family: str
    segment: int
    n_reads: int
    temperature_c: Optional[float]
    client: str
    enqueued_at: float
    future: "asyncio.Future[dict]" = field(repr=False, default=None)
    #: This request's trace context (``server.request`` identity);
    #: None when tracing is disabled.
    trace: Optional[TraceContext] = None
    #: Unix-clock admission stamp (span start times; monotonic
    #: ``enqueued_at`` stays the latency authority).
    enqueued_unix: float = 0.0
    #: When the batcher dequeued this request (monotonic + unix).
    picked_at: Optional[float] = None
    picked_unix: float = 0.0
    #: The request asked for a signed receipt (``"receipt": true``).
    want_receipt: bool = False

    @property
    def batch_key(self) -> Tuple:
        return (self.family, self.segment, self.n_reads, self.temperature_c)


def _trace_exemplar(pending: _Pending) -> Optional[Dict[str, str]]:
    """Histogram exemplar labels for one request (None untraced)."""
    if pending.trace is None:
        return None
    return {"trace_id": pending.trace.trace_id}


class VerificationServer:
    """Serve watermark verification over asyncio streams.

    Parameters
    ----------
    registry:
        The published-family store; also receives verification history.
    config:
        Queueing/batching/rate-limit tunables.
    telemetry:
        Receives ``service.*`` counters, latency histograms and
        absorbed per-batch verification spans.  A fresh enabled context
        by default.
    sign_keys:
        ``family_id -> key bytes`` for families published with a
        signing-key fingerprint; the key is checked against the
        registry fingerprint before use.  Families whose key the server
        does not hold still verify, with ``signature_checked: false``
        in each result.
    monitor:
        A pre-configured :class:`~repro.monitor.FleetMonitor` (e.g. one
        wired to an alerts log).  With ``config.monitoring`` on and no
        monitor given, the server builds a default one sharing its
        telemetry; ``config.monitoring=False`` disables the event feed
        entirely.
    receipt_signer:
        A :class:`~repro.receipts.ReceiptSigner` holding the issuer's
        private key.  With one attached, verify requests carrying
        ``"receipt": true`` get a signed ``flashmark.receipt/v1``
        document in the result, anchored on the registry's audit head.
        Without one, such requests still get their verdict — just no
        receipt (``service.receipts.unavailable`` counts the degrade).
    """

    def __init__(
        self,
        registry: WatermarkRegistry,
        *,
        config: Optional[ServerConfig] = None,
        telemetry: Optional[Telemetry] = None,
        sign_keys: Optional[Dict[str, bytes]] = None,
        monitor=None,
        receipt_signer: Optional[ReceiptSigner] = None,
    ):
        self.registry = registry
        self.config = config if config is not None else ServerConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.sign_keys = dict(sign_keys or {})
        self.receipt_signer = receipt_signer
        self._pow_gate = (
            PowGate(
                self.config.pow_difficulty,
                replay_cache=self.config.pow_replay_cache,
            )
            if self.config.pow_difficulty > 0
            else None
        )
        self._params_hashes: Dict[str, str] = {}
        self.monitor = None
        if self.config.monitoring:
            if monitor is None:
                # Imported lazily: repro/__init__ imports .service, so a
                # module-scope import of repro.monitor here would cycle.
                from ..monitor import FleetMonitor

                monitor = FleetMonitor(telemetry=self.telemetry)
            self.monitor = monitor
        self._verifiers: Dict[str, Tuple[WatermarkVerifier, bool]] = {}
        self._buckets: Dict[str, _TokenBucket] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._batcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at: Optional[float] = None
        self._max_queue_depth = 0
        self._open_connections = 0
        self._profiler = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the micro-batcher."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.config.queue_depth)
        self._server = await asyncio.start_server(
            self._handle_stream,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        self._batcher = self._loop.create_task(self._batch_loop())
        self._started_at = self._loop.time()
        if self.config.profile_hz > 0:
            # Imported lazily: the profiler is opt-in and repro.obs
            # must stay independent of the service import graph.
            from ..obs.profiler import SamplingProfiler

            self._profiler = SamplingProfiler(
                self.config.profile_hz
            ).start()
        self.telemetry.count("service.starts")

    async def stop(self) -> None:
        """Stop accepting, cancel the batcher, fail queued requests."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._queue is not None:
            while not self._queue.empty():
                pending: _Pending = self._queue.get_nowait()
                if not pending.future.done():
                    pending.future.set_result(
                        protocol.error_response(
                            pending.request_id,
                            protocol.INTERNAL_ERROR,
                            "server shutting down",
                        )
                    )
        if self._profiler is not None:
            profiler, self._profiler = self._profiler, None
            self.telemetry.merge_profile(profiler.stop().to_dict())

    async def __aenter__(self) -> "VerificationServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        return (self.config.host, self.port)

    @property
    def endpoint(self) -> Endpoint:
        """The bound address as an :class:`Endpoint` — the value every
        client entry point accepts directly."""
        return Endpoint(self.config.host, self.port)

    # -- verifier construction -------------------------------------------

    def _verifier_for(self, family: str) -> Tuple[WatermarkVerifier, bool]:
        """The cached verifier for a family + whether signatures are
        actually checked."""
        cached = self._verifiers.get(family)
        if cached is not None:
            return cached
        record = self.registry.get_family(family)
        scheme = None
        checked = False
        if record.sign_key_fingerprint is not None:
            key = self.sign_keys.get(family)
            if key is not None:
                if (
                    WatermarkRegistry.fingerprint(key)
                    != record.sign_key_fingerprint
                ):
                    raise RegistryError(
                        f"signing key for family {family!r} does not "
                        "match the published fingerprint"
                    )
                scheme = SignatureScheme(key)
                checked = True
        verifier = WatermarkVerifier(
            record.calibration, record.format, signature_scheme=scheme
        )
        self._verifiers[family] = (verifier, checked)
        return verifier, checked

    # -- connection handling ----------------------------------------------

    async def _read_frame(self, frames, writer, write_lock) -> bytes:
        """One guarded frame read: the size cap is enforced while
        reading, and an oversized frame answers ``400`` instead of
        killing the connection (the reader drains it, so framing
        survives).  Returns ``b"\\n"`` after a rejected frame so the
        caller's loop keeps serving."""
        try:
            return await frames.read_frame()
        except protocol.FrameTooLarge as exc:
            self.telemetry.count("service.rejected.oversized")
            await self._write_frame(
                writer,
                write_lock,
                protocol.error_response(
                    None, protocol.BAD_REQUEST, str(exc)
                ),
            )
            return b"\n"

    async def _handle_stream(self, reader, writer) -> None:
        self._open_connections += 1
        self.telemetry.count("service.connections")
        write_lock = asyncio.Lock()
        tasks: set = set()
        frames = protocol.FrameReader(reader)
        try:
            first = await self._read_frame(frames, writer, write_lock)
            if first.split(b" ", 1)[0] in (b"GET", b"HEAD"):
                await self._handle_http(first, frames, writer)
                return
            line = first
            while line:
                stripped = line.strip()
                if stripped:
                    dropped = await self._dispatch_line(
                        stripped, writer, write_lock, tasks
                    )
                    if dropped:
                        break
                line = await self._read_frame(frames, writer, write_lock)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._open_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_line(
        self, line: bytes, writer, write_lock, tasks: set
    ) -> bool:
        """Handle one frame; returns True when the connection must be
        severed (injected transport fault)."""
        try:
            # Injection point: payload kinds hand the parser a damaged
            # frame, "drop" severs the connection mid-stream, "error"
            # models a transport read failure.
            action = fault_point("service.read")
        except InjectedFault:
            self.telemetry.count("service.read_aborts")
            return True
        if action is not None:
            if action.kind == "drop":
                self.telemetry.count("service.read_aborts")
                return True
            line = action.apply_bytes(line).strip()
            if not line:
                return False
        try:
            req = protocol.decode_frame(line)
        except protocol.ProtocolError as exc:
            self.telemetry.count("service.rejected.bad_request")
            await self._write_frame(
                writer,
                write_lock,
                protocol.error_response(
                    None, protocol.BAD_REQUEST, str(exc)
                ),
            )
            return False
        self.telemetry.count("service.requests")
        op = req.get("op")
        request_id = req.get("id")
        if op == "verify":
            outcome = self._admit(req, writer)
            if isinstance(outcome, dict):  # rejected at admission
                self._monitor_admission(req, outcome)
                await self._write_frame(writer, write_lock, outcome)
                return False
            task = self._loop.create_task(
                self._finish_verify(outcome, writer, write_lock)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)
            return False
        response = self._handle_query(op, request_id, req)
        await self._write_frame(writer, write_lock, response)
        return False

    def _handle_query(self, op, request_id, req: dict) -> dict:
        """Synchronous (non-verify) operations."""
        try:
            if op == "ping":
                return protocol.ok_response(request_id, {"pong": True})
            if op == "stats":
                return protocol.ok_response(request_id, self.stats())
            if op == "families":
                return protocol.ok_response(
                    request_id,
                    {
                        "families": [
                            {
                                "family_id": fam.family_id,
                                "model": fam.model,
                                "t_pew_us": fam.calibration.t_pew_us,
                                "signed": fam.sign_key_fingerprint
                                is not None,
                            }
                            for fam in self.registry.families()
                        ]
                    },
                )
            if op == "history":
                records = self.registry.history(
                    req.get("die_id"),
                    family_id=req.get("family"),
                    limit=int(req.get("limit", 20)),
                )
                return protocol.ok_response(
                    request_id,
                    {
                        "history": [
                            {
                                "seq": r.seq,
                                "family": r.family_id,
                                "die_id": r.die_id,
                                "verdict": r.verdict,
                                "ber": r.ber,
                                "client": r.client,
                                "created_unix_s": r.created_unix_s,
                            }
                            for r in records
                        ]
                    },
                )
            if op == "monitor":
                if self.monitor is None:
                    return protocol.error_response(
                        request_id,
                        protocol.BAD_REQUEST,
                        "monitoring is disabled on this server",
                    )
                return protocol.ok_response(
                    request_id, self.monitor.snapshot()
                )
            return protocol.error_response(
                request_id, protocol.BAD_REQUEST, f"unknown op {op!r}"
            )
        except (RegistryError, ValueError) as exc:
            return protocol.error_response(
                request_id, protocol.BAD_REQUEST, str(exc)
            )

    # -- admission --------------------------------------------------------

    def _client_id(self, req: dict, writer) -> str:
        client = req.get("client")
        if isinstance(client, str) and client:
            return client
        peer = writer.get_extra_info("peername")
        return f"{peer[0]}:{peer[1]}" if peer else "anonymous"

    def _admit(self, req: dict, writer):
        """Admission control: returns a queued :class:`_Pending`, or an
        error-response dict (rate limited, overloaded, malformed)."""
        request_id = req.get("id")
        client = self._client_id(req, writer)
        now = self._loop.time()
        if self._pow_gate is not None:
            # The PoW gate runs *before* the token bucket so the two
            # rejection codes stay unambiguous: 428 always means "your
            # ticket is bad — mint and retry", 429 always means "your
            # ticket (if any) was fine but you must back off".  An
            # accepted ticket is spent even if the bucket then rejects:
            # admission work was done for it.
            accepted, reason = self._pow_gate.evaluate(client, req)
            if not accepted:
                self.telemetry.count(f"service.pow.rejected.{reason}")
                return protocol.error_response(
                    request_id,
                    protocol.POW_REQUIRED,
                    f"proof-of-work ticket {reason} "
                    f"(difficulty {self._pow_gate.difficulty})",
                )
            self.telemetry.count("service.pow.accepted")
        if self.config.rate_capacity is not None:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = _TokenBucket(
                    self.config.rate_capacity,
                    self.config.rate_refill_per_s,
                    now,
                )
            if not bucket.allow(now):
                self.telemetry.count("service.rejected.rate")
                return protocol.error_response(
                    request_id,
                    protocol.TOO_MANY_REQUESTS,
                    f"rate limit exceeded for client {client!r}",
                )
        family = req.get("family")
        if not isinstance(family, str) or not family:
            self.telemetry.count("service.rejected.bad_request")
            return protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                "verify request is missing 'family'",
            )
        try:
            self._verifier_for(family)
        except RegistryError as exc:
            self.telemetry.count("service.rejected.unknown_family")
            return protocol.error_response(
                request_id, protocol.NOT_FOUND, str(exc)
            )
        blob = req.get("chip_b64")
        if not isinstance(blob, str) or not blob:
            self.telemetry.count("service.rejected.bad_request")
            return protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                "verify request is missing 'chip_b64'",
            )
        trace = None
        if self.config.tracing:
            # A request-carried context becomes the parent of this
            # server's spans; absent or malformed, mint a root so the
            # request is traceable anyway.  Never a 400: the field is
            # advisory metadata.
            parsed = parse_traceparent(req.get("trace"))
            trace = (
                parsed.child() if parsed is not None
                else TraceContext.new_root()
            )
        pending = _Pending(
            request_id=request_id,
            chip_b64=blob,
            family=family,
            segment=int(req.get("segment", 0)),
            n_reads=int(req.get("n_reads", 1)),
            temperature_c=(
                float(req["temperature_c"])
                if req.get("temperature_c") is not None
                else None
            ),
            client=client,
            enqueued_at=now,
            future=self._loop.create_future(),
            trace=trace,
            enqueued_unix=time.time(),
            want_receipt=bool(req.get("receipt")),
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.telemetry.count("service.rejected.overload")
            return protocol.error_response(
                request_id,
                protocol.TOO_MANY_REQUESTS,
                f"server overloaded: queue of "
                f"{self.config.queue_depth} requests is full",
            )
        self._max_queue_depth = max(
            self._max_queue_depth, self._queue.qsize()
        )
        self.telemetry.count("service.admitted")
        return pending

    async def _finish_verify(
        self, pending: _Pending, writer, write_lock
    ) -> None:
        response = await pending.future
        latency = self._loop.time() - pending.enqueued_at
        exemplar = None
        if pending.trace is not None:
            # The slowest observation per bucket keeps a pointer to its
            # concrete trace (and signed receipt, when one was issued),
            # so a p99 bucket in /metrics resolves to a real request.
            exemplar = {"trace_id": pending.trace.trace_id}
            receipt = (response.get("result") or {}).get("receipt")
            if isinstance(receipt, dict) and receipt.get("sig"):
                exemplar["receipt_id"] = str(receipt["sig"])[:16]
        self.telemetry.observe(
            "service.latency_s",
            latency,
            buckets=LATENCY_BUCKETS,
            exemplar=exemplar,
        )
        self._monitor_response(pending, response, latency)
        if pending.trace is not None:
            error = None
            if not response.get("ok", False):
                error = str(
                    (response.get("error") or {}).get("code", "error")
                )
            self.telemetry.record_span(
                "server.request",
                latency,
                t0_unix_s=pending.enqueued_unix,
                ctx=pending.trace,
                attrs={"client": pending.client, "family": pending.family},
                error=error,
            )
        await self._write_frame(writer, write_lock, response)

    # -- fleet-monitor event feed -----------------------------------------

    def _monitor_admission(self, req: dict, response: dict) -> None:
        """Feed one admission rejection to the fleet monitor.

        429s (overload / rate limit) and 428s (PoW metering) are
        *drops* — load the fleet deliberately shed; other admission
        failures (400 / 404) are plain errors.
        """
        if self.monitor is None:
            return
        from ..monitor import (
            OUTCOME_ERROR,
            OUTCOME_REJECTED,
            VerificationEvent,
        )

        code = (response.get("error") or {}).get("code")
        family = req.get("family")
        self.monitor.record(
            VerificationEvent(
                family=family if isinstance(family, str) else "",
                outcome=(
                    OUTCOME_REJECTED
                    if code
                    in (
                        protocol.TOO_MANY_REQUESTS,
                        protocol.POW_REQUIRED,
                    )
                    else OUTCOME_ERROR
                ),
                error_code=code,
                client=(
                    req.get("client")
                    if isinstance(req.get("client"), str)
                    else None
                ),
                unix_s=time.time(),
            )
        )

    def _monitor_response(
        self, pending: _Pending, response: dict, latency: float
    ) -> None:
        """Feed one completed verify response to the fleet monitor."""
        if self.monitor is None:
            return
        from ..monitor import OUTCOME_ERROR, OUTCOME_OK, VerificationEvent

        if response.get("ok", False):
            result = response.get("result") or {}
            event = VerificationEvent(
                family=pending.family,
                outcome=OUTCOME_OK,
                verdict=result.get("verdict"),
                statistic=result.get("statistic"),
                latency_s=latency,
                registry_seq=result.get("history_seq"),
                client=pending.client,
                unix_s=time.time(),
            )
        else:
            event = VerificationEvent(
                family=pending.family,
                outcome=OUTCOME_ERROR,
                error_code=(response.get("error") or {}).get("code"),
                latency_s=latency,
                client=pending.client,
                unix_s=time.time(),
            )
        self.monitor.record(event)

    async def _write_frame(self, writer, write_lock, obj: dict) -> None:
        async with write_lock:
            try:
                # Injection point: "hang" models a slow-draining client
                # socket, "error"/"drop" a client that vanished while a
                # response was in flight.
                action = fault_point("service.write")
            except InjectedFault:
                self.telemetry.count("service.write_aborts")
                writer.close()
                return
            if action is not None:
                if action.kind == "hang":
                    await asyncio.sleep(action.hang_s)
                elif action.kind == "drop":
                    self.telemetry.count("service.write_aborts")
                    writer.close()
                    return
            writer.write(protocol.encode_frame(obj))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- micro-batching ---------------------------------------------------

    async def _batch_loop(self) -> None:
        """Drain the queue into grouped engine calls, forever."""
        while True:
            first: _Pending = await self._queue.get()
            batch = [first]
            deadline = self._loop.time() + self.config.batch_window_s
            while len(batch) < self.config.max_batch:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(
                            self._queue.get(), timeout=remaining
                        )
                    )
                except asyncio.TimeoutError:
                    break
            self.telemetry.count("service.batches")
            self.telemetry.observe(
                "service.batch_size",
                len(batch),
                buckets=(1, 2, 4, 8, 16, 32, 64),
            )
            self._mark_picked(batch)
            groups: Dict[Tuple, List[_Pending]] = {}
            for pending in batch:
                groups.setdefault(pending.batch_key, []).append(pending)
            for group in groups.values():
                try:
                    await self._run_group(group)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    # The batcher must never die: an escaped exception
                    # here would orphan every future request on the
                    # queue.  Fail this group and keep draining.
                    self.telemetry.count("service.errors", len(group))
                    for pending in group:
                        if not pending.future.done():
                            pending.future.set_result(
                                protocol.error_response(
                                    pending.request_id,
                                    protocol.INTERNAL_ERROR,
                                    f"verification failed: {exc}",
                                )
                            )

    def _mark_picked(self, batch: List[_Pending]) -> None:
        """Stamp batcher pickup on each request and close its
        ``queue_wait`` stage (admission -> dequeue)."""
        now = self._loop.time()
        now_unix = time.time()
        for pending in batch:
            pending.picked_at = now
            pending.picked_unix = now_unix
            wait = now - pending.enqueued_at
            self.telemetry.observe(
                "service.stage.queue_wait_s",
                wait,
                buckets=LATENCY_BUCKETS,
                exemplar=_trace_exemplar(pending),
            )
            if pending.trace is not None:
                self.telemetry.record_span(
                    "server.queue_wait",
                    wait,
                    t0_unix_s=pending.enqueued_unix,
                    ctx=pending.trace.child(),
                )

    async def _run_group(self, group: List[_Pending]) -> None:
        """One engine call for a same-settings group of requests."""
        head = group[0]
        verifier, signature_checked = self._verifier_for(head.family)
        batch_tel = Telemetry()
        work_started = self._loop.time()
        for pending in group:
            # batch_wait: dequeue -> this group's work starting (window
            # linger + any same-batch groups that ran first).
            if pending.picked_at is None:
                continue
            wait = work_started - pending.picked_at
            self.telemetry.observe(
                "service.stage.batch_wait_s",
                wait,
                buckets=LATENCY_BUCKETS,
                exemplar=_trace_exemplar(pending),
            )
            if pending.trace is not None:
                self.telemetry.record_span(
                    "server.batch_wait",
                    wait,
                    t0_unix_s=pending.picked_unix,
                    ctx=pending.trace.child(),
                )
        # Engine contexts are minted on the event loop so their ids are
        # known before the executor runs; the worker re-parents its
        # verify.chip span under the matching one.
        engine_ctxs = [
            p.trace.child() if p.trace is not None else None for p in group
        ]

        def _work():
            # Decode chip blobs here, in the executor thread: each .npz
            # decode costs milliseconds, which would otherwise stall
            # admission on the event loop.  A corrupt blob fails only
            # its own request, never the group.
            chips, errors = [], {}
            decode_meta: List[Tuple[float, float]] = []
            for i, pending in enumerate(group):
                t0_unix = time.time()
                t0 = time.perf_counter()
                try:
                    chips.append(protocol.chip_from_b64(pending.chip_b64))
                except protocol.ProtocolError as exc:
                    chips.append(None)
                    errors[i] = str(exc)
                decode_meta.append((t0_unix, time.perf_counter() - t0))
            good, good_tps = [], []
            for i, chip in enumerate(chips):
                if chip is not None:
                    good.append(chip)
                    good_tps.append(
                        engine_ctxs[i].to_traceparent()
                        if engine_ctxs[i] is not None
                        else None
                    )
            engine_t0_unix = time.time()
            engine_t0 = time.perf_counter()
            result = (
                verify_population(
                    good,
                    verifier,
                    segment=head.segment,
                    n_reads=head.n_reads,
                    temperature_c=head.temperature_c,
                    workers=self.config.workers,
                    telemetry=batch_tel,
                    trace_contexts=good_tps,
                    batch=self.config.engine_batch,
                    profile_hz=self.config.profile_hz,
                )
                if good
                else None
            )
            engine_wall = time.perf_counter() - engine_t0
            return chips, errors, result, decode_meta, (
                engine_t0_unix, engine_wall,
            )

        try:
            (
                chips,
                decode_errors,
                result,
                decode_meta,
                engine_meta,
            ) = await self._loop.run_in_executor(None, _work)
        except Exception as exc:  # engine-level failure: fail the group
            self.telemetry.count("service.errors", len(group))
            for pending in group:
                if not pending.future.done():
                    pending.future.set_result(
                        protocol.error_response(
                            pending.request_id,
                            protocol.INTERNAL_ERROR,
                            f"verification failed: {exc}",
                        )
                    )
            return
        self.telemetry.absorb(
            batch_tel.snapshot(), prefix="service.batch"
        )
        engine_t0_unix, engine_wall = engine_meta
        for i, pending in enumerate(group):
            t0_unix, decode_wall = decode_meta[i]
            self.telemetry.observe(
                "service.stage.decode_s",
                decode_wall,
                buckets=LATENCY_BUCKETS,
                exemplar=_trace_exemplar(pending),
            )
            if pending.trace is not None:
                self.telemetry.record_span(
                    "server.decode",
                    decode_wall,
                    t0_unix_s=t0_unix,
                    ctx=pending.trace.child(),
                    error=("ProtocolError" if i in decode_errors else None),
                )
            if i not in decode_errors:
                # The engine wall is shared by the whole group — each
                # request's engine stage reports the call it waited on.
                self.telemetry.observe(
                    "service.stage.engine_s",
                    engine_wall,
                    buckets=LATENCY_BUCKETS,
                    exemplar=_trace_exemplar(pending),
                )
                if engine_ctxs[i] is not None:
                    self.telemetry.record_span(
                        "server.engine",
                        engine_wall,
                        t0_unix_s=engine_t0_unix,
                        ctx=engine_ctxs[i],
                        attrs={
                            "group_size": len(group),
                            "workers": self.config.workers,
                        },
                    )
        failures = (
            {f.index: f for f in result.failures} if result else {}
        )
        verified = 0  # index into result.results (decodable chips only)
        for i, pending in enumerate(group):
            if i in decode_errors:
                self.telemetry.count("service.rejected.bad_request")
                if not pending.future.done():
                    pending.future.set_result(
                        protocol.error_response(
                            pending.request_id,
                            protocol.BAD_REQUEST,
                            decode_errors[i],
                        )
                    )
                continue
            chip = chips[i]
            job_index = verified
            verified += 1
            if pending.future.done():
                continue
            report = result.results[job_index]
            if report is None:
                failure = failures.get(job_index)
                detail = (
                    failure.error.strip().splitlines()[-1]
                    if failure is not None
                    else "job failed"
                )
                self.telemetry.count("service.errors")
                pending.future.set_result(
                    protocol.error_response(
                        pending.request_id,
                        protocol.INTERNAL_ERROR,
                        detail,
                    )
                )
                continue
            payload = None
            if report.payload is not None:
                payload = {
                    "manufacturer": report.payload.manufacturer,
                    "die_id": f"0x{report.payload.die_id:012X}",
                    "speed_grade": report.payload.speed_grade,
                    "status": report.payload.status.name,
                }
            seq = None
            if self.config.record_history:
                reg_t0_unix = time.time()
                reg_t0 = self._loop.time()
                seq = await self._record_history(
                    head.family, chip, report, pending.client
                )
                reg_wall = self._loop.time() - reg_t0
                self.telemetry.observe(
                    "service.stage.registry_s",
                    reg_wall,
                    buckets=LATENCY_BUCKETS,
                    exemplar=_trace_exemplar(pending),
                )
                if pending.trace is not None:
                    self.telemetry.record_span(
                        "server.registry",
                        reg_wall,
                        t0_unix_s=reg_t0_unix,
                        ctx=pending.trace.child(),
                        attrs={"seq": seq},
                        error=None if seq is not None else "RegistryError",
                    )
            self.telemetry.count(
                f"service.verdict.{report.verdict.value}"
            )
            response_body = {
                "family": head.family,
                "die_id": f"0x{chip.die_id:012X}",
                "verdict": report.verdict.value,
                "ber": report.ber,
                # Normalized decision statistic: raw stressed outliers
                # over the calibrated limit.  Unlike ``ber`` (None when
                # no expected watermark is pinned) this is always
                # available, so fleet monitors can watch wear drift.
                "statistic": report.stressed_outliers
                / max(1, report.stressed_outlier_limit),
                "reason": report.reason,
                "payload": payload,
                "signature_checked": signature_checked,
                "history_seq": seq,
            }
            if pending.trace is not None:
                # Echo the request's trace identity so clients that sent
                # no context can still find their trace.
                response_body["trace"] = pending.trace.to_traceparent()
            if pending.want_receipt:
                receipt = self._issue_receipt(response_body)
                if receipt is not None:
                    response_body["receipt"] = receipt
            pending.future.set_result(
                protocol.ok_response(pending.request_id, response_body)
            )

    def _params_hash_for(self, family: str) -> str:
        """The receipt ``params_hash`` of a family (cached — published
        parameters are immutable for a server's lifetime)."""
        cached = self._params_hashes.get(family)
        if cached is None:
            from dataclasses import asdict

            record = self.registry.get_family(family)
            cached = self._params_hashes[family] = receipt_params_hash(
                record.family_id,
                record.model,
                calibration_to_dict(record.calibration),
                asdict(record.format),
            )
        return cached

    def _issue_receipt(self, body: dict) -> Optional[dict]:
        """Sign one verify result into a receipt, or degrade to None.

        Issued strictly *after* the history write, so ``audit_head``
        covers the receipt's own ``verification.record`` entry.  With
        no signer configured the verdict is served receipt-less — a
        missing key must never fail a verification
        (``docs/robustness.md``).
        """
        if self.receipt_signer is None:
            self.telemetry.count("service.receipts.unavailable")
            return None
        try:
            receipt = build_receipt(
                self.receipt_signer,
                family=body["family"],
                die_id=body["die_id"],
                decision=body["verdict"],
                statistic=body["statistic"],
                params_hash=self._params_hash_for(body["family"]),
                history_seq=body["history_seq"],
                audit_head=self.registry.audit_head(),
            )
        except (RegistryError, sqlite3.OperationalError):
            # A registry too degraded to surface its audit head cannot
            # anchor a receipt; the verdict still stands.
            self.telemetry.count("service.receipts.unavailable")
            return None
        self.telemetry.count("service.receipts.issued")
        return receipt

    async def _record_history(
        self, family: str, chip, report, client: str
    ) -> Optional[int]:
        """Record one verification, riding out transient registry
        failures (``sqlite3.OperationalError: database is locked``).

        Retries with backoff, counting ``service.registry_retries``;
        after the attempts are exhausted the verdict is still served,
        just unrecorded (``history_seq: null``) — a degraded registry
        must never fail a verification the engine already completed.
        """
        delay = 0.005
        for attempt in range(3):
            try:
                return self.registry.record_verification(
                    family,
                    chip.die_id,
                    report.verdict.value,
                    ber=report.ber,
                    reason=report.reason,
                    client=client,
                )
            except sqlite3.OperationalError:
                if attempt == 2:
                    break
                self.telemetry.count("service.registry_retries")
                await asyncio.sleep(delay)
                delay *= 4
        self.telemetry.count("service.errors.registry")
        return None

    # -- HTTP sidecar -----------------------------------------------------

    async def _handle_http(self, first_line, frames, writer) -> None:
        try:
            while True:  # drain headers
                header = await frames.read_frame()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = first_line.decode("latin-1").split()
            path = parts[1] if len(parts) > 1 else "/"
            if path == "/healthz":
                body = json.dumps(
                    self.health_report().to_dict()
                ).encode()
                content_type = "application/json"
                status = "200 OK"
            elif path == "/metrics":
                body = self._render_metrics().encode()
                content_type = "text/plain; version=0.0.4"
                status = "200 OK"
            else:
                body = b"not found\n"
                content_type = "text/plain"
                status = "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    def health_report(self) -> HealthReport:
        """The ``/healthz`` payload as the shared
        :class:`~repro.service.health.HealthReport` model.

        The fleet router builds the same model for its own ``/healthz``
        and parses this one when probing shards — one schema, both
        roles.  With a monitor attached, ``status`` reflects the fleet:
        ok / degraded / alerting; liveness is still "we answered at
        all".
        """
        from .. import __version__

        counters = self.telemetry.registry.snapshot()["counters"]
        return HealthReport(
            status=(
                self.monitor.status()
                if self.monitor is not None
                else "ok"
            ),
            version=__version__,
            role="server",
            uptime_s=self._loop.time() - self._started_at,
            queue_depth=self._queue.qsize(),
            registry=self.registry.counts(),
            engine=engine_counters(counters),
            monitor=(
                self.monitor.healthz_block()
                if self.monitor is not None
                else None
            ),
        )

    def _render_metrics(self) -> str:
        """Prometheus text exposition of the telemetry registry.

        Everything the registry holds is exposed — ``service.*``
        counters and stage histograms, but also absorbed engine counters
        (``engine.hung_skips``, ``service.batch.*``), fault-injection
        counters (``faults.injected.*``) and ``telemetry.sink.rotations``
        — normalized through
        :func:`repro.telemetry.prometheus.metric_name`.
        """
        extra_gauges = {
            "service.queue_depth": self._queue.qsize(),
            "service.max_queue_depth": self._max_queue_depth,
            "service.open_connections": self._open_connections,
        }
        if self.monitor is not None:
            extra_gauges.update(self.monitor.gauges())
        return render_prometheus(
            self.telemetry.registry.snapshot(),
            extra_gauges=extra_gauges,
        )

    # -- stats / manifest -------------------------------------------------

    def stats(self) -> dict:
        """Service counters for the ``stats`` op and the run manifest."""
        counters = self.telemetry.registry.snapshot()["counters"]
        service = {
            k: v for k, v in counters.items() if k.startswith("service.")
        }
        return {
            "wire_schema": protocol.WIRE_SCHEMA,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "max_queue_depth": self._max_queue_depth,
            "open_connections": self._open_connections,
            "monitoring": self.monitor is not None,
            "pow_difficulty": self.config.pow_difficulty,
            "receipts": self.receipt_signer is not None,
            "counters": service,
            "registry": self.registry.counts(),
        }

    def build_manifest(self) -> dict:
        """Run manifest of this server session (``kind="service"``)."""
        from dataclasses import asdict

        return build_manifest(
            self.telemetry,
            kind="service",
            parameters=asdict(self.config),
            seeds={},
            extra={"service": self.stats()},
        )
