"""Shared ``/healthz`` schema (``flashmark.health/v1``).

Both the single :class:`~repro.service.server.VerificationServer` and
the fleet router answer HTTP ``GET /healthz`` on their wire port.
Before the fleet, the payload was an ad-hoc dict built inline by the
server; the router's eviction probe and ``repro monitor watch`` would
each have needed their own parser for their own shape.
:class:`HealthReport` is the one model both sides build and both
consumers parse.

Payload::

    {"schema": "flashmark.health/v1",
     "role": "server" | "router",
     "status": "ok" | "degraded" | "alerting",
     "version": "1.6.0",
     "uptime_s": 12.3,
     "queue_depth": 0,
     "registry": {"families": 1, "verifications": 40, "audit_entries": 41},
     "engine": {"service.errors": 0, ...},        # engine-health counters
     "monitor": {...},                            # FleetMonitor block
     "fleet": {"shards": [...], ...}}             # router only

For one release the registry counts are *also* duplicated at the top
level (``families`` / ``verifications`` / ``audit_entries``) so
pre-fleet scrapers keep working; new consumers must read the
``registry`` block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "HEALTH_SCHEMA",
    "ENGINE_COUNTER_PREFIXES",
    "HealthReport",
    "engine_counters",
]

HEALTH_SCHEMA = "flashmark.health/v1"

#: Telemetry counters that make up the ``engine`` health block: the
#: signals that say the verification *pipeline* (not the socket) is
#: sick.  ``engine.hung_skips`` marks a wedged worker pool,
#: ``service.errors*`` failed verifications, ``service.registry_retries``
#: a struggling history store.  The router's eviction policy watches
#: these deltas alongside reachability.
ENGINE_COUNTER_PREFIXES = (
    "service.errors",
    "service.registry_retries",
    "service.batch.engine.",
    "engine.hung_skips",
)

#: Statuses that still count as servable for routing purposes.
_SERVABLE = ("ok", "degraded")


@dataclass
class HealthReport:
    """One parsed (or to-be-served) ``/healthz`` payload."""

    status: str = "ok"
    version: str = ""
    role: str = "server"
    uptime_s: float = 0.0
    queue_depth: int = 0
    #: Registry row counts (families / verifications / audit_entries).
    registry: Dict[str, int] = field(default_factory=dict)
    #: Engine-health counters (see :data:`ENGINE_COUNTER_PREFIXES`).
    engine: Dict[str, float] = field(default_factory=dict)
    #: Fleet-monitor block (:meth:`repro.monitor.FleetMonitor
    #: .healthz_block`), when monitoring is on.
    monitor: Optional[dict] = None
    #: Router-only: shard map summary.
    fleet: Optional[dict] = None

    @property
    def servable(self) -> bool:
        """Whether a router may keep routing to this endpoint.

        ``degraded`` still serves (alerts cleared but windows warm);
        ``alerting`` is a policy decision left to the caller.
        """
        return self.status in _SERVABLE

    def to_dict(self) -> dict:
        payload: dict = {
            "schema": HEALTH_SCHEMA,
            "role": self.role,
            "status": self.status,
            "version": self.version,
            "uptime_s": round(float(self.uptime_s), 3),
            "queue_depth": int(self.queue_depth),
            "registry": dict(self.registry),
            "engine": dict(self.engine),
        }
        # Legacy duplicate of the registry counts (pre-fleet shape);
        # dropped in v2.0.
        payload.update(self.registry)
        if self.monitor is not None:
            payload["monitor"] = self.monitor
        if self.fleet is not None:
            payload["fleet"] = self.fleet
        return payload

    @classmethod
    def from_dict(cls, raw: dict) -> "HealthReport":
        """Parse a payload, tolerating the pre-schema shape.

        Old servers had no ``schema``/``role``/``registry`` keys and
        splatted the registry counts at the top level; those still
        parse (the fleet must be able to probe a mixed-version shard
        set during a rolling upgrade).
        """
        if not isinstance(raw, dict):
            raise ValueError(f"healthz payload is not an object: {raw!r}")
        registry = raw.get("registry")
        if not isinstance(registry, dict):
            registry = {
                key: raw[key]
                for key in ("families", "verifications", "audit_entries")
                if isinstance(raw.get(key), int)
            }
        engine = raw.get("engine")
        return cls(
            status=str(raw.get("status", "ok")),
            version=str(raw.get("version", "")),
            role=str(raw.get("role", "server")),
            uptime_s=float(raw.get("uptime_s", 0.0)),
            queue_depth=int(raw.get("queue_depth", 0)),
            registry={str(k): int(v) for k, v in registry.items()},
            engine=(
                {str(k): float(v) for k, v in engine.items()}
                if isinstance(engine, dict)
                else {}
            ),
            monitor=(
                raw.get("monitor")
                if isinstance(raw.get("monitor"), dict)
                else None
            ),
            fleet=(
                raw.get("fleet")
                if isinstance(raw.get("fleet"), dict)
                else None
            ),
        )


def engine_counters(counters: Dict[str, float]) -> Dict[str, float]:
    """Filter a telemetry counter snapshot down to the engine-health
    block served in ``/healthz``."""
    picked: Dict[str, float] = {}
    for name, value in counters.items():
        for prefix in ENGINE_COUNTER_PREFIXES:
            if name == prefix.rstrip(".") or name.startswith(prefix):
                picked[name] = value
                break
    return picked
