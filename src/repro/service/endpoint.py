"""Endpoint: one address spec for every client-facing surface.

Before the fleet existed, every caller addressed the service as a
``(host, port)`` pair threaded positionally through
:meth:`~repro.service.client.VerificationClient.connect`,
:class:`~repro.service.client.LoadClient` and the CLI's ``--host`` /
``--port`` flags.  With a router tier in front of N shards the *thing
being addressed* varies — a lone server, one shard, or the fleet router
— but the way of addressing it should not.  :class:`Endpoint` is that
single spec: a frozen ``(host, port)`` value object that parses from
the ``"host:port"`` strings humans type, accepts the tuples old code
passes, and renders back to the canonical string form.

Every client entry point accepts any of::

    Endpoint("127.0.0.1", 7793)      # the value object
    "127.0.0.1:7793"                 # the CLI string form
    ("127.0.0.1", 7793)              # the legacy tuple, e.g. server.address

The two-positional-argument ``connect(host, port)`` /
``LoadClient(host, port, family)`` forms still work but raise a
:class:`DeprecationWarning`; they are scheduled for removal in v2.0.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

__all__ = ["Endpoint", "EndpointLike", "coerce_endpoint"]


@dataclass(frozen=True, order=True)
class Endpoint:
    """One service address: where a server, shard, or router listens.

    ``port=0`` is a valid *bind* spec (ephemeral port) but not a valid
    *dial* spec; servers resolve it to the real port before exposing
    their :attr:`~repro.service.server.VerificationServer.endpoint`.
    """

    host: str = "127.0.0.1"
    port: int = 0

    def __post_init__(self):
        if not isinstance(self.host, str) or not self.host:
            raise ValueError("endpoint host must be a non-empty string")
        port = self.port
        if not isinstance(port, int) or isinstance(port, bool):
            raise ValueError(f"endpoint port must be an int, got {port!r}")
        if not 0 <= port <= 65535:
            raise ValueError(f"endpoint port {port} outside [0, 65535]")

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "Endpoint":
        """Parse the ``"host:port"`` string form.

        IPv6 literals use the bracket form (``"[::1]:7793"``).  A bare
        ``":7793"`` keeps the default loopback host.
        """
        if not isinstance(spec, str):
            raise TypeError(f"endpoint spec must be a string, got {spec!r}")
        text = spec.strip()
        if text.startswith("["):  # [v6-literal]:port
            close = text.find("]")
            if close < 0 or not text[close + 1 :].startswith(":"):
                raise ValueError(
                    f"malformed IPv6 endpoint {spec!r}; "
                    "expected '[host]:port'"
                )
            host, port_text = text[1:close], text[close + 2 :]
        else:
            host, sep, port_text = text.rpartition(":")
            if not sep:
                raise ValueError(
                    f"endpoint {spec!r} has no port; expected 'host:port'"
                )
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"endpoint {spec!r} has a non-integer port {port_text!r}"
            ) from None
        return cls(host or "127.0.0.1", port)

    @classmethod
    def from_any(cls, value: "EndpointLike") -> "Endpoint":
        """Coerce any accepted endpoint form to an :class:`Endpoint`.

        Accepts an :class:`Endpoint`, a ``"host:port"`` string, or a
        ``(host, port)`` tuple/list (so ``server.address`` keeps
        working un-deprecated when passed as one value).
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, (tuple, list)) and len(value) == 2:
            return cls(str(value[0]), int(value[1]))
        raise TypeError(
            f"cannot interpret {value!r} as an endpoint; expected "
            "Endpoint, 'host:port', or a (host, port) pair"
        )

    # -- rendering ---------------------------------------------------------

    def __str__(self) -> str:
        if ":" in self.host:  # IPv6 literal round-trips through parse()
            return f"[{self.host}]:{self.port}"
        return f"{self.host}:{self.port}"

    def as_tuple(self) -> Tuple[str, int]:
        return (self.host, self.port)


#: Anything :meth:`Endpoint.from_any` accepts.
EndpointLike = Union[Endpoint, str, Tuple[str, int]]


def coerce_endpoint(
    value: Any,
    port: Optional[int] = None,
    *,
    what: str,
    stacklevel: int = 3,
) -> Endpoint:
    """Resolve the new one-argument endpoint form *or* the deprecated
    two-argument ``(host, port)`` form, warning on the latter.

    Shared by :meth:`VerificationClient.connect` and
    :class:`LoadClient` so both shims deprecate identically.
    """
    if port is not None:
        warnings.warn(
            f"{what} with separate (host, port) arguments is deprecated "
            f"and will be removed in v2.0; pass one Endpoint — e.g. "
            f"{what.split('(')[0]}('{value}:{port}') or "
            "Endpoint(host, port)",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
        return Endpoint(str(value), int(port))
    return Endpoint.from_any(value)
