"""WatermarkRegistry: the manufacturer's published-parameter store.

Section V's deployment story splits the world in two: the manufacturer
*publishes* family parameters (the t_PEW window of Section IV plus the
watermark format), and downstream integrators *verify* chips against
them at incoming inspection.  The registry is that published surface,
backed by SQLite so it survives process restarts and serves concurrent
readers:

* ``families`` — published :class:`FamilyCalibration` + format per
  device family, with the fingerprint (never the key) of the signing
  key when the family imprints keyed signatures;
* ``verifications`` — per-chip verification history, the audit trail an
  integrator consults before trusting a die id it has seen before;
* ``audit_log`` — append-only, hash-chained record of every mutation;
  :meth:`WatermarkRegistry.verify_audit_chain` detects any rewrite.

Schema-versioned as ``flashmark.registry/v1``; opening a database with
a different schema raises :class:`RegistryError` rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.calibration import FamilyCalibration
from ..core.verifier import WatermarkFormat
from ..engine.cache import calibration_from_dict, calibration_to_dict
from ..faults import fault_point

__all__ = [
    "REGISTRY_SCHEMA",
    "RegistryError",
    "FamilyRecord",
    "VerificationRecord",
    "WatermarkRegistry",
]

REGISTRY_SCHEMA = "flashmark.registry/v1"

#: Chain anchor for the first audit entry.
_GENESIS = hashlib.sha256(REGISTRY_SCHEMA.encode("utf-8")).hexdigest()

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS families (
    family_id            TEXT PRIMARY KEY,
    model                TEXT NOT NULL,
    calibration_json     TEXT NOT NULL,
    format_json          TEXT NOT NULL,
    sign_key_fingerprint TEXT,
    verify_key           TEXT,
    verify_algorithm     TEXT,
    published_unix_s     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS verifications (
    seq            INTEGER PRIMARY KEY AUTOINCREMENT,
    family_id      TEXT NOT NULL,
    die_id         TEXT NOT NULL,
    verdict        TEXT NOT NULL,
    ber            REAL,
    reason         TEXT,
    client         TEXT,
    created_unix_s REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_verifications_die
    ON verifications (die_id);
CREATE TABLE IF NOT EXISTS audit_log (
    seq            INTEGER PRIMARY KEY AUTOINCREMENT,
    created_unix_s REAL NOT NULL,
    actor          TEXT NOT NULL,
    action         TEXT NOT NULL,
    detail_json    TEXT NOT NULL,
    prev_hash      TEXT NOT NULL,
    entry_hash     TEXT NOT NULL
);
"""


class RegistryError(RuntimeError):
    """The registry file is missing, foreign, or the request is invalid."""


@dataclass(frozen=True)
class FamilyRecord:
    """One published device family."""

    family_id: str
    model: str
    calibration: FamilyCalibration
    format: WatermarkFormat
    #: SHA-256 hex of the manufacturer signing key (None when unsigned).
    sign_key_fingerprint: Optional[str]
    published_unix_s: float
    #: Publishable receipt *verifying* key (raw bytes; None when the
    #: family issues no receipts).  Unlike the watermark signing key —
    #: of which only a fingerprint is stored — this key is public by
    #: design: anyone may hold it to check receipts offline.
    verify_key: Optional[bytes] = None
    #: Receipt algorithm of ``verify_key`` ("ed25519" / "hmac-sha256").
    verify_algorithm: Optional[str] = None


@dataclass(frozen=True)
class VerificationRecord:
    """One row of per-chip verification history."""

    seq: int
    family_id: str
    die_id: str
    verdict: str
    ber: Optional[float]
    reason: Optional[str]
    client: Optional[str]
    created_unix_s: float


def _format_to_dict(fmt: WatermarkFormat) -> dict:
    return asdict(fmt)


def _format_from_dict(raw: dict) -> WatermarkFormat:
    try:
        return WatermarkFormat(**raw)
    except TypeError as exc:
        raise RegistryError(f"malformed stored format: {exc}") from exc


class WatermarkRegistry:
    """SQLite-backed store of published families and verification history.

    Parameters
    ----------
    path:
        Database file, or ``":memory:"`` for an ephemeral registry.
    create:
        Initialize the schema when the database is new.  With
        ``create=False``, opening a file without the registry schema
        raises :class:`RegistryError` (guards against typo'd paths).

    The connection is shared across threads behind one lock: the
    verification server records history from executor threads while the
    event loop answers reads.
    """

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        *,
        create: bool = True,
    ):
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._init_schema(create)

    # -- lifecycle --------------------------------------------------------

    def _init_schema(self, create: bool) -> None:
        with self._lock:
            row = self._conn.execute(
                "SELECT name FROM sqlite_master "
                "WHERE type='table' AND name='meta'"
            ).fetchone()
            if row is None:
                if not create:
                    raise RegistryError(
                        f"{self.path}: not a flashmark registry "
                        "(no schema table)"
                    )
                self._conn.executescript(_TABLES)
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (REGISTRY_SCHEMA,),
                )
                self._conn.commit()
                self._append_audit(
                    "registry", "registry.init", {"path": self.path}
                )
                return
            stored = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()
            schema = stored["value"] if stored is not None else None
            if schema != REGISTRY_SCHEMA:
                raise RegistryError(
                    f"{self.path}: schema {schema!r} is not "
                    f"{REGISTRY_SCHEMA!r}"
                )
            self._migrate_families()

    def _migrate_families(self) -> None:
        """Add receipt-key columns to pre-receipt v1 files in place.

        Registries written before receipts existed lack the
        ``verify_key`` / ``verify_algorithm`` columns; ``ALTER TABLE
        ADD COLUMN`` fills them with NULL, which is exactly the
        pre-migration meaning (no receipt key published).  Pure schema
        widening — no data mutates, so no audit entry is chained.
        """
        columns = {
            row["name"]
            for row in self._conn.execute(
                "PRAGMA table_info(families)"
            ).fetchall()
        }
        migrated = False
        for column in ("verify_key", "verify_algorithm"):
            if column not in columns:
                self._conn.execute(
                    f"ALTER TABLE families ADD COLUMN {column} TEXT"
                )
                migrated = True
        if migrated:
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "WatermarkRegistry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- keys -------------------------------------------------------------

    @staticmethod
    def fingerprint(key: bytes) -> str:
        """Public fingerprint of a manufacturer signing key."""
        return hashlib.sha256(bytes(key)).hexdigest()

    # -- families ---------------------------------------------------------

    def publish_family(
        self,
        family_id: str,
        calibration: FamilyCalibration,
        format: WatermarkFormat,
        *,
        sign_key: Optional[bytes] = None,
        verify_key: Optional[bytes] = None,
        verify_algorithm: Optional[str] = None,
        actor: str = "manufacturer",
        replace: bool = False,
    ) -> FamilyRecord:
        """Publish (or with ``replace=True`` re-publish) a family.

        ``verify_key`` is the family's receipt *verifying* key —
        public material stored verbatim (hex) so downstream holders of
        a registry snapshot can check receipt signatures offline;
        ``verify_algorithm`` names its scheme.  The watermark signing
        key stays fingerprint-only, as before.
        """
        if not family_id:
            raise RegistryError("family_id must be non-empty")
        if verify_key is not None and verify_algorithm is None:
            raise RegistryError(
                "publishing a verify_key requires verify_algorithm"
            )
        fingerprint = (
            self.fingerprint(sign_key) if sign_key is not None else None
        )
        now = time.time()
        with self._lock:
            existing = self._conn.execute(
                "SELECT family_id FROM families WHERE family_id=?",
                (family_id,),
            ).fetchone()
            if existing is not None and not replace:
                raise RegistryError(
                    f"family {family_id!r} is already published "
                    "(pass replace=True to supersede it)"
                )
            self._conn.execute(
                "INSERT OR REPLACE INTO families "
                "(family_id, model, calibration_json, format_json, "
                " sign_key_fingerprint, verify_key, verify_algorithm, "
                " published_unix_s) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    family_id,
                    calibration.model,
                    json.dumps(calibration_to_dict(calibration)),
                    json.dumps(_format_to_dict(format)),
                    fingerprint,
                    verify_key.hex() if verify_key is not None else None,
                    verify_algorithm,
                    now,
                ),
            )
            self._conn.commit()
            self._append_audit(
                actor,
                "family.republish" if existing else "family.publish",
                {
                    "family_id": family_id,
                    "model": calibration.model,
                    "t_pew_us": calibration.t_pew_us,
                    "signed": fingerprint is not None,
                    "receipts": verify_key is not None,
                },
            )
        return self.get_family(family_id)

    def get_family(self, family_id: str) -> FamilyRecord:
        """The published record for ``family_id`` (raises if unknown)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM families WHERE family_id=?", (family_id,)
            ).fetchone()
        if row is None:
            raise RegistryError(f"unknown family {family_id!r}")
        return FamilyRecord(
            family_id=row["family_id"],
            model=row["model"],
            calibration=calibration_from_dict(
                json.loads(row["calibration_json"])
            ),
            format=_format_from_dict(json.loads(row["format_json"])),
            sign_key_fingerprint=row["sign_key_fingerprint"],
            published_unix_s=row["published_unix_s"],
            verify_key=(
                bytes.fromhex(row["verify_key"])
                if row["verify_key"]
                else None
            ),
            verify_algorithm=row["verify_algorithm"],
        )

    def families(self) -> List[FamilyRecord]:
        """All published families, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT family_id FROM families ORDER BY published_unix_s"
            ).fetchall()
        return [self.get_family(r["family_id"]) for r in rows]

    # -- verification history --------------------------------------------

    def record_verification(
        self,
        family_id: str,
        die_id: Union[int, str],
        verdict: str,
        *,
        ber: Optional[float] = None,
        reason: Optional[str] = None,
        client: Optional[str] = None,
    ) -> int:
        """Append one verification outcome; returns its sequence number.

        May raise ``sqlite3.OperationalError`` (e.g. ``database is
        locked``) under concurrent writers; the verification server
        retries with backoff and degrades to unrecorded history rather
        than failing the verdict.
        """
        # Injection point: a scheduled sqlite3.OperationalError here
        # reproduces a locked registry deterministically.
        fault_point("service.registry")
        die = (
            f"0x{die_id:012X}" if isinstance(die_id, int) else str(die_id)
        )
        now = time.time()
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO verifications "
                "(family_id, die_id, verdict, ber, reason, client, "
                " created_unix_s) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (family_id, die, verdict, ber, reason, client, now),
            )
            self._conn.commit()
            seq = int(cur.lastrowid)
            self._append_audit(
                client or "verifier",
                "verification.record",
                {"seq": seq, "die_id": die, "verdict": verdict},
            )
        return seq

    def history(
        self,
        die_id: Optional[Union[int, str]] = None,
        *,
        family_id: Optional[str] = None,
        limit: int = 100,
    ) -> List[VerificationRecord]:
        """Verification history, newest first, optionally filtered."""
        clauses, params = [], []
        if die_id is not None:
            die = (
                f"0x{die_id:012X}"
                if isinstance(die_id, int)
                else str(die_id)
            )
            clauses.append("die_id=?")
            params.append(die)
        if family_id is not None:
            clauses.append("family_id=?")
            params.append(family_id)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                f"SELECT * FROM verifications {where} "
                "ORDER BY seq DESC LIMIT ?",
                (*params, int(limit)),
            ).fetchall()
        return [
            VerificationRecord(
                seq=r["seq"],
                family_id=r["family_id"],
                die_id=r["die_id"],
                verdict=r["verdict"],
                ber=r["ber"],
                reason=r["reason"],
                client=r["client"],
                created_unix_s=r["created_unix_s"],
            )
            for r in rows
        ]

    # -- audit log --------------------------------------------------------

    @staticmethod
    def _entry_hash(
        prev_hash: str, ts: float, actor: str, action: str, detail: str
    ) -> str:
        blob = json.dumps(
            [prev_hash, ts, actor, action, detail],
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _append_audit(
        self, actor: str, action: str, detail: Dict[str, Any]
    ) -> None:
        """Chain-hash and append one audit entry (caller holds the lock
        or accepts its own commit)."""
        detail_json = json.dumps(detail, sort_keys=True)
        now = time.time()
        with self._lock:
            last = self._conn.execute(
                "SELECT entry_hash FROM audit_log "
                "ORDER BY seq DESC LIMIT 1"
            ).fetchone()
            prev_hash = last["entry_hash"] if last is not None else _GENESIS
            entry_hash = self._entry_hash(
                prev_hash, now, actor, action, detail_json
            )
            self._conn.execute(
                "INSERT INTO audit_log "
                "(created_unix_s, actor, action, detail_json, prev_hash, "
                " entry_hash) VALUES (?, ?, ?, ?, ?, ?)",
                (now, actor, action, detail_json, prev_hash, entry_hash),
            )
            self._conn.commit()

    def audit_head(self) -> str:
        """The chain head: the newest entry's hash (genesis if empty).

        Receipts anchor on this value at issuance; because the chain is
        append-only, every historical head remains discoverable as some
        entry's ``entry_hash`` in any later snapshot.
        """
        with self._lock:
            last = self._conn.execute(
                "SELECT entry_hash FROM audit_log "
                "ORDER BY seq DESC LIMIT 1"
            ).fetchone()
        return last["entry_hash"] if last is not None else _GENESIS

    def audit_entries(self, limit: Optional[int] = None) -> List[dict]:
        """Audit entries, oldest first."""
        sql = "SELECT * FROM audit_log ORDER BY seq"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        with self._lock:
            rows = self._conn.execute(sql).fetchall()
        return [
            {
                "seq": r["seq"],
                "created_unix_s": r["created_unix_s"],
                "actor": r["actor"],
                "action": r["action"],
                "detail": json.loads(r["detail_json"]),
                "prev_hash": r["prev_hash"],
                "entry_hash": r["entry_hash"],
            }
            for r in rows
        ]

    def verify_audit_chain(self) -> int:
        """Recompute the hash chain; returns the entry count.

        Raises :class:`RegistryError` at the first break — a deleted,
        reordered or edited entry changes every downstream hash.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM audit_log ORDER BY seq"
            ).fetchall()
        prev = _GENESIS
        for r in rows:
            if r["prev_hash"] != prev:
                raise RegistryError(
                    f"audit chain broken at seq {r['seq']}: "
                    "prev_hash mismatch"
                )
            expected = self._entry_hash(
                r["prev_hash"],
                r["created_unix_s"],
                r["actor"],
                r["action"],
                r["detail_json"],
            )
            if r["entry_hash"] != expected:
                raise RegistryError(
                    f"audit chain broken at seq {r['seq']}: "
                    "entry_hash mismatch"
                )
            prev = r["entry_hash"]
        return len(rows)

    # -- stats ------------------------------------------------------------

    def counts(self) -> dict:
        """Row counts per table (for /healthz and the CLI)."""
        with self._lock:
            families = self._conn.execute(
                "SELECT COUNT(*) AS n FROM families"
            ).fetchone()["n"]
            verifications = self._conn.execute(
                "SELECT COUNT(*) AS n FROM verifications"
            ).fetchone()["n"]
            audit = self._conn.execute(
                "SELECT COUNT(*) AS n FROM audit_log"
            ).fetchone()["n"]
        return {
            "families": int(families),
            "verifications": int(verifications),
            "audit_entries": int(audit),
        }
