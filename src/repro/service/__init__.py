"""repro.service — the online watermark verification authority.

The serving layer over the batch engine: a manufacturer publishes
family parameters into a persistent :class:`WatermarkRegistry`
(SQLite, ``flashmark.registry/v1``, hash-chained audit log), a
:class:`VerificationServer` answers newline-delimited-JSON verify
requests (bounded queue, 429-style backpressure, per-client token
buckets, micro-batching into :func:`repro.engine.verify_population`),
and a :class:`LoadClient` replays open- or closed-loop traffic to
measure p50/p95/p99 latency and throughput.

Quick start::

    import asyncio
    from repro.service import (
        WatermarkRegistry, VerificationServer, ServerConfig, LoadClient,
    )

    async def main():
        registry = WatermarkRegistry("registry.db")
        # ... registry.publish_family("msp430", calibration, fmt) ...
        async with VerificationServer(registry) as server:
            load = LoadClient(server.endpoint, "msp430")
            report = await load.run_closed_loop(100, concurrency=8)
            print(report.latency_summary())

    asyncio.run(main())

Every client surface addresses a server, a shard, or the fleet router
(:mod:`repro.fleet`) through one :class:`Endpoint` spec — an
``"host:port"`` string parses to the same value object.

``python -m repro serve`` / ``registry`` / ``loadgen`` wrap the same
objects for the shell; see ``docs/service.md`` for the wire protocol
and capacity-planning notes.
"""

from .client import (
    LoadClient,
    LoadReport,
    ServiceError,
    VerificationClient,
    percentile,
)
from .endpoint import Endpoint, EndpointLike, coerce_endpoint
from .health import HEALTH_SCHEMA, HealthReport, engine_counters
from .protocol import (
    MAX_FRAME_BYTES,
    POW_REQUIRED,
    WIRE_SCHEMA,
    FrameReader,
    FrameTooLarge,
    ProtocolError,
    decode_frame,
    encode_frame,
    verify_request,
)
from .registry import (
    REGISTRY_SCHEMA,
    FamilyRecord,
    RegistryError,
    VerificationRecord,
    WatermarkRegistry,
)
from .server import ServerConfig, VerificationServer

__all__ = [
    "REGISTRY_SCHEMA",
    "WIRE_SCHEMA",
    "HEALTH_SCHEMA",
    "MAX_FRAME_BYTES",
    "POW_REQUIRED",
    "Endpoint",
    "EndpointLike",
    "coerce_endpoint",
    "HealthReport",
    "engine_counters",
    "RegistryError",
    "ProtocolError",
    "FrameReader",
    "FrameTooLarge",
    "ServiceError",
    "FamilyRecord",
    "VerificationRecord",
    "WatermarkRegistry",
    "ServerConfig",
    "VerificationServer",
    "VerificationClient",
    "LoadClient",
    "LoadReport",
    "percentile",
    "encode_frame",
    "decode_frame",
    "verify_request",
]
