"""Service clients: a request/response client and a load generator.

:class:`VerificationClient` is the integrator's side of the wire
protocol — connect, stream chips, collect verdicts.

:class:`LoadClient` replays configurable traffic against a running
:class:`~repro.service.server.VerificationServer` and measures the
serving story the ROADMAP asks for: closed-loop (N workers, each
waiting for its verdict before sending the next chip — models N
inspection stations) or open-loop (fixed arrival rate regardless of
completions — models a flash-crowd) traffic, with a latency histogram
(p50/p95/p99), throughput, verdict-vs-ground-truth scoring, and a run
manifest.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry import Telemetry, build_manifest
from ..trace.context import TraceContext
from ..workloads.traffic import TrafficGenerator, TrafficItem
from . import protocol
from .endpoint import Endpoint, EndpointLike, coerce_endpoint

__all__ = [
    "ServiceError",
    "VerificationClient",
    "LoadReport",
    "LoadClient",
    "percentile",
]


class ServiceError(RuntimeError):
    """An error frame from the server.

    Carries the server-assigned ``request_id`` when the error frame
    echoed one, so a load run's failures correlate back to the request
    that drew them.
    """

    def __init__(
        self, code: int, reason: str, request_id: Any = None
    ):
        message = f"[{code}] {reason}"
        if request_id is not None:
            message += f" (request {request_id!r})"
        super().__init__(message)
        self.code = code
        self.reason = reason
        self.request_id = request_id


class VerificationClient:
    """One NDJSON connection to a verification server."""

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._frames = protocol.FrameReader(reader)

    @classmethod
    async def connect(
        cls, endpoint: EndpointLike, port: Optional[int] = None
    ) -> "VerificationClient":
        """Open a connection to ``endpoint`` — an
        :class:`~repro.service.endpoint.Endpoint`, a ``"host:port"``
        string, or a ``(host, port)`` tuple.  The old two-argument
        ``connect(host, port)`` form still works but is deprecated
        (removal in v2.0).
        """
        endpoint = coerce_endpoint(
            endpoint, port, what="VerificationClient.connect(...)"
        )
        reader, writer = await asyncio.open_connection(
            endpoint.host, endpoint.port, limit=protocol.MAX_FRAME_BYTES
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "VerificationClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def request(self, req: dict) -> dict:
        """Send one frame and await its response frame.

        A request past :data:`~repro.service.protocol.MAX_FRAME_BYTES`
        raises :class:`~repro.service.protocol.FrameTooLarge` *before*
        any bytes hit the wire — the server would reject it anyway, so
        failing locally saves shipping megabytes to earn a ``400``.
        """
        frame = protocol.encode_frame(req)
        if len(frame) > protocol.MAX_FRAME_BYTES:
            raise protocol.FrameTooLarge(len(frame))
        self._writer.write(frame)
        await self._writer.drain()
        line = await self._frames.read_frame()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode_frame(line)

    async def call(self, req: dict) -> dict:
        """Like :meth:`request` but unwraps: returns the ``result``
        payload or raises :class:`ServiceError`."""
        resp = await self.request(req)
        if resp.get("ok"):
            return resp.get("result", {})
        err = resp.get("error") or {}
        raise ServiceError(
            int(err.get("code", protocol.INTERNAL_ERROR)),
            str(err.get("reason", "unknown error")),
            request_id=resp.get("id"),
        )

    async def verify_chip(
        self,
        chip,
        family: str,
        *,
        request_id: Any = None,
        client: Optional[str] = None,
        segment: int = 0,
        n_reads: int = 1,
        temperature_c: Optional[float] = None,
        trace: Optional[Any] = None,
        receipt: bool = False,
        pow_difficulty: Optional[int] = None,
    ) -> dict:
        """Verify one chip.  ``trace`` optionally carries distributed-
        trace context (a :class:`~repro.trace.context.TraceContext` or
        traceparent string) for the server to thread its spans under.

        ``receipt=True`` asks for a signed ``flashmark.receipt/v1`` in
        the result; ``pow_difficulty`` mints a hashcash ticket of that
        strength before sending (for servers running a PoW gate)."""
        if trace is not None and not isinstance(trace, str):
            trace = trace.to_traceparent()
        req = protocol.verify_request(
            chip,
            family,
            request_id=request_id,
            client=client,
            segment=segment,
            n_reads=n_reads,
            temperature_c=temperature_c,
            trace=trace,
            receipt=receipt,
        )
        if pow_difficulty is not None:
            if client is None:
                # Tickets bind to the server-side client id; without an
                # explicit one the server keys on the peer address,
                # which this side cannot predict.
                raise ValueError(
                    "pow_difficulty needs an explicit client id"
                )
            from ..receipts import mint_ticket

            req["pow"] = mint_ticket(client, req, pow_difficulty)
        return await self.call(req)

    async def ping(self) -> dict:
        return await self.call({"op": "ping"})

    async def stats(self) -> dict:
        return await self.call({"op": "stats"})

    async def families(self) -> List[dict]:
        return (await self.call({"op": "families"}))["families"]

    async def history(
        self, die_id: Optional[str] = None, *, limit: int = 20
    ) -> List[dict]:
        req: dict = {"op": "history", "limit": limit}
        if die_id is not None:
            req["die_id"] = die_id
        return (await self.call(req))["history"]

    async def monitor(self) -> dict:
        """The server's fleet-monitor snapshot (``monitor`` op)."""
        return await self.call({"op": "monitor"})


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list.

    Robust at the edges: an empty list yields NaN, ``q`` is clamped to
    [0, 100] (so ``q=0`` is the minimum, ``q=100`` the maximum), and
    the rank is clamped into the list — tiny samples (n=1, 2) return a
    real element instead of raising.
    """
    if not sorted_values:
        return float("nan")
    q = min(100.0, max(0.0, q))
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class LoadReport:
    """Everything one load run measured."""

    mode: str
    family: str
    requests: int
    #: Client-observed latency per completed request [s].
    latencies_s: List[float] = field(default_factory=list)
    #: Verdict string histogram over OK responses.
    verdicts: Dict[str, int] = field(default_factory=dict)
    #: Per-request verdict, keyed by traffic-item index — lets a caller
    #: compare the served verdicts one-to-one against a direct
    #: :func:`repro.engine.verify_population` run on the same chips.
    verdict_by_index: Dict[int, str] = field(default_factory=dict)
    #: Error-code histogram over rejected/errored requests.
    errors: Dict[int, int] = field(default_factory=dict)
    #: (index, got, expected) for verdicts outside the ground truth.
    mismatches: List[Tuple[int, str, Tuple[str, ...]]] = field(
        default_factory=list
    )
    #: Distributed-trace id per traffic-item index (tracing runs only);
    #: keys into the trace documents :mod:`repro.trace` assembles.
    trace_by_index: Dict[int, str] = field(default_factory=dict)
    #: Signed ``flashmark.receipt/v1`` documents, in completion order
    #: (receipt-requesting runs against a signing server only) —
    #: ``repro.receipts.write_receipts`` persists them for offline
    #: verification.
    receipts: List[dict] = field(default_factory=list)
    wall_s: float = 0.0
    concurrency: int = 1
    rate_hz: Optional[float] = None

    @property
    def completed(self) -> int:
        return len(self.latencies_s)

    @property
    def rejected(self) -> int:
        return sum(self.errors.values())

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def latency_summary(self) -> dict:
        """p50/p95/p99 (and friends) in milliseconds.

        Well-defined for any sample size: with no completions only the
        counts are reported; with one or two the percentiles degrade to
        the nearest real sample (never interpolated, never an error).
        ``n`` duplicates ``count`` under the name the monitor's window
        summaries use, so the two read alike in manifests.
        """
        lat = sorted(self.latencies_s)
        if not lat:
            return {"count": 0, "n": 0}
        return {
            "count": len(lat),
            "n": len(lat),
            "mean_ms": 1e3 * sum(lat) / len(lat),
            "min_ms": 1e3 * lat[0],
            "p50_ms": 1e3 * percentile(lat, 50),
            "p95_ms": 1e3 * percentile(lat, 95),
            "p99_ms": 1e3 * percentile(lat, 99),
            "max_ms": 1e3 * lat[-1],
        }

    def to_dict(self) -> dict:
        """The manifest/JSON-artifact form of this report."""
        return {
            "mode": self.mode,
            "family": self.family,
            "requests": self.requests,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors_by_code": {
                str(k): v for k, v in sorted(self.errors.items())
            },
            "verdicts": dict(sorted(self.verdicts.items())),
            "mismatches": len(self.mismatches),
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency_summary(),
            "concurrency": self.concurrency,
            "rate_hz": self.rate_hz,
            "traced": len(self.trace_by_index),
            "receipts": len(self.receipts),
        }


class LoadClient:
    """Replay traffic against a verification server and measure it.

    Parameters
    ----------
    endpoint:
        Where to send traffic — a lone server, a shard, or the fleet
        router, all addressed identically: an
        :class:`~repro.service.endpoint.Endpoint`, a ``"host:port"``
        string, or a ``(host, port)`` tuple.  The old
        ``LoadClient(host, port, family)`` form still works but is
        deprecated (removal in v2.0).
    family:
        Published family id every request verifies against.
    traffic:
        A seeded :class:`~repro.workloads.TrafficGenerator`; the same
        generator state replayed against the engine directly yields the
        reference verdicts.
    client_id:
        Wire-protocol client id (the rate limiter keys on it).
    telemetry:
        Receives ``loadgen.*`` metrics and backs the run manifest.
    trace:
        When True, every request mints a fresh
        :class:`~repro.trace.context.TraceContext` root, sends it on
        the wire and records a ``client.request`` span against it —
        the client end of the distributed traces :mod:`repro.trace`
        assembles.  Trace ids land in ``LoadReport.trace_by_index``.
    receipts:
        When True, every request asks for a signed receipt; the
        documents a signing server returns land in
        ``LoadReport.receipts`` for offline verification.
    pow_difficulty:
        When set, a hashcash ticket of that strength is minted per
        request (matching a server's ``pow_difficulty`` gate).  Minting
        runs off the event loop — it is deliberate CPU spend.
    """

    def __init__(
        self,
        endpoint: EndpointLike,
        family: Any = None,
        *legacy_family,
        traffic: Optional[TrafficGenerator] = None,
        client_id: str = "loadgen",
        telemetry: Optional[Telemetry] = None,
        trace: bool = False,
        receipts: bool = False,
        pow_difficulty: Optional[int] = None,
    ):
        if legacy_family:
            # Deprecated LoadClient(host, port, family, ...) form:
            # the second positional was the port, the third the family.
            if len(legacy_family) != 1:
                raise TypeError(
                    "LoadClient takes (endpoint, family) — got "
                    f"{2 + len(legacy_family)} positional arguments"
                )
            endpoint = coerce_endpoint(
                endpoint, int(family), what="LoadClient(...)"
            )
            family = legacy_family[0]
        else:
            endpoint = Endpoint.from_any(endpoint)
        if not isinstance(family, str) or not family:
            raise TypeError(
                "LoadClient needs a non-empty family id, got "
                f"{family!r}"
            )
        self.endpoint = endpoint
        self.host = endpoint.host
        self.port = endpoint.port
        self.family = family
        self.traffic = (
            traffic if traffic is not None else TrafficGenerator()
        )
        self.client_id = client_id
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry()
        )
        self.trace = trace
        self.receipts = receipts
        self.pow_difficulty = pow_difficulty

    # -- traffic ----------------------------------------------------------

    def draw_items(self, n: int) -> List[TrafficItem]:
        """Manufacture the next ``n`` chips of the traffic stream."""
        with self.telemetry.span("loadgen.manufacture", n=n):
            return self.traffic.draw(n)

    # -- closed loop ------------------------------------------------------

    async def run_closed_loop(
        self,
        n_requests: int,
        *,
        concurrency: int = 4,
        items: Optional[List[TrafficItem]] = None,
        segment: int = 0,
        n_reads: int = 1,
    ) -> LoadReport:
        """``concurrency`` workers, each sending its next chip only
        after the previous verdict arrived (incoming-inspection model).
        """
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if items is None:
            items = self.draw_items(n_requests)
        report = LoadReport(
            mode="closed",
            family=self.family,
            requests=len(items),
            concurrency=concurrency,
        )
        queue: "asyncio.Queue[TrafficItem]" = asyncio.Queue()
        for item in items:
            queue.put_nowait(item)
        loop = asyncio.get_running_loop()

        async def worker(worker_id: int) -> None:
            client = await VerificationClient.connect(self.endpoint)
            try:
                while True:
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    await self._one_request(
                        client, item, report, loop, segment, n_reads
                    )
            finally:
                await client.close()

        t0 = loop.time()
        with self.telemetry.span(
            "loadgen.closed_loop",
            requests=len(items),
            concurrency=concurrency,
        ):
            await asyncio.gather(
                *(worker(i) for i in range(concurrency))
            )
        report.wall_s = loop.time() - t0
        self._observe(report)
        return report

    # -- open loop --------------------------------------------------------

    async def run_open_loop(
        self,
        n_requests: int,
        rate_hz: float,
        *,
        items: Optional[List[TrafficItem]] = None,
        segment: int = 0,
        n_reads: int = 1,
        connections: int = 4,
    ) -> LoadReport:
        """Fixed arrival rate, independent of completions.

        Sends are paced at ``rate_hz`` across a small connection pool;
        responses are collected as they come.  When the offered rate
        exceeds capacity the server's queue bound turns the excess into
        429 rejections — counted, never hung on.
        """
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if items is None:
            items = self.draw_items(n_requests)
        report = LoadReport(
            mode="open",
            family=self.family,
            requests=len(items),
            concurrency=connections,
            rate_hz=rate_hz,
        )
        loop = asyncio.get_running_loop()
        clients = [
            await VerificationClient.connect(self.endpoint)
            for _ in range(connections)
        ]
        locks = [asyncio.Lock() for _ in range(connections)]

        async def fire(i: int, item: TrafficItem) -> None:
            # One in-flight request per pooled connection at a time
            # (the wire protocol is request/response per stream).
            async with locks[i % connections]:
                await self._one_request(
                    clients[i % connections],
                    item,
                    report,
                    loop,
                    segment,
                    n_reads,
                )

        interval = 1.0 / rate_hz
        t0 = loop.time()
        tasks = []
        with self.telemetry.span(
            "loadgen.open_loop", requests=len(items), rate_hz=rate_hz
        ):
            for i, item in enumerate(items):
                target = t0 + i * interval
                delay = target - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(loop.create_task(fire(i, item)))
            await asyncio.gather(*tasks)
        report.wall_s = loop.time() - t0
        for client in clients:
            await client.close()
        self._observe(report)
        return report

    # -- internals --------------------------------------------------------

    async def _one_request(
        self,
        client: VerificationClient,
        item: TrafficItem,
        report: LoadReport,
        loop,
        segment: int,
        n_reads: int,
    ) -> None:
        root = TraceContext.new_root() if self.trace else None
        req = protocol.verify_request(
            item.chip,
            self.family,
            request_id=item.index,
            client=self.client_id,
            segment=segment,
            n_reads=n_reads,
            trace=root.to_traceparent() if root is not None else None,
            receipt=self.receipts,
        )
        if self.pow_difficulty is not None:
            from ..receipts import mint_ticket

            # Minting is the whole point of the gate — CPU spend per
            # request — so it runs in the executor, off the loop.
            req["pow"] = await loop.run_in_executor(
                None,
                lambda: mint_ticket(
                    self.client_id, req, self.pow_difficulty
                ),
            )
        t0_unix = time.time()
        t0 = loop.time()
        try:
            result = await client.call(req)
        except ServiceError as exc:
            report.errors[exc.code] = report.errors.get(exc.code, 0) + 1
            self.telemetry.count(f"loadgen.error.{exc.code}")
            if root is not None:
                report.trace_by_index[item.index] = root.trace_id
                self.telemetry.record_span(
                    "client.request",
                    loop.time() - t0,
                    t0_unix_s=t0_unix,
                    ctx=root,
                    attrs={"index": item.index},
                    error=str(exc.code),
                )
            return
        latency = loop.time() - t0
        if root is not None:
            report.trace_by_index[item.index] = root.trace_id
            self.telemetry.record_span(
                "client.request",
                latency,
                t0_unix_s=t0_unix,
                ctx=root,
                attrs={"index": item.index},
            )
        report.latencies_s.append(latency)
        if "receipt" in result:
            report.receipts.append(result["receipt"])
            self.telemetry.count("loadgen.receipts")
        verdict = result["verdict"]
        report.verdicts[verdict] = report.verdicts.get(verdict, 0) + 1
        report.verdict_by_index[item.index] = verdict
        if verdict not in item.expected_verdicts:
            report.mismatches.append(
                (item.index, verdict, item.expected_verdicts)
            )
        self.telemetry.count("loadgen.responses")
        self.telemetry.observe("loadgen.latency_s", latency)

    def _observe(self, report: LoadReport) -> None:
        summary = report.latency_summary()
        if summary.get("count"):
            self.telemetry.gauge(
                "loadgen.p50_ms", summary["p50_ms"]
            )
            self.telemetry.gauge(
                "loadgen.p95_ms", summary["p95_ms"]
            )
            self.telemetry.gauge(
                "loadgen.p99_ms", summary["p99_ms"]
            )
        self.telemetry.gauge(
            "loadgen.throughput_rps", report.throughput_rps
        )

    def build_manifest(self, report: LoadReport) -> dict:
        """Run manifest (``kind="loadgen"``) with the load block."""
        return build_manifest(
            self.telemetry,
            kind="loadgen",
            parameters={
                "endpoint": str(self.endpoint),
                "host": self.host,
                "port": self.port,
                "family": self.family,
                "mode": report.mode,
                "requests": report.requests,
                "concurrency": report.concurrency,
                "rate_hz": report.rate_hz,
                "traffic_seed": self.traffic.seed,
                "traffic_mix": dict(self.traffic.spec.mix),
                "trace": self.trace,
                "receipts": self.receipts,
                "pow_difficulty": self.pow_difficulty,
            },
            seeds={"traffic_seed": self.traffic.seed},
            extra={"load": report.to_dict()},
        )
