"""The service wire protocol: newline-delimited JSON frames.

One request or response per line (``flashmark.wire/v1``).  Chips travel
inside verify requests as base64 of their compressed ``.npz`` state
(:func:`repro.device.chip_to_bytes`), so the server verifies exactly
the die the client holds — the same challenge–response shape SIGNED
uses for its interrogation flow.

Requests::

    {"v": "flashmark.wire/v1", "id": 7, "op": "verify",
     "client": "lab-3", "family": "msp430-default",
     "chip_b64": "...", "segment": 0, "n_reads": 1}

    {"op": "ping"} · {"op": "stats"} · {"op": "families"}
    {"op": "history", "die_id": "0x00000000002A"}

Responses::

    {"id": 7, "ok": true, "result": {"verdict": "authentic", ...}}
    {"id": 7, "ok": false, "error": {"code": 429, "reason": "..."}}

Error codes follow HTTP idiom: 400 malformed request, 404 unknown
family, 429 backpressure (queue full) or rate limit, 500 internal.
"""

from __future__ import annotations

import base64
import json
from typing import Any, Optional

from ..device.mcu import Microcontroller
from ..device.persistence import chip_from_bytes, chip_to_bytes

__all__ = [
    "WIRE_SCHEMA",
    "MAX_FRAME_BYTES",
    "OK",
    "BAD_REQUEST",
    "NOT_FOUND",
    "TOO_MANY_REQUESTS",
    "INTERNAL_ERROR",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "verify_request",
    "chip_from_b64",
    "chip_from_request",
    "ok_response",
    "error_response",
]

WIRE_SCHEMA = "flashmark.wire/v1"

#: Upper bound on one frame; a compressed small-die chip blob is ~100 KB
#: so this leaves generous headroom without letting a rogue client
#: buffer unbounded garbage.
MAX_FRAME_BYTES = 16 * 1024 * 1024

OK = 200
BAD_REQUEST = 400
NOT_FOUND = 404
TOO_MANY_REQUESTS = 429
INTERNAL_ERROR = 500


class ProtocolError(ValueError):
    """A frame violates the wire schema."""


def encode_frame(obj: dict) -> bytes:
    """Serialize one message to its wire line."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame must be a JSON object")
    return obj


# -- request construction --------------------------------------------------


def verify_request(
    chip: Microcontroller,
    family: str,
    *,
    request_id: Any = None,
    client: Optional[str] = None,
    segment: int = 0,
    n_reads: int = 1,
    temperature_c: Optional[float] = None,
) -> dict:
    """Build a verify request carrying the chip's full state."""
    req = {
        "v": WIRE_SCHEMA,
        "op": "verify",
        "family": family,
        "chip_b64": base64.b64encode(chip_to_bytes(chip)).decode("ascii"),
        "segment": int(segment),
        "n_reads": int(n_reads),
    }
    if request_id is not None:
        req["id"] = request_id
    if client is not None:
        req["client"] = client
    if temperature_c is not None:
        req["temperature_c"] = float(temperature_c)
    return req


def chip_from_b64(blob: str) -> Microcontroller:
    """Decode a base64 chip blob (CPU-bound — call off the event loop)."""
    try:
        raw = base64.b64decode(blob.encode("ascii"), validate=True)
        return chip_from_bytes(raw)
    except Exception as exc:  # corrupt base64 or npz
        raise ProtocolError(f"undecodable chip blob: {exc}") from exc


def chip_from_request(req: dict) -> Microcontroller:
    """Decode the chip blob of a verify request."""
    blob = req.get("chip_b64")
    if not isinstance(blob, str) or not blob:
        raise ProtocolError("verify request is missing 'chip_b64'")
    return chip_from_b64(blob)


# -- responses -------------------------------------------------------------


def ok_response(request_id: Any, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: int, reason: str) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": int(code), "reason": reason},
    }
