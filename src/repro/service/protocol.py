"""The service wire protocol: newline-delimited JSON frames.

One request or response per line (``flashmark.wire/v1``).  Chips travel
inside verify requests as base64 of their compressed ``.npz`` state
(:func:`repro.device.chip_to_bytes`), so the server verifies exactly
the die the client holds — the same challenge–response shape SIGNED
uses for its interrogation flow.

Requests::

    {"v": "flashmark.wire/v1", "id": 7, "op": "verify",
     "client": "lab-3", "family": "msp430-default",
     "chip_b64": "...", "segment": 0, "n_reads": 1,
     "trace": "00-<32 hex>-<16 hex>-01"}

``trace`` is optional distributed-trace context in W3C-traceparent
form (see :mod:`repro.trace.context`); absent or malformed, the server
serves the request identically and starts its own root trace.

    {"op": "ping"} · {"op": "stats"} · {"op": "families"}
    {"op": "history", "die_id": "0x00000000002A"} · {"op": "monitor"}
    {"op": "topology"}                      # fleet router only

Verify requests also carry ``die_id`` (the chip's die id in hex) next
to the blob: the fleet router consistent-hashes ``(family, die)`` to
pick a shard, and the field lets it route without decoding megabytes
of chip state.  Servers ignore it — the authoritative die id is always
read from the decoded chip.

Verify requests may also carry two optional receipt-era fields, both
ignored by pre-receipt servers and absent from pre-receipt clients
(the wire schema is unchanged — ``flashmark.wire/v1``):

* ``"receipt": true`` asks the server to attach a signed
  ``flashmark.receipt/v1`` document to the result (only present when
  the server holds an issuer key — see :mod:`repro.receipts`);
* ``"pow": {"nonce": 12345, "difficulty": 12}`` is a hashcash ticket;
  servers running with a PoW difficulty > 0 reject verify requests
  whose ticket is missing, weak, or replayed with ``428``.

Responses::

    {"id": 7, "ok": true, "result": {"verdict": "authentic", ...}}
    {"id": 7, "ok": false, "error": {"code": 429, "reason": "..."}}

Error codes follow HTTP idiom: 400 malformed request, 404 unknown
family, 428 proof-of-work required (missing/weak/replayed ticket —
mint and retry, distinct from 429's "back off"), 429 backpressure
(queue full) or rate limit, 500 internal, 503 no healthy shard (fleet
router only).
"""

from __future__ import annotations

import base64
import json
from typing import Any, Optional

from ..device.mcu import Microcontroller
from ..device.persistence import chip_from_bytes, chip_to_bytes

__all__ = [
    "WIRE_SCHEMA",
    "MAX_FRAME_BYTES",
    "OK",
    "BAD_REQUEST",
    "NOT_FOUND",
    "POW_REQUIRED",
    "TOO_MANY_REQUESTS",
    "INTERNAL_ERROR",
    "SERVICE_UNAVAILABLE",
    "ProtocolError",
    "FrameTooLarge",
    "FrameReader",
    "encode_frame",
    "decode_frame",
    "verify_request",
    "chip_from_b64",
    "chip_from_request",
    "ok_response",
    "error_response",
]

WIRE_SCHEMA = "flashmark.wire/v1"

#: Upper bound on one frame; a compressed small-die chip blob is ~100 KB
#: so this leaves generous headroom without letting a rogue client
#: buffer unbounded garbage.
MAX_FRAME_BYTES = 16 * 1024 * 1024

OK = 200
BAD_REQUEST = 400
NOT_FOUND = 404
#: The verify request needs a (fresh, sufficiently hard) hashcash
#: ticket in its ``pow`` field.  Deliberately distinct from 429: a 428
#: client should mint and retry now, a 429 client should back off.
POW_REQUIRED = 428
TOO_MANY_REQUESTS = 429
INTERNAL_ERROR = 500
#: The fleet router exhausted its healthy shards for a request (all
#: evicted, or the bounded re-route retries failed).
SERVICE_UNAVAILABLE = 503


class ProtocolError(ValueError):
    """A frame violates the wire schema."""


class FrameTooLarge(ProtocolError):
    """A frame exceeded :data:`MAX_FRAME_BYTES` on the read path."""

    def __init__(self, n_bytes: int, max_bytes: int = MAX_FRAME_BYTES):
        super().__init__(
            f"frame of >= {n_bytes} bytes exceeds the "
            f"{max_bytes}-byte cap"
        )
        self.n_bytes = n_bytes
        self.max_bytes = max_bytes


class FrameReader:
    """Read newline-delimited frames with the size cap enforced *while*
    reading, not after.

    ``asyncio.StreamReader.readline`` only fails once its internal
    buffer limit overflows, surfacing as a bare ``ValueError`` /
    ``LimitOverrunError`` and leaving the stream unusable — an
    oversized frame used to kill the connection instead of producing a
    ``400``.  This wrapper buffers at most ``max_bytes`` plus one read
    chunk, raises a typed :class:`FrameTooLarge` as soon as the cap is
    crossed, and *drains* the offending frame through its terminating
    newline so the connection stays framed and can answer the next
    request normally.
    """

    _CHUNK = 65536

    def __init__(self, reader, *, max_bytes: int = MAX_FRAME_BYTES):
        self._reader = reader
        self._buf = bytearray()
        self.max_bytes = max_bytes

    async def read_frame(self) -> bytes:
        """The next frame (including its newline), or ``b""`` at EOF.

        Raises :class:`FrameTooLarge` for a frame past the cap; the
        oversized bytes are consumed, so the caller may keep reading.
        """
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line = bytes(self._buf[: nl + 1])
                del self._buf[: nl + 1]
                if len(line) > self.max_bytes:
                    raise FrameTooLarge(len(line), self.max_bytes)
                return line
            if len(self._buf) > self.max_bytes:
                dropped = await self._drain_oversized()
                raise FrameTooLarge(dropped, self.max_bytes)
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                # EOF: hand back any unterminated tail once.
                tail = bytes(self._buf)
                self._buf.clear()
                return tail
            self._buf += chunk

    async def _drain_oversized(self) -> int:
        """Discard up to and including the frame's newline; keep any
        bytes after it (they begin the next frame)."""
        dropped = len(self._buf)
        self._buf.clear()
        while True:
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                return dropped
            nl = chunk.find(b"\n")
            if nl >= 0:
                self._buf += chunk[nl + 1 :]
                return dropped + nl + 1
            dropped += len(chunk)


def encode_frame(obj: dict) -> bytes:
    """Serialize one message to its wire line."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one wire line; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame must be a JSON object")
    return obj


# -- request construction --------------------------------------------------


def verify_request(
    chip: Microcontroller,
    family: str,
    *,
    request_id: Any = None,
    client: Optional[str] = None,
    segment: int = 0,
    n_reads: int = 1,
    temperature_c: Optional[float] = None,
    trace: Optional[str] = None,
    receipt: bool = False,
    pow_ticket: Optional[dict] = None,
) -> dict:
    """Build a verify request carrying the chip's full state.

    ``trace`` is an optional traceparent string; servers thread their
    stage spans under it so the request assembles into one distributed
    trace (:mod:`repro.trace`).

    The chip's die id rides along in ``die_id`` so the fleet router can
    consistent-hash ``(family, die)`` without decoding the blob.

    ``receipt=True`` asks for a signed receipt in the result;
    ``pow_ticket`` attaches a hashcash ticket (``{"nonce": n, ...}``,
    see :func:`repro.receipts.mint_ticket`).  Both fields are simply
    absent when unused, keeping the request byte-identical to the
    pre-receipt wire form.
    """
    req = {
        "v": WIRE_SCHEMA,
        "op": "verify",
        "family": family,
        "die_id": f"0x{chip.die_id:012X}",
        "chip_b64": base64.b64encode(chip_to_bytes(chip)).decode("ascii"),
        "segment": int(segment),
        "n_reads": int(n_reads),
    }
    if request_id is not None:
        req["id"] = request_id
    if client is not None:
        req["client"] = client
    if temperature_c is not None:
        req["temperature_c"] = float(temperature_c)
    if trace is not None:
        req["trace"] = str(trace)
    if receipt:
        req["receipt"] = True
    if pow_ticket is not None:
        req["pow"] = dict(pow_ticket)
    return req


def chip_from_b64(blob: str) -> Microcontroller:
    """Decode a base64 chip blob (CPU-bound — call off the event loop)."""
    try:
        raw = base64.b64decode(blob.encode("ascii"), validate=True)
        return chip_from_bytes(raw)
    except Exception as exc:  # corrupt base64 or npz
        raise ProtocolError(f"undecodable chip blob: {exc}") from exc


def chip_from_request(req: dict) -> Microcontroller:
    """Decode the chip blob of a verify request."""
    blob = req.get("chip_b64")
    if not isinstance(blob, str) or not blob:
        raise ProtocolError("verify request is missing 'chip_b64'")
    return chip_from_b64(blob)


# -- responses -------------------------------------------------------------


def ok_response(request_id: Any, result: dict) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: int, reason: str) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": int(code), "reason": reason},
    }
