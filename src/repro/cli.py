"""Command-line interface: Flashmark operations on chip files.

The CLI plays both supply-chain roles on persisted chip state
(:mod:`repro.device.persistence`):

.. code-block:: console

    # manufacturer
    $ python -m repro make chip.npz --seed 7
    $ python -m repro imprint chip.npz --manufacturer TCMK --status ACCEPT
    $ python -m repro produce --count 16 --workers 4 --out-dir dies/
    $ python -m repro calibrate --workers 4 --cache calibrations.json
    # counterfeiter
    $ python -m repro wipe chip.npz
    # integrator
    $ python -m repro verify chip.npz
    $ python -m repro characterize chip.npz --segment 0
    $ python -m repro info chip.npz
    # verification service
    $ python -m repro registry publish --registry reg.db --family msp430
    $ python -m repro serve --registry reg.db --port 7433
    $ python -m repro verify chip.npz --registry reg.db --family msp430
    $ python -m repro loadgen --port 7433 --family msp430 --requests 200
    $ python -m repro chaos --seed 7 --requests 12 --manifest chaos.json
    # observability
    $ python -m repro imprint chip.npz --manifest run.json
    $ python -m repro telemetry summarize run.json
    $ python -m repro telemetry diff before.json after.json
    $ python -m repro telemetry --selftest
    # distributed tracing + perf baseline
    $ python -m repro serve --registry reg.db --trace-log server.jsonl
    $ python -m repro loadgen --port 7433 --family msp430 \
          --trace --trace-log client.jsonl
    $ python -m repro trace critical-path server.jsonl client.jsonl
    $ python -m repro trace export server.jsonl client.jsonl \
          --flame flame.txt --chrome chrome.json
    $ python -m repro bench --quick --out BENCH_perf.json
    # fleet-health monitoring
    $ python -m repro serve --registry reg.db --alerts-log alerts.jsonl
    $ python -m repro loadgen --port 7433 --family msp430 --wear-drift
    $ python -m repro monitor watch --port 7433
    $ python -m repro monitor report alerts.jsonl -o report.html
    $ python -m repro chaos --seed 7 --requests 24 --monitor
    # fleet: router + N shard processes
    $ python -m repro fleet up --registry reg.db --shards 4 --port 7500
    $ python -m repro loadgen --endpoint 127.0.0.1:7500 \
          --family msp430 --requests 400
    $ python -m repro monitor watch --endpoint 127.0.0.1:7500
    $ python -m repro fleet topology --endpoint 127.0.0.1:7500
    $ python -m repro fleet soak --shards 4 --requests 40 --chaos
    # signed receipts + PoW-metered open access
    $ python -m repro registry publish --registry reg.db \
          --family msp430 --receipt-key <hex secret>
    $ python -m repro serve --registry reg.db \
          --receipt-key <hex secret> --pow-difficulty 12
    $ python -m repro loadgen --port 7433 --family msp430 \
          --receipts-out receipts.jsonl --pow-difficulty 12
    $ python -m repro receipt verify receipts.jsonl --registry reg.db
    $ python -m repro registry audit --registry reg.db --check
    # fleet observability: tsdb scraping, profiles, exemplars
    $ python -m repro fleet up --registry reg.db --shards 4 \
          --port 7500 --obs obsdata/
    $ python -m repro obs record --store obsdata/ \
          --target router=127.0.0.1:7500 --rounds 30
    $ python -m repro obs query --store obsdata/ \
          --metric flashmark_service_requests --rate --by target
    $ python -m repro serve --registry reg.db --profile-out prof.json
    $ python -m repro obs top --profile prof.json --flame flame.txt
    $ python -m repro obs report --store obsdata/ \
          --profile prof.json --out dossier.html
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from .analysis import format_table
from .characterize import (
    WearEstimator,
    characterize_segment,
    default_t_pe_grid,
)
from .core import (
    ChipStatus,
    FlashmarkSession,
    WatermarkFormat,
    WatermarkPayload,
    WatermarkVerifier,
)
from .core.screening import detect_watermark_presence
from .device import McuFactory, age_chip, make_mcu
from .device.persistence import load_chip, save_chip
from .engine import CacheError, CalibrationCache, calibrate_family
from .telemetry import (
    Telemetry,
    build_manifest,
    diff_manifests,
    load_manifest,
    save_manifest,
    summarize_manifest,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Flashmark NOR-flash watermarking (DAC 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("make", help="manufacture a chip file")
    p.add_argument("chip", help="output chip file (.npz)")
    p.add_argument("--model", default="MSP430F5438")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--segments", type=int, default=1, help="flash segments to simulate"
    )

    p = sub.add_parser("imprint", help="imprint a watermark payload")
    p.add_argument("chip")
    p.add_argument("--manufacturer", default="TCMK")
    p.add_argument(
        "--status", choices=[s.name for s in ChipStatus], default="ACCEPT"
    )
    p.add_argument("--speed-grade", type=int, default=3)
    p.add_argument("--n-pe", type=int, default=40_000)
    p.add_argument("--replicas", type=int, default=7)
    p.add_argument("--segment", type=int, default=0)
    p.add_argument(
        "--sign-key",
        help="hex-encoded manufacturer key; adds a keyed signature tag",
    )
    p.add_argument(
        "--manifest",
        help="write the run manifest (JSON) to this path",
    )

    p = sub.add_parser(
        "produce", help="run a die-sort production batch (batch engine)"
    )
    p.add_argument("--count", type=int, default=8, help="dies to produce")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (same seed -> identical batch at any count)",
    )
    p.add_argument("--manufacturer", default="TCMK")
    p.add_argument("--n-pe", type=int, default=40_000)
    p.add_argument("--replicas", type=int, default=7)
    p.add_argument(
        "--outlier-fraction",
        type=float,
        default=0.25,
        help="fraction of dies drawn from a degraded process corner",
    )
    p.add_argument(
        "--out-dir", help="save each produced chip here as die_<i>.npz"
    )
    p.add_argument(
        "--manifest", help="write the batch run manifest (JSON) to this path"
    )

    p = sub.add_parser(
        "calibrate",
        help="derive the family t_PEW window (batch engine + cache)",
    )
    p.add_argument("--model", default="MSP430F5438")
    p.add_argument("--n-pe", type=int, default=40_000)
    p.add_argument("--replicas", type=int, default=7)
    p.add_argument(
        "--chips", type=int, default=1, help="sample chips to average"
    )
    p.add_argument("--seed", type=int, default=1000)
    p.add_argument(
        "--workers", type=int, default=1, help="worker processes for the sweep"
    )
    p.add_argument(
        "--cache",
        help="calibration cache JSON; hit skips the sweep entirely",
    )
    p.add_argument(
        "--manifest", help="write the run manifest (JSON) to this path"
    )

    p = sub.add_parser("wipe", help="erase a segment digitally")
    p.add_argument("chip")
    p.add_argument("--segment", type=int, default=0)

    p = sub.add_parser("verify", help="extract + verify the watermark")
    p.add_argument("chip")
    p.add_argument("--segment", type=int, default=0)
    p.add_argument("--n-pe", type=int, default=40_000)
    p.add_argument("--replicas", type=int, default=7)
    p.add_argument(
        "--sign-key",
        help="hex-encoded manufacturer key the watermark was signed with",
    )
    p.add_argument(
        "--temperature",
        type=float,
        default=None,
        help="die temperature [C]; compensates the extraction window",
    )
    p.add_argument(
        "--registry",
        help="verify against a family published in this registry "
        "instead of re-deriving the calibration",
    )
    p.add_argument(
        "--family",
        help="family id in the registry (requires --registry)",
    )
    p.add_argument(
        "--manifest",
        help="write the run manifest (JSON) to this path",
    )

    p = sub.add_parser("characterize", help="partial-erase sweep (Fig. 3)")
    p.add_argument("chip")
    p.add_argument("--segment", type=int, default=0)
    p.add_argument("--reads", type=int, default=3)

    p = sub.add_parser("info", help="print chip metadata")
    p.add_argument("chip")

    p = sub.add_parser("age", help="advance unpowered shelf time")
    p.add_argument("chip")
    p.add_argument("--years", type=float, default=1.0)

    p = sub.add_parser(
        "detect", help="blind-probe for a watermark (no format needed)"
    )
    p.add_argument("chip")
    p.add_argument("--segment", type=int, default=0)

    p = sub.add_parser(
        "estimate-wear", help="estimate prior P/E cycles of a segment"
    )
    p.add_argument("chip")
    p.add_argument("--segment", type=int, default=0)

    p = sub.add_parser("temp", help="set the die junction temperature")
    p.add_argument("chip")
    p.add_argument("celsius", type=float)

    p = sub.add_parser(
        "telemetry", help="summarize / diff run manifests, or --selftest"
    )
    p.add_argument(
        "action",
        nargs="?",
        choices=["summarize", "diff"],
        help="summarize one manifest or diff two",
    )
    p.add_argument(
        "manifests", nargs="*", help="manifest JSON file(s)"
    )
    p.add_argument(
        "--selftest",
        action="store_true",
        help="run a small imprint/verify session and check that its "
        "manifest reconciles with the device clock",
    )

    p = sub.add_parser(
        "registry",
        help="manage the published-family registry (SQLite)",
    )
    p.add_argument(
        "action", choices=["init", "publish", "history", "audit"]
    )
    p.add_argument(
        "--registry", required=True, help="registry database file"
    )
    p.add_argument(
        "--family", help="family id (publish/history filter)"
    )
    p.add_argument("--model", default="MSP430F5438")
    p.add_argument("--n-pe", type=int, default=40_000)
    p.add_argument("--replicas", type=int, default=7)
    p.add_argument(
        "--chips", type=int, default=1, help="sample chips to average"
    )
    p.add_argument("--seed", type=int, default=1000)
    p.add_argument(
        "--workers", type=int, default=1, help="calibration sweep workers"
    )
    p.add_argument(
        "--cache", help="calibration cache JSON used by publish"
    )
    p.add_argument(
        "--sign-key",
        help="hex manufacturer key; publishes its fingerprint",
    )
    p.add_argument(
        "--replace",
        action="store_true",
        help="allow re-publishing an existing family",
    )
    p.add_argument(
        "--receipt-key",
        help="hex receipt-issuer secret; publish derives and stores "
        "the public verifying key next to the family",
    )
    p.add_argument(
        "--receipt-algorithm",
        choices=["ed25519", "hmac-sha256"],
        default=None,
        help="receipt signature algorithm (default: ed25519 when "
        "available, else hmac-sha256)",
    )
    p.add_argument("--die", help="die id filter for history")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument(
        "--check",
        action="store_true",
        help="audit: exit 3 (instead of 1) when the hash chain is "
        "broken — CI-gate idiom shared with 'repro trace --check'",
    )

    p = sub.add_parser(
        "serve",
        help="run the watermark verification service (NDJSON + HTTP)",
    )
    p.add_argument(
        "--registry", required=True, help="registry database file"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 binds an ephemeral port and prints it)",
    )
    p.add_argument("--queue-depth", type=int, default=64)
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument(
        "--workers", type=int, default=1, help="engine workers per batch"
    )
    p.add_argument(
        "--rate-capacity",
        type=float,
        default=None,
        help="per-client token-bucket size (default: no rate limit)",
    )
    p.add_argument(
        "--rate-refill",
        type=float,
        default=50.0,
        help="per-client token refill per second",
    )
    p.add_argument(
        "--sign-key",
        help="hex signing key, checked against family fingerprints",
    )
    p.add_argument(
        "--manifest",
        help="write the service run manifest here on shutdown",
    )
    p.add_argument(
        "--trace-log",
        help="append span records (JSONL) here — the server half of "
        "'repro trace' input",
    )
    p.add_argument(
        "--trace-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="rotate the trace log once it would exceed N bytes",
    )
    p.add_argument(
        "--trace-log-max-files",
        type=int,
        default=1,
        metavar="N",
        help="rotated trace-log generations to keep "
        "(.1 newest .. .N oldest; with --trace-log-max-bytes)",
    )
    p.add_argument(
        "--profile-hz",
        type=float,
        default=0.0,
        metavar="HZ",
        help="continuous-profiling sample rate for the server loop "
        "and engine workers (0: off)",
    )
    p.add_argument(
        "--profile-out",
        metavar="JSON",
        help="write the merged flashmark.profile/v1 dump here on "
        "shutdown (implies --profile-hz 99 unless set)",
    )
    p.add_argument(
        "--no-tracing",
        action="store_true",
        help="skip per-request trace spans entirely",
    )
    p.add_argument(
        "--alerts-log",
        help="append flashmark.alerts/v1 transitions (JSONL) here — "
        "the input of 'repro monitor report'",
    )
    p.add_argument(
        "--slo",
        help="flashmark.slo/v1 JSON spec (default: built-in SLOs)",
    )
    p.add_argument(
        "--no-monitor",
        action="store_true",
        help="disable the fleet-health monitor entirely",
    )
    p.add_argument(
        "--port-file",
        help="write the bound port (one line) here once listening — "
        "how supervisors such as 'repro fleet up' discover an "
        "ephemeral-port shard",
    )
    p.add_argument(
        "--receipt-key",
        help="hex receipt-issuer secret; verify responses asking for "
        "a receipt get one signed with this key",
    )
    p.add_argument(
        "--receipt-algorithm",
        choices=["ed25519", "hmac-sha256"],
        default=None,
        help="receipt signature algorithm (default: ed25519 when "
        "available, else hmac-sha256)",
    )
    p.add_argument(
        "--pow-difficulty",
        type=int,
        default=0,
        metavar="BITS",
        help="require hashcash tickets with this many leading zero "
        "bits on verify requests (0: disabled)",
    )

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection soak of the full stack",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--requests", type=int, default=12, help="traffic items to replay"
    )
    p.add_argument(
        "--plan", help="replay a saved fault-plan JSON instead of "
        "the seeded coverage plan"
    )
    p.add_argument(
        "--save-plan", help="write the effective fault plan (JSON) here"
    )
    p.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help="sample N random faults over all points instead of the "
        "coverage plan",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=60.0,
        help="whole-soak wall-clock bound [s] (invariant)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-request bound [s] (invariant)",
    )
    p.add_argument(
        "--manifest", help="write the chaos run manifest (JSON) here"
    )
    p.add_argument(
        "--monitor",
        action="store_true",
        help="attach a fleet monitor to the soak server and check that "
        "faults trip an alert which clears after recovery",
    )
    p.add_argument(
        "--alerts-log",
        help="append the soak's alert transitions (JSONL) here "
        "(implies --monitor)",
    )

    p = sub.add_parser(
        "loadgen",
        help="replay verification traffic and measure latency",
    )
    p.add_argument(
        "--endpoint",
        help="target 'host:port' (a server or a fleet router); "
        "preferred over --host/--port",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--family", required=True)
    p.add_argument("--requests", type=int, default=100)
    p.add_argument(
        "--mode", choices=["closed", "open"], default="closed"
    )
    p.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop workers"
    )
    p.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="open-loop arrival rate [req/s]",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--manifest", help="write the loadgen manifest (JSON) here"
    )
    p.add_argument(
        "--trace",
        action="store_true",
        help="send a fresh trace context with every request and record "
        "client.request spans",
    )
    p.add_argument(
        "--trace-log",
        help="append client span records (JSONL) here — the client "
        "half of 'repro trace' input",
    )
    p.add_argument(
        "--wear-drift",
        action="store_true",
        help="age the watermarked chips linearly along the stream "
        "(fleet wear drift the server-side monitor should detect)",
    )
    p.add_argument(
        "--wear-start",
        type=int,
        default=16,
        metavar="N",
        help="stream index the wear ramp starts at",
    )
    p.add_argument(
        "--wear-ramp",
        type=int,
        default=48,
        metavar="N",
        help="items over which wear ramps to its ceiling",
    )
    p.add_argument(
        "--wear-max-pe",
        type=int,
        default=600,
        metavar="N",
        help="extra accelerated P/E cycles at full ramp",
    )
    p.add_argument(
        "--genuine-only",
        action="store_true",
        help="all-genuine traffic mix (clean drift-detection baseline)",
    )
    p.add_argument(
        "--receipts",
        action="store_true",
        help="ask for a signed receipt with every verify",
    )
    p.add_argument(
        "--receipts-out",
        metavar="JSONL",
        help="write collected receipts here (implies --receipts) — "
        "the input of 'repro receipt verify'",
    )
    p.add_argument(
        "--pow-difficulty",
        type=int,
        default=None,
        metavar="BITS",
        help="mint a hashcash ticket of this difficulty per request "
        "(matching a server's --pow-difficulty gate)",
    )

    p = sub.add_parser(
        "monitor",
        help="fleet-health: live dashboard / post-run report",
    )
    p.add_argument(
        "action",
        choices=["watch", "report"],
        help="watch: poll a live server's monitor snapshot; "
        "report: digest an alerts JSONL into markdown/HTML",
    )
    p.add_argument(
        "alerts",
        nargs="?",
        help="flashmark.alerts/v1 JSONL file (report)",
    )
    p.add_argument(
        "--endpoint",
        help="target 'host:port' (watch; a server or a fleet router); "
        "preferred over --host/--port",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=None, help="server port (watch)"
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between dashboard refreshes (watch)",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N refreshes (watch; default: until Ctrl-C)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (same as --iterations 1)",
    )
    p.add_argument(
        "--manifest",
        help="loadgen/chaos run manifest folded into the report",
    )
    p.add_argument(
        "-o",
        "--out",
        help="write the report here ('.html' selects HTML, anything "
        "else markdown; default: markdown on stdout)",
    )
    p.add_argument(
        "--title", default="Fleet-health report", help="report title"
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 3 unless at least one drift alert fired and a final "
        "SLO snapshot is present (CI gate)",
    )

    p = sub.add_parser(
        "fleet",
        help="shard fleet: run a router topology, soak it, inspect it",
    )
    p.add_argument(
        "action",
        choices=["up", "soak", "topology"],
        help="up: spawn N shard processes behind a router; "
        "soak: parity/chaos harness over an in-process fleet; "
        "topology: query a live router's shard map",
    )
    p.add_argument(
        "--registry", help="source registry with published families (up)"
    )
    p.add_argument(
        "--shards", type=int, default=4, help="shard count (up/soak)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="router port (up; 0 binds an ephemeral port and prints it)",
    )
    p.add_argument(
        "--endpoint", help="router 'host:port' to query (topology)"
    )
    p.add_argument(
        "--dir",
        help="shard working directory — registries, port files, logs "
        "(up; default: a temp dir)",
    )
    p.add_argument(
        "--workers", type=int, default=1, help="engine workers per shard"
    )
    p.add_argument(
        "--requests", type=int, default=100, help="traffic items (soak)"
    )
    p.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="closed-loop soak workers (parity mode)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--chaos",
        action="store_true",
        help="arm the fleet coverage fault plan "
        "(shard_kill/shard_rejoin) during the soak",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the direct single-server parity baseline (soak)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=300.0,
        help="whole-soak wall-clock bound [s] (invariant)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request bound [s] (invariant)",
    )
    p.add_argument(
        "--audit-out",
        help="write the flashmark.fleet-audit/v1 reconcile JSON here "
        "(soak; up writes it on shutdown)",
    )
    p.add_argument(
        "--report", help="write the full soak report JSON here (soak)"
    )
    p.add_argument(
        "--receipt-key",
        help="hex receipt-issuer secret shared by every shard (up)",
    )
    p.add_argument(
        "--pow-difficulty",
        type=int,
        default=0,
        metavar="BITS",
        help="hashcash difficulty each shard enforces (up; 0: off)",
    )
    p.add_argument(
        "--obs",
        metavar="DIR",
        help="scrape the router + every shard into a "
        "flashmark.tsdb/v1 store at DIR while the fleet runs (up)",
    )
    p.add_argument(
        "--obs-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="scrape interval for --obs [s]",
    )

    p = sub.add_parser(
        "trace",
        help="assemble span logs into distributed traces and analyse",
    )
    p.add_argument(
        "action",
        choices=["show", "critical-path", "export"],
        help="show: span trees; critical-path: per-stage breakdown; "
        "export: flamegraph / Chrome trace files",
    )
    p.add_argument(
        "logs", nargs="+", help="span JSONL files (server + client)"
    )
    p.add_argument(
        "--trace-id", help="restrict to trace ids with this prefix"
    )
    p.add_argument(
        "--limit",
        type=int,
        default=5,
        help="most traces to render (show / critical-path)",
    )
    p.add_argument(
        "--flame",
        help="write collapsed-stack lines here (flamegraph.pl input)",
    )
    p.add_argument(
        "--chrome",
        help="write Chrome trace_event JSON here (chrome://tracing)",
    )
    p.add_argument(
        "--json",
        dest="json_out",
        help="write the assembled flashmark.trace/v1 documents here",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 3 unless every assembled trace is complete "
        "(zero orphan spans)",
    )

    p = sub.add_parser(
        "bench",
        help="run the performance-baseline suite and export "
        "BENCH_perf.json",
    )
    p.add_argument(
        "--out",
        default="BENCH_perf.json",
        help="output path (flashmark.bench/v1 JSON)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="smaller repetition counts (CI-friendly)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the engine-scaling section "
        "(default: up to 4, bounded by CPUs)",
    )
    p.add_argument(
        "--gate",
        metavar="BASELINE",
        default=None,
        help="regression-gate the run against a committed "
        "flashmark.bench/v1 baseline JSON; exit 4 on regression",
    )

    p = sub.add_parser(
        "receipt",
        help="verify / inspect signed verdict receipts offline",
    )
    p.add_argument(
        "action",
        choices=["verify", "show"],
        help="verify: check signatures + audit-chain anchors with "
        "zero network access; show: tabulate a receipts file",
    )
    p.add_argument(
        "receipts", help="flashmark.receipt/v1 JSONL file"
    )
    p.add_argument(
        "--registry",
        help="registry snapshot: supplies verifying keys, published "
        "params and the audit chain to anchor against",
    )
    p.add_argument(
        "--fleet-audit",
        help="flashmark.fleet-audit/v1 JSON: anchor each receipt "
        "against its shard's merged timeline",
    )
    p.add_argument(
        "--key",
        help="hex verifying key, used for every family without a "
        "registry entry (ed25519 public key, or the hmac secret)",
    )
    p.add_argument(
        "--algorithm",
        choices=["ed25519", "hmac-sha256"],
        default="ed25519",
        help="algorithm --key belongs to (default: ed25519)",
    )
    p.add_argument(
        "--report", help="write the receipt-check report JSON here"
    )

    p = sub.add_parser(
        "pow",
        help="mint hashcash tickets for PoW-gated verify endpoints",
    )
    p.add_argument("action", choices=["mint"])
    p.add_argument(
        "body",
        nargs="?",
        help="request-body JSON file the ticket binds to "
        "(default: an empty body)",
    )
    p.add_argument(
        "--client", required=True, help="client id the ticket binds to"
    )
    p.add_argument(
        "--difficulty",
        type=int,
        required=True,
        metavar="BITS",
        help="leading zero bits the server demands",
    )

    p = sub.add_parser(
        "obs",
        help="fleet observability: scrape, query, profile, report",
    )
    p.add_argument(
        "action",
        choices=["record", "query", "top", "report"],
        help="record: scrape endpoints into a tsdb; "
        "query: range/instant/rate queries over a tsdb; "
        "top: hottest frames of a flashmark.profile/v1 dump; "
        "report: render the fleet dossier (markdown/HTML)",
    )
    p.add_argument(
        "--store", help="flashmark.tsdb/v1 directory (record/query/report)"
    )
    p.add_argument(
        "--target",
        action="append",
        default=None,
        metavar="NAME=HOST:PORT",
        help="endpoint to scrape, repeatable (record); bare HOST:PORT "
        "names itself",
    )
    p.add_argument(
        "--interval", type=float, default=1.0, help="scrape interval [s]"
    )
    p.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="stop after N scrape rounds (record)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after S seconds (record)",
    )
    p.add_argument("--metric", help="metric to query (query)")
    p.add_argument(
        "--rate",
        action="store_true",
        help="per-second counter rate instead of raw values (query)",
    )
    p.add_argument(
        "--by",
        default=None,
        metavar="LABEL[,LABEL]",
        help="rollup grouping labels, e.g. 'target' (query)",
    )
    p.add_argument(
        "--agg",
        choices=["sum", "max"],
        default="sum",
        help="rollup aggregation across series (query)",
    )
    p.add_argument(
        "--start",
        type=float,
        default=None,
        help="range start (unix seconds; default: everything)",
    )
    p.add_argument(
        "--end",
        type=float,
        default=None,
        help="range end (unix seconds)",
    )
    p.add_argument(
        "--exemplars",
        action="store_true",
        help="print the slowest exemplars of --metric instead of "
        "values (query)",
    )
    p.add_argument(
        "--profile", help="flashmark.profile/v1 JSON dump (top/report)"
    )
    p.add_argument(
        "--limit", type=int, default=15, help="rows to print (top/query)"
    )
    p.add_argument(
        "--flame",
        help="write the profile as collapsed stacks here (top)",
    )
    p.add_argument(
        "--chrome",
        help="write the profile as Chrome trace JSON here (top)",
    )
    p.add_argument(
        "--alerts-log",
        help="flashmark.alerts/v1 JSONL for the dossier (report)",
    )
    p.add_argument(
        "--out",
        help="write the dossier here — .html/.htm renders HTML "
        "(report; default: stdout markdown)",
    )
    p.add_argument(
        "--compact",
        action="store_true",
        help="compact the store after recording (record)",
    )
    p.add_argument(
        "--retention-windows",
        type=int,
        default=0,
        metavar="N",
        help="windows kept by --compact (0: keep everything)",
    )
    return parser


def _cmd_make(args) -> int:
    chip = make_mcu(
        model=args.model, seed=args.seed, n_segments=args.segments
    )
    save_chip(chip, args.chip)
    print(f"manufactured {chip!r} -> {args.chip}")
    return 0


def _cmd_imprint(args) -> int:
    chip = load_chip(args.chip)
    session = FlashmarkSession(chip, segment=args.segment)
    payload = WatermarkPayload(
        manufacturer=args.manufacturer,
        die_id=chip.die_id,
        speed_grade=args.speed_grade,
        status=ChipStatus[args.status],
    )
    sign_key = bytes.fromhex(args.sign_key) if args.sign_key else None
    report = session.imprint_payload(
        payload,
        n_pe=args.n_pe,
        n_replicas=args.replicas,
        sign_key=sign_key,
    )
    save_chip(chip, args.chip)
    print(
        f"imprinted {payload.manufacturer}/{payload.status.name} "
        f"(die 0x{payload.die_id:012X}) with {report.n_pe} cycles in "
        f"{report.duration_s:.0f} s of device time"
    )
    if args.manifest:
        session.write_manifest(args.manifest)
        print(f"run manifest -> {args.manifest}")
    return 0


def _fail(context: str, exc: Exception) -> int:
    """Uniform CLI error reporting: one line on stderr, exit code 1."""
    print(f"{context}: {exc}", file=sys.stderr)
    return 1


def _cmd_wipe(args) -> int:
    chip = load_chip(args.chip)
    chip.flash.erase_segment(args.segment)
    save_chip(chip, args.chip)
    print(f"segment {args.segment} digitally erased (all 0xFFFF)")
    return 0


def _cmd_produce(args) -> int:
    from pathlib import Path

    from .workloads import ProductionLine

    if args.count < 1:
        return _fail("produce", ValueError("--count must be >= 1"))
    line = ProductionLine(
        manufacturer=args.manufacturer,
        outlier_fraction=args.outlier_fraction,
        n_pe=args.n_pe,
        n_replicas=args.replicas,
    )
    telemetry = Telemetry()
    result = line.run(
        args.count,
        seed=args.seed,
        workers=args.workers,
        telemetry=telemetry,
    )
    rows = [
        [
            i,
            f"0x{p.chip.die_id:012X}",
            "pass" if p.die_sort.passed else "FAIL",
            p.die_sort.reason,
        ]
        for i, p in enumerate(result.results)
        if p is not None
    ]
    print(
        format_table(
            ["die", "die id", "sort", "reason"],
            rows,
            title=f"production batch (seed {args.seed}, "
            f"{result.workers} worker(s))",
        )
    )
    batch = result.batch
    if batch:
        print(f"yield: {result.yield_fraction:.0%} of {len(batch)} die(s)")
    for failure in result.failures:
        print(
            f"die {failure.index} failed after {failure.attempts} "
            f"attempt(s): {failure.error.strip().splitlines()[-1]}",
            file=sys.stderr,
        )
    if args.out_dir:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for i, p in enumerate(result.results):
            if p is not None:
                save_chip(p.chip, out / f"die_{i:03d}.npz")
        print(f"saved {len(batch)} chip file(s) -> {out}")
    if args.manifest and result.manifest is not None:
        save_manifest(result.manifest, args.manifest)
        print(f"run manifest -> {args.manifest}")
    return 0 if result.ok else 1


def _cmd_calibrate(args) -> int:
    cache = None
    if args.cache:
        try:
            cache = CalibrationCache(args.cache)
        except CacheError as exc:
            return _fail("calibrate", exc)
    telemetry = Telemetry()
    try:
        result = calibrate_family(
            McuFactory(model=args.model, n_segments=1),
            args.n_pe,
            n_replicas=args.replicas,
            n_chips=args.chips,
            seed=args.seed,
            workers=args.workers,
            cache=cache,
            telemetry=telemetry,
        )
    except ValueError as exc:
        return _fail("calibrate", exc)
    cal = result.calibration
    source = "cache hit" if result.cache_hit else (
        f"swept {args.chips} chip(s) on {result.workers} worker(s)"
    )
    print(f"family calibration ({source}):")
    print(f"  model:        {cal.model}")
    print(f"  t_PEW:        {cal.t_pew_us:.1f} us")
    print(
        f"  window:       {cal.window_lo_us:.1f}..{cal.window_hi_us:.1f} us"
    )
    print(f"  N_PE:         {cal.n_pe}")
    print(f"  replicas:     {cal.n_replicas}")
    print(f"  expected BER: {cal.expected_ber:.4f}")
    if cache is not None:
        stats = cache.stats()
        print(
            f"cache: {stats['entries']} entry(ies), "
            f"{stats['hits']} hit(s), {stats['misses']} miss(es) "
            f"at {stats['path']}"
        )
    if args.manifest:
        save_manifest(result.manifest, args.manifest)
        print(f"run manifest -> {args.manifest}")
    return 0


def _published_format(
    n_replicas: int, tag_bits: int = 0
) -> WatermarkFormat:
    """The published watermark format for a payload-carrying family.

    The width comes from :meth:`WatermarkPayload.bit_length` — the
    packed record layout itself — so it holds for any manufacturer id,
    not just 4-character ones.
    """
    return WatermarkFormat(
        n_bits=WatermarkPayload.bit_length() + tag_bits,
        n_replicas=n_replicas,
        balanced=True,
        structured=True,
    )


def _published_verifier(
    chip, n_pe: int, n_replicas: int, sign_key: Optional[bytes] = None
) -> WatermarkVerifier:
    """Derive the published family parameters for the chip's model."""
    from .core import SignatureScheme

    calibration = calibrate_family(
        McuFactory(model=chip.model, params=chip.params, n_segments=1),
        n_pe,
        n_replicas=n_replicas,
    ).calibration
    scheme = SignatureScheme(sign_key) if sign_key else None
    fmt = _published_format(
        n_replicas, tag_bits=scheme.tag_bits if scheme else 0
    )
    return WatermarkVerifier(calibration, fmt, signature_scheme=scheme)


def _registry_verifier(
    registry_path: str, family: str, sign_key: Optional[bytes] = None
) -> WatermarkVerifier:
    """Build the verifier from a family published in a registry."""
    from .core import SignatureScheme
    from .service import RegistryError, WatermarkRegistry

    with WatermarkRegistry(registry_path, create=False) as registry:
        record = registry.get_family(family)
        scheme = None
        if sign_key is not None:
            if record.sign_key_fingerprint is None:
                raise RegistryError(
                    f"family {family!r} was published unsigned"
                )
            if (
                WatermarkRegistry.fingerprint(sign_key)
                != record.sign_key_fingerprint
            ):
                raise RegistryError(
                    f"signing key does not match the fingerprint "
                    f"published for family {family!r}"
                )
            scheme = SignatureScheme(sign_key)
        return WatermarkVerifier(
            record.calibration, record.format, signature_scheme=scheme
        )


def _cmd_verify(args) -> int:
    if bool(args.registry) != bool(args.family):
        return _fail(
            "verify",
            ValueError("--registry and --family go together"),
        )
    chip = load_chip(args.chip)
    sign_key = bytes.fromhex(args.sign_key) if args.sign_key else None
    telemetry = Telemetry()
    chip.flash.attach_telemetry(telemetry)
    with telemetry.span("calibration", n_pe=args.n_pe):
        if args.registry:
            from .service import RegistryError

            try:
                verifier = _registry_verifier(
                    args.registry, args.family, sign_key=sign_key
                )
            except RegistryError as exc:
                return _fail("verify", exc)
        else:
            verifier = _published_verifier(
                chip, args.n_pe, args.replicas, sign_key=sign_key
            )
    with telemetry.span("verify", segment=args.segment) as sp:
        report = verifier.verify(
            chip.flash,
            args.segment,
            temperature_c=args.temperature,
            telemetry=telemetry,
        )
        sp.set("verdict", report.verdict.value)
    save_chip(chip, args.chip)  # extraction wears/rewrites the segment
    if args.manifest:
        if report.ber is not None:
            telemetry.gauge("verify.ber", report.ber)
        save_manifest(
            build_manifest(
                telemetry,
                kind="verify",
                parameters={
                    "n_pe": args.n_pe,
                    "n_replicas": args.replicas,
                    "segment": args.segment,
                    "temperature_c": args.temperature,
                    "registry": args.registry,
                    "family": args.family,
                },
                seeds={"chip_seed": chip.seed},
                trace=chip.trace,
                verdict=report.verdict.value,
            ),
            args.manifest,
        )
        print(f"run manifest -> {args.manifest}")
    print(f"verdict: {report.verdict.value}")
    print(f"reason:  {report.reason}")
    if report.payload is not None:
        p = report.payload
        print(
            f"payload: manufacturer={p.manufacturer} "
            f"die=0x{p.die_id:012X} grade={p.speed_grade} "
            f"status={p.status.name}"
        )
    return 0 if report.verdict.value == "authentic" else 2


def _cmd_characterize(args) -> int:
    chip = load_chip(args.chip)
    curve = characterize_segment(
        chip.flash,
        args.segment,
        default_t_pe_grid(),
        n_reads=args.reads,
    )
    save_chip(chip, args.chip)
    rows = [
        [p.t_pe_us, p.cells_0, p.cells_1] for p in curve.points[::5]
    ]
    print(
        format_table(
            ["t_PE [us]", "cells_0", "cells_1"],
            rows,
            title=f"segment {args.segment} characterisation",
        )
    )
    print(f"transition onset:  {curve.transition_onset_us()} us")
    print(f"full-erase time:   {curve.full_erase_time_us()} us")
    return 0


def _cmd_info(args) -> int:
    chip = load_chip(args.chip)
    sl = slice(0, chip.geometry.total_bits)
    n_eff = chip.array.n_effective(sl)
    print(f"{chip!r}")
    print(f"die id:        0x{chip.die_id:012X}")
    print(f"segments:      {chip.geometry.n_segments}")
    print(f"device clock:  {chip.trace.now_s:.1f} s")
    print(f"max cell wear: {n_eff.max():.0f} effective P/E cycles")
    print(f"worn cells:    {int((n_eff > 1000).sum())} above 1K cycles")
    return 0


def _cmd_age(args) -> int:
    chip = load_chip(args.chip)
    if args.years < 0:
        print("years must be non-negative", file=sys.stderr)
        return 1
    age_chip(chip, args.years * 365.0 * 24.0)
    save_chip(chip, args.chip)
    print(f"aged {args.years} year(s) of shelf time")
    return 0


def _cmd_detect(args) -> int:
    chip = load_chip(args.chip)
    result = detect_watermark_presence(chip, segment=args.segment)
    save_chip(chip, args.chip)  # the probe rewrites the segment
    print(
        f"watermark present: {'yes' if result.has_watermark else 'no'} "
        f"({result.stressed_cells} stressed cells, "
        f"p={result.p_value:.2e})"
    )
    return 0 if result.has_watermark else 2


def _cmd_estimate_wear(args) -> int:
    chip = load_chip(args.chip)
    estimator = WearEstimator()
    print("building reference curves on sibling golden dies ...")
    estimator.build_references(
        lambda seed: make_mcu(
            model=chip.model, seed=seed, params=chip.params, n_segments=1
        )
    )
    estimate = estimator.estimate(chip, segment=args.segment)
    save_chip(chip, args.chip)
    print(
        f"estimated prior stress: ~{estimate.estimated_kcycles:.1f} K "
        f"P/E cycles (bracket {estimate.bracket})"
    )
    return 0


def _cmd_temp(args) -> int:
    chip = load_chip(args.chip)
    chip.set_temperature(args.celsius)
    save_chip(chip, args.chip)
    print(f"junction temperature set to {args.celsius} C")
    return 0


def _telemetry_selftest() -> int:
    """End-to-end smoke check of the telemetry layer.

    Imprints and verifies a default chip with a live telemetry context,
    then asserts that the manifest's stage device times reconcile with
    the chip's operation-trace clock.
    """
    chip = make_mcu(seed=11, n_segments=1)
    session = FlashmarkSession(chip, telemetry=Telemetry())
    payload = WatermarkPayload(
        manufacturer="TCMK",
        die_id=chip.die_id,
        speed_grade=3,
        status=ChipStatus.ACCEPT,
    )
    session.imprint_payload(payload, n_pe=40_000, n_replicas=7)
    report = session.verify()
    manifest = session.run_manifest()
    print(summarize_manifest(manifest))
    stage_us = sum(s["device_us"] for s in manifest["stages"])
    clock_us = chip.trace.now_us
    drift = abs(stage_us - clock_us)
    tolerance = 1e-6 * max(clock_us, 1.0)
    checks = {
        "verdict is authentic": report.verdict.value == "authentic",
        "stages present": {"imprint", "calibration", "verify"}
        <= {s["name"] for s in manifest["stages"]},
        "extract span recorded": any(
            "extract" in p for p in manifest["span_stats"]
        ),
        f"stage/clock drift {drift:.3g} us within {tolerance:.3g} us":
            drift <= tolerance,
    }
    ok = all(checks.values())
    for label, passed in checks.items():
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
    print(f"telemetry selftest: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_telemetry(args) -> int:
    if args.selftest:
        return _telemetry_selftest()
    if args.action == "summarize":
        if len(args.manifests) != 1:
            print(
                "telemetry summarize takes exactly one manifest",
                file=sys.stderr,
            )
            return 1
        try:
            manifest = load_manifest(args.manifests[0])
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            return _fail("telemetry", exc)
        print(summarize_manifest(manifest))
        return 0
    if args.action == "diff":
        if len(args.manifests) != 2:
            print(
                "telemetry diff takes exactly two manifests",
                file=sys.stderr,
            )
            return 1
        try:
            a = load_manifest(args.manifests[0])
            b = load_manifest(args.manifests[1])
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            return _fail("telemetry", exc)
        print(diff_manifests(a, b))
        return 0
    print(
        "usage: repro telemetry summarize <manifest> | "
        "diff <a> <b> | --selftest",
        file=sys.stderr,
    )
    return 1


def _cmd_registry(args) -> int:
    from .service import RegistryError, WatermarkRegistry

    try:
        if args.action == "init":
            with WatermarkRegistry(args.registry) as registry:
                counts = registry.counts()
            print(f"registry ready at {args.registry}")
            print(
                f"  families: {counts['families']}, "
                f"verifications: {counts['verifications']}"
            )
            return 0
        if args.action == "publish":
            if not args.family:
                raise RegistryError("publish requires --family")
            cache = CalibrationCache(args.cache) if args.cache else None
            sign_key = (
                bytes.fromhex(args.sign_key) if args.sign_key else None
            )
            result = calibrate_family(
                McuFactory(model=args.model, n_segments=1),
                args.n_pe,
                n_replicas=args.replicas,
                n_chips=args.chips,
                seed=args.seed,
                workers=args.workers,
                cache=cache,
            )
            from .core import SignatureScheme

            tag_bits = (
                SignatureScheme(sign_key).tag_bits if sign_key else 0
            )
            fmt = _published_format(args.replicas, tag_bits=tag_bits)
            verify_key = verify_algorithm = None
            if args.receipt_key:
                from .receipts import keypair_for

                verify_algorithm, verify_key = keypair_for(
                    bytes.fromhex(args.receipt_key),
                    args.receipt_algorithm,
                )
            with WatermarkRegistry(args.registry) as registry:
                record = registry.publish_family(
                    args.family,
                    result.calibration,
                    fmt,
                    sign_key=sign_key,
                    replace=args.replace,
                    verify_key=verify_key,
                    verify_algorithm=verify_algorithm,
                )
            cal = record.calibration
            print(
                f"published family {record.family_id!r} "
                f"({'cache hit' if result.cache_hit else 'fresh sweep'})"
            )
            print(f"  model:  {cal.model}")
            print(f"  t_PEW:  {cal.t_pew_us:.1f} us")
            print(f"  format: {record.format.n_bits} bits "
                  f"x {record.format.n_replicas} replicas")
            if record.sign_key_fingerprint:
                print(
                    "  key fp: "
                    f"{record.sign_key_fingerprint[:16]}..."
                )
            if record.verify_key is not None:
                print(
                    f"  receipts: {record.verify_algorithm}, verify "
                    f"key {record.verify_key.hex()[:16]}..."
                )
            return 0
        with WatermarkRegistry(args.registry, create=False) as registry:
            if args.action == "history":
                records = registry.history(
                    args.die, family_id=args.family, limit=args.limit
                )
                rows = [
                    [
                        r.seq,
                        r.family_id,
                        r.die_id,
                        r.verdict,
                        "-" if r.ber is None else f"{r.ber:.4f}",
                        r.client or "-",
                    ]
                    for r in records
                ]
                print(
                    format_table(
                        ["seq", "family", "die id", "verdict", "ber",
                         "client"],
                        rows,
                        title=f"verification history ({args.registry})",
                    )
                )
                return 0
            # audit
            try:
                n = registry.verify_audit_chain()
            except RegistryError as exc:
                if args.check:
                    # CI-gate idiom: 3 means "the artifact failed the
                    # check", distinct from 1's usage/IO errors.
                    print(f"CHECK FAILED: {exc}", file=sys.stderr)
                    return 3
                raise
            for entry in registry.audit_entries():
                print(
                    f"  #{entry['seq']:<4} {entry['actor']:<14} "
                    f"{entry['action']:<22} {entry['detail']}"
                )
            print(f"audit chain intact: {n} entr(ies) verified")
            return 0
    except (RegistryError, CacheError, ValueError) as exc:
        return _fail("registry", exc)


def _cmd_serve(args) -> int:
    import asyncio

    from .service import (
        RegistryError,
        ServerConfig,
        VerificationServer,
        WatermarkRegistry,
    )

    try:
        registry = WatermarkRegistry(args.registry, create=False)
    except RegistryError as exc:
        return _fail("serve", exc)
    families = registry.families()
    if not families:
        return _fail(
            "serve",
            RegistryError(
                "registry has no published families; run "
                "'repro registry publish' first"
            ),
        )
    profile_hz = args.profile_hz
    if args.profile_out and not profile_hz:
        profile_hz = 99.0
    config = ServerConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        max_batch=args.max_batch,
        workers=args.workers,
        rate_capacity=args.rate_capacity,
        rate_refill_per_s=args.rate_refill,
        tracing=not args.no_tracing,
        monitoring=not args.no_monitor,
        pow_difficulty=args.pow_difficulty,
        profile_hz=profile_hz,
    )
    receipt_signer = None
    if args.receipt_key:
        from .receipts import ReceiptKeyError, ReceiptSigner

        try:
            receipt_signer = ReceiptSigner(
                bytes.fromhex(args.receipt_key),
                algorithm=args.receipt_algorithm,
            )
        except (ValueError, ReceiptKeyError) as exc:
            registry.close()
            return _fail("serve", exc)
    sink = None
    if args.trace_log:
        from .telemetry import JsonlSink

        sink = JsonlSink(
            args.trace_log,
            max_bytes=args.trace_log_max_bytes,
            max_files=args.trace_log_max_files,
        )
    telemetry = Telemetry(sink=sink)
    monitor = None
    alerts_fh = None
    if not args.no_monitor:
        from .monitor import FleetMonitor, MonitorConfig, load_slo

        slo = None
        if args.slo:
            try:
                slo = load_slo(args.slo)
            except (OSError, ValueError, KeyError) as exc:
                registry.close()
                return _fail("serve", exc)
        if args.alerts_log:
            alerts_fh = open(args.alerts_log, "a", encoding="utf-8")
        monitor = FleetMonitor(
            MonitorConfig(slo=slo),
            telemetry=telemetry,
            alert_sink=alerts_fh,
        )
    elif args.slo or args.alerts_log:
        registry.close()
        return _fail(
            "serve",
            ValueError("--slo/--alerts-log conflict with --no-monitor"),
        )
    sign_keys = {}
    if args.sign_key:
        key = bytes.fromhex(args.sign_key)
        fp = WatermarkRegistry.fingerprint(key)
        sign_keys = {
            f.family_id: key
            for f in families
            if f.sign_key_fingerprint == fp
        }

    async def _serve() -> None:
        import signal

        server = VerificationServer(
            registry,
            config=config,
            sign_keys=sign_keys,
            telemetry=telemetry,
            monitor=monitor,
            receipt_signer=receipt_signer,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        # Graceful shutdown on the signals supervisors actually send
        # (SIGTERM from systemd/CI, SIGINT from a terminal), so the
        # manifest and the final alert-stream snapshot still get
        # written.  Platforms without signal support fall back to the
        # KeyboardInterrupt path below.
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        async with server:
            if args.port_file:
                # Written atomically-enough (tiny single write) once
                # the socket is bound: supervisors poll this file to
                # learn an ephemeral port.
                with open(args.port_file, "w", encoding="utf-8") as fh:
                    fh.write(f"{server.port}\n")
            print(
                f"serving {len(families)} family(ies) on "
                f"{args.host}:{server.port} "
                f"(queue {config.queue_depth}, batch {config.max_batch})"
            )
            for record in families:
                print(
                    f"  {record.family_id}: {record.model}, "
                    f"t_PEW {record.calibration.t_pew_us:.1f} us"
                )
            if receipt_signer is not None:
                print(
                    f"  receipts: {receipt_signer.algorithm} "
                    f"(key id {receipt_signer.key_id[:16]}...)"
                )
            if args.pow_difficulty > 0:
                print(f"  pow gate: {args.pow_difficulty} bit(s)")
            sys.stdout.flush()
            try:
                await stop.wait()  # until SIGINT/SIGTERM
            finally:
                if args.manifest:
                    save_manifest(server.build_manifest(), args.manifest)
                    print(f"run manifest -> {args.manifest}")
                if monitor is not None and alerts_fh is not None:
                    # A final snapshot record gives 'repro monitor
                    # report' the end-of-run SLO burn and family state.
                    monitor.alerts.emit_snapshot(monitor.snapshot())
                    print(f"alert stream -> {args.alerts_log}")
        if args.profile_out:
            # The server-loop profiler merges into telemetry during
            # stop(), so the dump is only complete here, after the
            # context has exited.
            profile = telemetry.snapshot().get("profile")
            if profile is not None:
                with open(
                    args.profile_out, "w", encoding="utf-8"
                ) as fh:
                    json.dump(profile, fh, indent=1)
                    fh.write("\n")
                print(
                    f"profile ({profile['n_samples']} samples) -> "
                    f"{args.profile_out}"
                )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; server stopped")
    finally:
        registry.close()
        if sink is not None:
            sink.close()
        if alerts_fh is not None:
            alerts_fh.close()
    return 0


def _cmd_chaos(args) -> int:
    import tempfile
    from pathlib import Path

    from .faults import FaultPlan, all_points, sample_plan
    from .faults.soak import coverage_plan, run_chaos_soak
    from .service import WatermarkRegistry
    from .workloads.traffic import TrafficGenerator

    if args.requests < 1:
        return _fail("chaos", ValueError("--requests must be >= 1"))
    if args.plan:
        try:
            plan = FaultPlan.load(args.plan)
        except (OSError, ValueError, KeyError) as exc:
            return _fail("chaos", exc)
    elif args.sample is not None:
        plan = sample_plan(args.seed, all_points(), n_faults=args.sample)
    else:
        plan = coverage_plan(args.seed)
    if args.save_plan:
        plan.save(args.save_plan)
        print(f"fault plan -> {args.save_plan}")
    traffic = TrafficGenerator(seed=args.seed)
    pop = traffic.spec.population
    telemetry = Telemetry()
    print(
        f"chaos soak: {len(plan)} scheduled fault(s), "
        f"{args.requests} request(s), seed {args.seed}"
    )
    print("calibrating the soak family ...")
    calibration = calibrate_family(
        McuFactory(n_segments=1),
        pop.n_pe,
        n_replicas=pop.format.n_replicas,
        n_chips=1,
        seed=77,
    ).calibration
    family = "chaos-family"
    monitored = bool(args.monitor or args.alerts_log)
    alerts_fh = (
        open(args.alerts_log, "a", encoding="utf-8")
        if args.alerts_log
        else None
    )
    try:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            with WatermarkRegistry(Path(tmp) / "registry.db") as registry:
                registry.publish_family(family, calibration, pop.format)
                report = run_chaos_soak(
                    registry,
                    family,
                    traffic.draw(args.requests),
                    plan,
                    telemetry=telemetry,
                    deadline_s=args.deadline,
                    request_timeout_s=args.timeout,
                    monitor=monitored,
                    alert_sink=alerts_fh,
                )
    finally:
        if alerts_fh is not None:
            alerts_fh.close()
    print(
        f"injected {len(report.injected)}/{len(plan)} scheduled fault(s) "
        f"in {report.wall_s:.2f} s:"
    )
    for point, kind, occurrence in report.injected:
        print(f"  {point} [{kind}] at occurrence {occurrence}")
    print(
        f"responses: {report.completed} ok, "
        f"{sum(report.errors.values())} error(s), "
        f"{report.local_rejects} local reject(s), "
        f"{report.reconnects} reconnect(s), "
        f"{report.retry_evidence()} counted retr(ies)"
    )
    for code, count in sorted(report.errors.items()):
        print(f"  {count} response(s) with error code {code}")
    if report.monitored:
        print(
            f"monitor: status {report.monitor_status}, "
            f"alert(s) fired {sorted(set(report.alerts_fired))}, "
            f"resolved {sorted(set(report.alerts_resolved))}, "
            f"still firing {sorted(report.alerts_firing_at_end)}"
        )
        if args.alerts_log:
            print(f"alert stream -> {args.alerts_log}")
    for label, passed in report.invariants().items():
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
    if args.manifest:
        save_manifest(
            build_manifest(
                telemetry,
                kind="chaos",
                parameters={
                    "requests": args.requests,
                    "deadline_s": args.deadline,
                    "request_timeout_s": args.timeout,
                    "plan_specs": len(plan),
                },
                seeds={"seed": args.seed, "plan_seed": plan.seed},
                extra={"chaos": report.to_dict()},
            ),
            args.manifest,
        )
        print(f"run manifest -> {args.manifest}")
    print(f"chaos soak: {'OK' if report.passed else 'FAILED'}")
    return 0 if report.passed else 1


def _cmd_loadgen(args) -> int:
    import asyncio

    from .service import LoadClient, ServiceError

    sink = None
    if args.trace_log:
        from .telemetry import JsonlSink

        sink = JsonlSink(args.trace_log)
    from .workloads.traffic import (
        TrafficGenerator,
        TrafficSpec,
        WearDriftSpec,
    )

    spec = None
    if args.wear_drift or args.genuine_only:
        try:
            drift = (
                WearDriftSpec(
                    start_index=args.wear_start,
                    ramp_items=args.wear_ramp,
                    max_extra_pe=args.wear_max_pe,
                )
                if args.wear_drift
                else None
            )
            kwargs = {"wear_drift": drift}
            if args.genuine_only:
                kwargs["mix"] = {"genuine": 1.0}
            spec = TrafficSpec(**kwargs)
        except ValueError as exc:
            return _fail("loadgen", exc)
        if args.wear_drift:
            print(
                f"wear drift: +{args.wear_max_pe} P/E over "
                f"{args.wear_ramp} item(s) from index {args.wear_start}"
            )

    from .service import Endpoint

    if args.endpoint:
        try:
            endpoint = Endpoint.parse(args.endpoint)
        except ValueError as exc:
            return _fail("loadgen", exc)
    elif args.port is not None:
        endpoint = Endpoint(args.host, args.port)
    else:
        return _fail(
            "loadgen",
            ValueError("give --endpoint host:port (or --port)"),
        )
    load = LoadClient(
        endpoint,
        args.family,
        traffic=TrafficGenerator(spec, seed=args.seed),
        telemetry=Telemetry(sink=sink),
        trace=bool(args.trace or args.trace_log),
        receipts=bool(args.receipts or args.receipts_out),
        pow_difficulty=args.pow_difficulty,
    )

    async def _run():
        if args.mode == "closed":
            return await load.run_closed_loop(
                args.requests, concurrency=args.concurrency
            )
        return await load.run_open_loop(
            args.requests, args.rate, connections=args.concurrency
        )

    try:
        report = asyncio.run(_run())
    except (ConnectionError, OSError, ServiceError) as exc:
        return _fail("loadgen", exc)
    finally:
        if sink is not None:
            sink.close()
    summary = report.latency_summary()
    print(
        f"{report.mode}-loop load: {report.completed}/{report.requests} "
        f"completed, {report.rejected} rejected, "
        f"{len(report.mismatches)} verdict mismatch(es)"
    )
    if summary.get("count"):
        print(
            f"latency: p50 {summary['p50_ms']:.1f} ms, "
            f"p95 {summary['p95_ms']:.1f} ms, "
            f"p99 {summary['p99_ms']:.1f} ms "
            f"(mean {summary['mean_ms']:.1f} ms)"
        )
    print(f"throughput: {report.throughput_rps:.1f} req/s")
    for code, count in sorted(report.errors.items()):
        print(f"  {count} response(s) with error code {code}")
    if load.trace:
        print(f"traced: {len(report.trace_by_index)} request(s)")
        if args.trace_log:
            print(f"client spans -> {args.trace_log}")
    if load.receipts:
        print(f"receipts: {len(report.receipts)} collected")
        if args.receipts_out:
            from .receipts import write_receipts

            write_receipts(report.receipts, args.receipts_out)
            print(f"receipts -> {args.receipts_out}")
    if args.manifest:
        save_manifest(load.build_manifest(report), args.manifest)
        print(f"run manifest -> {args.manifest}")
    return 0 if report.completed == report.requests else 2


def _cmd_monitor(args) -> int:
    if args.action == "watch":
        import asyncio

        from .monitor import watch
        from .service import Endpoint

        if args.endpoint:
            try:
                target = Endpoint.parse(args.endpoint)
            except ValueError as exc:
                return _fail("monitor", exc)
        elif args.port is not None:
            target = Endpoint(args.host, args.port)
        else:
            return _fail(
                "monitor",
                ValueError(
                    "watch requires --endpoint host:port (or --port)"
                ),
            )
        iterations = 1 if args.once else args.iterations
        try:
            asyncio.run(
                watch(
                    target,
                    interval_s=args.interval,
                    iterations=iterations,
                )
            )
        except KeyboardInterrupt:
            print()
        except (ConnectionError, OSError, RuntimeError) as exc:
            return _fail("monitor", exc)
        return 0
    # report
    from .monitor import (
        load_manifest_file,
        read_alert_records,
        render_html,
        render_markdown,
        summarize_alert_records,
    )

    if not args.alerts:
        return _fail(
            "monitor", ValueError("report takes an alerts JSONL file")
        )
    try:
        records = read_alert_records(args.alerts)
        manifest = (
            load_manifest_file(args.manifest) if args.manifest else None
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        return _fail("monitor", exc)
    summary = summarize_alert_records(records, manifest)
    if args.out:
        render = render_html if args.out.endswith(".html") else (
            render_markdown
        )
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(render(summary, title=args.title))
        print(f"report -> {args.out}")
        print(
            f"alerts: {summary['fired']} fired, "
            f"{summary['resolved']} resolved, "
            f"{len(summary['unresolved'])} unresolved"
        )
    else:
        print(render_markdown(summary, title=args.title))
    if args.check:
        drift_fired = bool(summary.get("drift_alerts"))
        slo_reported = bool(
            summary.get("slo_alerts")
            or (summary.get("snapshot") or {}).get("slo")
        )
        if not (drift_fired and slo_reported):
            print(
                f"CHECK FAILED: drift alerts fired={drift_fired}, "
                f"slo burn reported={slo_reported}",
                file=sys.stderr,
            )
            return 3
        print("check: drift alert fired and SLO burn reported")
    return 0


def _cmd_trace(args) -> int:
    from .trace import (
        assemble_traces,
        dump_chrome_trace,
        format_critical_path,
        format_trace,
        read_span_records,
        to_collapsed_stacks,
    )

    try:
        records = read_span_records(args.logs)
    except OSError as exc:
        return _fail("trace", exc)
    docs = assemble_traces(records)
    if args.trace_id:
        docs = [
            d for d in docs if d["trace_id"].startswith(args.trace_id)
        ]
    if not docs:
        print("no traces found in the given span log(s)")
        return 1
    complete = sum(1 for d in docs if d["complete"])
    orphans = sum(len(d["orphans"]) for d in docs)
    print(
        f"{len(docs)} trace(s) assembled from "
        f"{sum(d['n_spans'] for d in docs)} span(s): "
        f"{complete} complete, {orphans} orphan span(s)"
    )
    if args.action == "show":
        for doc in docs[: args.limit]:
            print()
            print(format_trace(doc))
    elif args.action == "critical-path":
        for doc in docs[: args.limit]:
            print()
            print(format_critical_path(doc))
    else:  # export
        if not (args.flame or args.chrome or args.json_out):
            return _fail(
                "trace",
                ValueError(
                    "export needs --flame, --chrome and/or --json"
                ),
            )
        if args.flame:
            with open(args.flame, "w", encoding="utf-8") as fh:
                fh.write(to_collapsed_stacks(docs))
            print(f"collapsed stacks -> {args.flame}")
        if args.chrome:
            dump_chrome_trace(docs, args.chrome)
            print(f"chrome trace -> {args.chrome}")
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                json.dump(docs, fh, indent=1)
                fh.write("\n")
            print(f"trace documents -> {args.json_out}")
    if args.check and (complete != len(docs) or orphans):
        print(
            f"CHECK FAILED: {len(docs) - complete} incomplete trace(s), "
            f"{orphans} orphan span(s)"
        )
        return 3
    return 0


def _cmd_bench(args) -> int:
    from .bench import check_bench, run_bench

    doc = run_bench(quick=args.quick, workers=args.workers)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    for op in doc["ops"]:
        path = f"  [{op['path']}]" if "path" in op else ""
        print(
            f"  {op['name']:<28} p50 {op['p50_ms']:8.2f} ms   "
            f"p95 {op['p95_ms']:8.2f} ms   "
            f"{op['throughput_per_s']:10.1f} /s{path}"
        )
    scaling = doc.get("engine_scaling")
    if scaling:
        print(
            f"  engine scaling: serial {scaling['serial_s']:.2f} s, "
            f"parallel(x{scaling['workers']}) "
            f"{scaling['parallel_s']:.2f} s "
            f"-> speedup {scaling['speedup']:.2f}x"
        )
    verify = doc.get("verify_population")
    if verify:
        print(
            f"  verify population ({verify['n_dies']} dies): "
            f"per-die {verify['per_die_s']:.2f} s, "
            f"batched {verify['batched_s']:.2f} s "
            f"-> speedup {verify['speedup']:.2f}x, verdicts "
            + (
                "identical"
                if verify["verdicts_identical"]
                else "DIFFERENT"
            )
        )
    print(f"bench baseline -> {args.out}")
    if args.gate is not None:
        with open(args.gate, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = check_bench(doc, baseline)
        if problems:
            for problem in problems:
                print(f"bench gate FAIL: {problem}", file=sys.stderr)
            return 4
        print(f"bench gate OK against {args.gate}")
    return 0


def _cmd_receipt(args) -> int:
    from .receipts import read_receipts

    try:
        receipts = read_receipts(args.receipts)
    except (OSError, json.JSONDecodeError) as exc:
        return _fail("receipt", exc)
    if args.action == "show":
        rows = [
            [
                r.get("family", "?"),
                r.get("die_id", "?"),
                r.get("decision", "?"),
                (
                    f"{r['statistic']:.4f}"
                    if isinstance(r.get("statistic"), (int, float))
                    else "-"
                ),
                "-" if r.get("history_seq") is None else r["history_seq"],
                r.get("algorithm", "?"),
                str(r.get("key_id", ""))[:12],
            ]
            for r in receipts
        ]
        print(
            format_table(
                ["family", "die id", "decision", "stat", "seq",
                 "algorithm", "key id"],
                rows,
                title=f"receipts ({args.receipts})",
            )
        )
        return 0

    # verify — entirely offline: keys and chains come from the given
    # snapshot/artifact files, never from the issuing service.
    keys = {}
    params_hashes = None
    audit_entries = None
    timeline = None
    if args.registry:
        from dataclasses import asdict

        from .engine.cache import calibration_to_dict
        from .receipts import params_hash
        from .service import RegistryError, WatermarkRegistry

        try:
            with WatermarkRegistry(
                args.registry, create=False
            ) as registry:
                params_hashes = {}
                for record in registry.families():
                    if record.verify_key is not None:
                        keys[record.family_id] = (
                            record.verify_algorithm,
                            record.verify_key,
                        )
                    params_hashes[record.family_id] = params_hash(
                        record.family_id,
                        record.model,
                        calibration_to_dict(record.calibration),
                        asdict(record.format),
                    )
                audit_entries = registry.audit_entries()
        except RegistryError as exc:
            return _fail("receipt", exc)
    if args.fleet_audit:
        try:
            with open(args.fleet_audit, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            return _fail("receipt", exc)
        timeline = doc.get("timeline") or []
    if args.key:
        try:
            fallback = (args.algorithm, bytes.fromhex(args.key))
        except ValueError as exc:
            return _fail("receipt", exc)
        for r in receipts:
            family = r.get("family") if isinstance(r, dict) else None
            if family and family not in keys:
                keys[family] = fallback
    if not keys:
        return _fail(
            "receipt",
            ValueError(
                "verify needs keys: --registry with published verify "
                "keys, and/or an explicit --key"
            ),
        )

    from .receipts import verify_receipts_offline

    report = verify_receipts_offline(
        receipts,
        keys=keys,
        audit_entries=audit_entries,
        params_hashes=params_hashes,
    )
    anchor_failures = []
    if timeline is not None:
        from .fleet import check_fleet_anchors

        block = check_fleet_anchors(receipts, timeline)
        report["fleet_anchor"] = block
        report["anchored"] = True
        anchor_failures = block["failures"]
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"receipt-check report -> {args.report}")
    print(
        f"receipts: {report['ok']}/{report['checked']} verified "
        f"({'anchored' if report['anchored'] else 'signature only'})"
    )
    for failure in report["failures"]:
        print(
            f"  FAIL #{failure['index']} {failure['die_id'] or '?'}: "
            f"{failure['error']}",
            file=sys.stderr,
        )
    for failure in anchor_failures:
        print(
            f"  FAIL #{failure['index']} {failure['die_id'] or '?'}: "
            f"{'; '.join(failure['errors'])}",
            file=sys.stderr,
        )
    if report["failures"] or anchor_failures:
        print(
            f"CHECK FAILED: "
            f"{len(report['failures']) + len(anchor_failures)} "
            "receipt(s) failed verification",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_pow(args) -> int:
    from .receipts import mint_ticket

    body = {}
    if args.body:
        try:
            with open(args.body, encoding="utf-8") as fh:
                body = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            return _fail("pow", exc)
        if not isinstance(body, dict):
            return _fail(
                "pow", ValueError("body must be a JSON object")
            )
    if args.difficulty < 0:
        return _fail("pow", ValueError("--difficulty must be >= 0"))
    ticket = mint_ticket(args.client, body, args.difficulty)
    print(json.dumps(ticket, sort_keys=True))
    return 0


def _print_topology(topo: dict) -> None:
    print(
        f"fleet topology: {topo.get('routable', 0)}/"
        f"{topo.get('n_shards', 0)} shard(s) routable, "
        f"{topo.get('evicted', 0)} evicted "
        f"(ring x{topo.get('ring_replicas', '?')})"
    )
    for shard in topo.get("shards", []):
        flags = []
        if not shard.get("routable"):
            flags.append("UNROUTABLE")
        if shard.get("evicted"):
            flags.append("evicted")
        print(
            f"  {shard.get('shard_id', '?'):<10s} "
            f"{shard.get('endpoint') or '-':<22s} "
            f"state={shard.get('state', '?'):<5s} "
            f"evictions={shard.get('evictions', 0)} "
            f"readmissions={shard.get('readmissions', 0)}"
            + (f"  [{' '.join(flags)}]" if flags else "")
        )


def _cmd_fleet(args) -> int:
    import asyncio

    if args.action == "topology":
        from .service import ServiceError, VerificationClient, protocol

        if not args.endpoint:
            return _fail(
                "fleet", ValueError("topology requires --endpoint")
            )

        async def _query() -> dict:
            client = await VerificationClient.connect(args.endpoint)
            try:
                return await client.call(
                    {
                        "v": protocol.WIRE_SCHEMA,
                        "id": 1,
                        "op": "topology",
                    }
                )
            finally:
                await client.close()

        try:
            topo = asyncio.run(_query())
        except (ConnectionError, OSError, ServiceError, ValueError) as exc:
            return _fail("fleet", exc)
        _print_topology(topo)
        return 0

    if args.action == "soak":
        import tempfile
        from pathlib import Path

        from .fleet import fleet_coverage_plan, run_fleet_soak
        from .service import WatermarkRegistry
        from .workloads.traffic import TrafficGenerator

        if args.requests < 1:
            return _fail("fleet", ValueError("--requests must be >= 1"))
        traffic = TrafficGenerator(seed=args.seed)
        pop = traffic.spec.population
        plan = fleet_coverage_plan(args.seed) if args.chaos else None
        mode = "chaos" if args.chaos else "parity"
        print(
            f"fleet {mode} soak: {args.shards} shard(s), "
            f"{args.requests} request(s), seed {args.seed}"
            + (f", {len(plan)} scheduled fault(s)" if plan else "")
        )
        print("calibrating the soak family ...")
        calibration = calibrate_family(
            McuFactory(n_segments=1),
            pop.n_pe,
            n_replicas=pop.format.n_replicas,
            n_chips=1,
            seed=77,
        ).calibration
        family = "fleet-family"
        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmp:
            with WatermarkRegistry(Path(tmp) / "registry.db") as registry:
                registry.publish_family(family, calibration, pop.format)
                report = run_fleet_soak(
                    registry,
                    family,
                    traffic.draw(args.requests),
                    n_shards=args.shards,
                    plan=plan,
                    baseline=not args.no_baseline,
                    concurrency=args.concurrency,
                    workers=args.workers,
                    telemetry=Telemetry(),
                    deadline_s=args.deadline,
                    request_timeout_s=args.timeout,
                )
        print(
            f"fleet answered {report.answered}/{report.requests} "
            f"({report.completed} OK, "
            f"{sum(report.errors.values())} typed error(s), "
            f"{report.drops} drop(s)) in {report.wall_s:.1f}s"
        )
        if report.baseline_verdicts:
            print(
                f"parity baseline: {len(report.baseline_verdicts)} "
                "direct verdict(s) compared"
            )
        for code, count in sorted(report.errors.items()):
            print(f"  {count} response(s) with error code {code}")
        if report.injected:
            print(f"injected {len(report.injected)} fault(s):")
            for point, kind, at in report.injected:
                print(f"  {point} {kind} @ occurrence {at}")
        for label, passed in report.invariants().items():
            print(f"  [{'PASS' if passed else 'FAIL'}] {label}")
        if args.audit_out:
            from .fleet import write_fleet_audit

            write_fleet_audit(report.fleet_audit, args.audit_out)
            print(f"fleet audit -> {args.audit_out}")
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"soak report -> {args.report}")
        print(f"fleet soak: {'OK' if report.passed else 'FAILED'}")
        return 0 if report.passed else 1

    # up
    import signal
    import tempfile

    from .fleet import (
        FleetError,
        FleetRouter,
        ProcessShardManager,
        RouterConfig,
        reconcile_fleet,
        write_fleet_audit,
    )
    from .service import RegistryError, WatermarkRegistry

    if not args.registry:
        return _fail("fleet", ValueError("up requires --registry"))
    if args.shards < 1:
        return _fail("fleet", ValueError("--shards must be >= 1"))
    try:
        registry = WatermarkRegistry(args.registry, create=False)
    except RegistryError as exc:
        return _fail("fleet", exc)
    if not registry.families():
        registry.close()
        return _fail(
            "fleet",
            RegistryError(
                "registry has no published families; run "
                "'repro registry publish' first"
            ),
        )

    receipt_key = (
        bytes.fromhex(args.receipt_key) if args.receipt_key else None
    )

    async def _up(workdir: str) -> None:
        manager = ProcessShardManager(
            registry,
            args.shards,
            workdir,
            host=args.host,
            workers=args.workers,
            receipt_key=receipt_key,
            pow_difficulty=args.pow_difficulty,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        print(
            f"starting {args.shards} shard process(es) under "
            f"{workdir} ..."
        )
        with manager:
            router = FleetRouter(
                manager,
                config=RouterConfig(host=args.host, port=args.port),
                telemetry=Telemetry(),
            )
            async with router:
                print(f"fleet router on {router.endpoint}")
                _print_topology(router.topology())
                scrape_task = None
                if args.obs:
                    from .obs import (
                        MetricsScraper,
                        TimeSeriesStore,
                        fleet_targets,
                    )

                    scraper = MetricsScraper(
                        fleet_targets(shards=manager, router=router),
                        TimeSeriesStore(args.obs),
                        interval_s=args.obs_interval,
                    )
                    scrape_task = loop.create_task(
                        scraper.run(stop_event=stop)
                    )
                    print(
                        f"scraping {len(scraper.targets)} target(s) "
                        f"every {args.obs_interval:g}s -> {args.obs}"
                    )
                sys.stdout.flush()
                try:
                    await stop.wait()  # until SIGINT/SIGTERM
                finally:
                    if scrape_task is not None:
                        stop.set()  # also reached on exceptions
                        summary = await scrape_task
                        print(
                            f"obs: {summary['rounds']} scrape "
                            f"round(s), {summary['errors']} "
                            f"error(s) -> {args.obs}"
                        )
                    paths = {
                        info.shard_id: info.registry_path
                        for info in manager.infos()
                    }
        # Shards are down; their registries are free to reconcile.
        if args.audit_out:
            audit = reconcile_fleet(paths, timeline_limit=200)
            write_fleet_audit(audit, args.audit_out)
            print(
                f"fleet audit ({audit['fleet_digest'][:16]}...) -> "
                f"{args.audit_out}"
            )

    try:
        if args.dir:
            asyncio.run(_up(args.dir))
        else:
            with tempfile.TemporaryDirectory(
                prefix="repro-fleet-"
            ) as tmp:
                asyncio.run(_up(tmp))
    except KeyboardInterrupt:
        print("interrupted; fleet stopped")
    except FleetError as exc:
        return _fail("fleet", exc)
    finally:
        registry.close()
    return 0


def _cmd_obs(args) -> int:
    from .obs import ProfileData, TimeSeriesStore

    def _load_profile(path):
        with open(path, "r", encoding="utf-8") as fh:
            return ProfileData.from_dict(json.load(fh))

    if args.action == "record":
        import asyncio

        from .obs import MetricsScraper, ScrapeTarget

        if not args.store:
            return _fail("obs", ValueError("record requires --store"))
        if not args.target:
            return _fail(
                "obs",
                ValueError("record requires at least one --target"),
            )
        targets = []
        for spec in args.target:
            name, sep, endpoint = spec.partition("=")
            if not sep:
                name, endpoint = spec, spec
            try:
                targets.append(ScrapeTarget.from_any(name, endpoint))
            except (ValueError, KeyError) as exc:
                return _fail("obs", exc)
        rounds = args.rounds
        if rounds is None and args.duration is None:
            rounds = 1
        with TimeSeriesStore(args.store) as store:
            scraper = MetricsScraper(
                targets, store, interval_s=args.interval
            )
            try:
                summary = asyncio.run(
                    scraper.run(
                        rounds=rounds, duration_s=args.duration
                    )
                )
            except KeyboardInterrupt:
                summary = {
                    "rounds": scraper.rounds,
                    "errors": scraper.errors,
                }
                print("interrupted; store is consistent")
            print(
                f"recorded {summary['rounds']} round(s) from "
                f"{len(targets)} target(s), "
                f"{summary['errors']} scrape error(s)"
            )
            if args.compact:
                result = store.compact(
                    retention_windows=args.retention_windows
                )
                print(
                    f"compacted {result['compacted']} segment(s), "
                    f"dropped {result['dropped']}"
                )
            stats = store.stats()
        print(
            f"store {args.store}: {stats['n_metrics']} metric(s), "
            f"{stats['n_samples']} sample(s)"
        )
        return 0

    if args.action == "query":
        if not args.store:
            return _fail("obs", ValueError("query requires --store"))
        try:
            store = TimeSeriesStore(args.store)
        except (OSError, ValueError) as exc:
            return _fail("obs", exc)
        with store:
            if not args.metric:
                for metric in store.metrics():
                    print(metric)
                return 0
            if args.exemplars:
                entries = store.exemplars(
                    args.metric, args.start, args.end
                )[: args.limit]
                for entry in entries:
                    ex = entry["exemplar"]
                    ex_labels = ex.get("labels") or {}
                    tags = " ".join(
                        f"{k}={v}" for k, v in sorted(ex_labels.items())
                    )
                    print(
                        f"{ex.get('value')} target="
                        f"{entry['labels'].get('target', '-')} {tags}"
                    )
                if not entries:
                    print("(no exemplars in range)")
                return 0
            if args.by is not None:
                by = tuple(
                    part for part in args.by.split(",") if part
                )
                out = store.rollup(
                    args.metric,
                    args.start,
                    args.end,
                    by=by,
                    agg=args.agg,
                    rate=args.rate,
                )
                unit = "/s" if args.rate else ""
                for group in sorted(out):
                    label = (
                        ",".join(group) if group else f"{args.agg}()"
                    )
                    print(f"{label}\t{out[group]:g}{unit}")
                if not out:
                    print("(no series in range)")
                return 0
            if args.rate:
                rates = store.rate(args.metric, args.start, args.end)
                for key in sorted(rates):
                    tags = ",".join(f"{k}={v}" for k, v in key)
                    print(f"{{{tags}}}\t{rates[key]:g}/s")
                if not rates:
                    print("(no series in range)")
                return 0
            latest = store.query_instant(args.metric, args.end)
            for key in sorted(latest):
                point = latest[key]
                tags = ",".join(f"{k}={v}" for k, v in key)
                print(f"{{{tags}}}\t{point.value:g}\t@{point.t:.3f}")
            if not latest:
                print("(no series in range)")
        return 0

    if args.action == "top":
        if not args.profile:
            return _fail("obs", ValueError("top requires --profile"))
        try:
            profile = _load_profile(args.profile)
        except (OSError, ValueError, KeyError) as exc:
            return _fail("obs", exc)
        print(
            f"{profile.n_samples} sample(s) at {profile.hz:g} Hz over "
            f"{profile.duration_s:.1f}s"
        )
        rows = [
            [
                row["frame"],
                str(row["self"]),
                str(row["cum"]),
                f"{100.0 * row['self_frac']:.1f}%",
            ]
            for row in profile.top(args.limit)
        ]
        print(
            format_table(["frame", "self", "cum", "self %"], rows)
        )
        if args.flame:
            with open(args.flame, "w", encoding="utf-8") as fh:
                fh.write(profile.to_collapsed())
            print(f"collapsed stacks -> {args.flame}")
        if args.chrome:
            from .trace.export import dump_chrome_trace

            dump_chrome_trace([profile.to_trace_doc()], args.chrome)
            print(f"chrome trace -> {args.chrome}")
        return 0

    # report
    from .obs import build_obs_report, write_obs_report

    if not args.store:
        return _fail("obs", ValueError("report requires --store"))
    profile = None
    if args.profile:
        try:
            profile = _load_profile(args.profile)
        except (OSError, ValueError, KeyError) as exc:
            return _fail("obs", exc)
    alerts = None
    if args.alerts_log:
        from .monitor import read_alert_records

        try:
            alerts = read_alert_records(args.alerts_log)
        except (OSError, ValueError) as exc:
            return _fail("obs", exc)
    try:
        store = TimeSeriesStore(args.store)
    except (OSError, ValueError) as exc:
        return _fail("obs", exc)
    with store:
        markdown = build_obs_report(
            store,
            profile=profile,
            alerts=alerts,
            start=args.start,
            end=args.end,
            top_n=args.limit,
        )
    if args.out:
        write_obs_report(
            args.out, markdown, title="Fleet observability report"
        )
        print(f"fleet dossier -> {args.out}")
    else:
        print(markdown, end="")
    return 0


_COMMANDS = {
    "make": _cmd_make,
    "imprint": _cmd_imprint,
    "produce": _cmd_produce,
    "calibrate": _cmd_calibrate,
    "wipe": _cmd_wipe,
    "verify": _cmd_verify,
    "characterize": _cmd_characterize,
    "info": _cmd_info,
    "age": _cmd_age,
    "detect": _cmd_detect,
    "estimate-wear": _cmd_estimate_wear,
    "temp": _cmd_temp,
    "telemetry": _cmd_telemetry,
    "registry": _cmd_registry,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "loadgen": _cmd_loadgen,
    "monitor": _cmd_monitor,
    "fleet": _cmd_fleet,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "receipt": _cmd_receipt,
    "pow": _cmd_pow,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
