"""repro.faults — seeded, deterministic fault injection.

The chaos layer that certifies the stack's failure semantics: a
:class:`FaultPlan` declares *which* injection point fails, at *which*
occurrence, with *which* fault kind; a :class:`FaultInjector` arms the
plan over the named points the device persistence, batch engine and
verification service expose; and the soak harness (``tests/faults/``,
``python -m repro chaos``) replays plans and asserts the invariants
documented in ``docs/robustness.md``:

* nothing hangs past its deadline,
* every injected fault surfaces as a typed error or a counted retry,
* verdicts for uninjected dies are byte-identical to a fault-free run,
* the same seed reproduces the identical injection sequence.

Quick start::

    from repro.faults import FaultInjector, FaultPlan, FaultSpec

    plan = FaultPlan([
        FaultSpec("device.chip_from_bytes", "truncate", at=1),
        FaultSpec("service.registry", "error", at=2,
                  params={"exception": "sqlite3.OperationalError",
                          "message": "database is locked"}),
    ])
    with FaultInjector(plan) as chaos:
        run_workload()
    print(chaos.sequence())   # [(point, kind, occurrence), ...]

Injection points are zero-cost when disarmed (one module-global check)
and report ``faults.injected.*`` counters through the ambient
:mod:`repro.telemetry` context.
"""

from .injector import (
    FaultAction,
    FaultInjector,
    InjectedFault,
    InjectionRecord,
    current_injector,
    fault_point,
)
from .plan import (
    FAULT_KINDS,
    FAULT_PLAN_SCHEMA,
    POINT_KINDS,
    FaultPlan,
    FaultSpec,
    sample_plan,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_SCHEMA",
    "POINT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "sample_plan",
    "FaultAction",
    "FaultInjector",
    "InjectedFault",
    "InjectionRecord",
    "current_injector",
    "fault_point",
    "INJECTION_POINTS",
    "all_points",
]

def _by_layer() -> dict:
    layers: dict = {}
    for point in POINT_KINDS:
        layers.setdefault(point.split(".", 1)[0], []).append(point)
    return {layer: tuple(points) for layer, points in layers.items()}


#: Every injection point the stack currently arms, by layer — derived
#: from :data:`repro.faults.plan.POINT_KINDS` (the single source of
#: truth, which also records the kinds each site applies).  The chaos
#: CLI samples plans over these; tests assert the list stays honest.
INJECTION_POINTS = _by_layer()


def all_points() -> list:
    """Flat list of every known injection point."""
    return [p for layer in INJECTION_POINTS.values() for p in layer]
