"""Declarative fault plans: which injection point fails, when, and how.

A :class:`FaultPlan` is a seeded, ordered schedule of
:class:`FaultSpec` entries.  Each spec names an injection point (a
dotted string like ``"engine.chunk"``), the 1-based *occurrence* of
that point at which to fire, a fault *kind*, and kind-specific
parameters.  Because the schedule is data — not monkeypatching — the
same plan replayed against the same workload reproduces the identical
injection sequence, which is what lets the soak harness assert
"re-running this seed injects exactly these faults again".

Plans serialize to JSON (``flashmark.fault-plan/v1``) so a failing
chaos run can ship its schedule in the run manifest and a developer can
replay it from a file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "FAULT_PLAN_SCHEMA",
    "FAULT_KINDS",
    "POINT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "sample_plan",
]

FAULT_PLAN_SCHEMA = "flashmark.fault-plan/v1"

#: Every fault kind an injection point may be asked to perform.
#:
#: * ``error``     — raise a typed exception (``exception`` / ``message``
#:   params pick the class; defaults to :class:`InjectedFault`);
#: * ``hang``      — sleep ``seconds`` (default 0.05) before continuing,
#:   simulating a wedged worker or a slow-writing client;
#: * ``truncate``  — cut a byte payload to ``keep_fraction`` (default
#:   0.5) of its length;
#: * ``corrupt``   — XOR ``n_bytes`` (default 8) of a byte payload at a
#:   deterministic offset;
#: * ``garbage``   — replace a byte payload with non-JSON garbage;
#: * ``oversize``  — replace a byte payload with one larger than the
#:   wire frame cap (``size`` param, default cap + 1);
#: * ``drop``      — signal the call site to sever its connection.
FAULT_KINDS: Tuple[str, ...] = (
    "error",
    "hang",
    "truncate",
    "corrupt",
    "garbage",
    "oversize",
    "drop",
)

#: The kinds each *known* injection point can actually apply.  A site
#: only honours the kinds its code consumes (a byte-payload fault at a
#: site with no payload would inject silently and break the "every
#: fault surfaces" invariant), so :class:`FaultSpec` rejects
#: unsupported combinations up front and :func:`sample_plan` never
#: draws them.  Points not listed here (e.g. test-local ones) accept
#: any kind.  This table is also the canonical registry of armed
#: points — ``repro.faults.INJECTION_POINTS`` is derived from it.
POINT_KINDS: Dict[str, Tuple[str, ...]] = {
    "device.chip_to_bytes": (
        "error", "truncate", "corrupt", "garbage", "oversize",
    ),
    "device.chip_from_bytes": (
        "error", "truncate", "corrupt", "garbage", "oversize",
    ),
    "device.save_chip": (
        "error", "truncate", "corrupt", "garbage", "oversize",
    ),
    "engine.preflight": ("error",),
    "engine.chunk": ("error",),
    "engine.job": ("error", "hang"),
    "service.read": (
        "error", "drop", "truncate", "corrupt", "garbage", "oversize",
    ),
    "service.write": ("error", "hang", "drop"),
    "service.registry": ("error",),
    # Fleet-layer seams (repro.fleet.router).  ``drop`` at shard_kill
    # hard-kills the request's owner shard mid-traffic; ``drop`` at
    # shard_rejoin restarts a down shard on the next probe round.
    # ``error`` injects a routing fault / aborts a probe round.
    "fleet.shard_kill": ("error", "drop"),
    "fleet.shard_rejoin": ("error", "drop"),
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at occurrence ``at`` of ``point``."""

    #: Dotted injection-point name, e.g. ``"device.chip_from_bytes"``.
    point: str
    #: Fault kind (one of :data:`FAULT_KINDS`).
    kind: str
    #: 1-based occurrence of the point at which to fire.
    at: int = 1
    #: Kind-specific parameters (exception name, sleep seconds, ...).
    params: Dict[str, Union[str, int, float]] = field(default_factory=dict)

    def __post_init__(self):
        if not self.point:
            raise ValueError("fault point name must be non-empty")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.at < 1:
            raise ValueError("occurrence 'at' is 1-based and must be >= 1")
        supported = POINT_KINDS.get(self.point)
        if supported is not None and self.kind not in supported:
            raise ValueError(
                f"point {self.point!r} does not apply kind "
                f"{self.kind!r}; supported kinds: {supported}"
            )

    def to_dict(self) -> dict:
        d = {"point": self.point, "kind": self.kind, "at": self.at}
        if self.params:
            d["params"] = dict(self.params)
        return d

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultSpec":
        return cls(
            point=raw["point"],
            kind=raw["kind"],
            at=int(raw.get("at", 1)),
            params=dict(raw.get("params") or {}),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded schedule of faults.

    ``seed`` documents how the plan was drawn (``None`` for hand-written
    plans); it does not affect matching — the specs themselves are the
    schedule.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def points(self) -> List[str]:
        """Distinct injection points the plan touches, in spec order."""
        seen: List[str] = []
        for spec in self.specs:
            if spec.point not in seen:
                seen.append(spec.point)
        return seen

    def for_point(self, point: str) -> Dict[int, FaultSpec]:
        """``occurrence -> spec`` lookup for one injection point.

        A later spec for the same ``(point, at)`` pair wins, matching
        "last declaration overrides" config semantics.
        """
        return {s.at: s for s in self.specs if s.point == point}

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        schema = raw.get("schema", FAULT_PLAN_SCHEMA)
        if schema != FAULT_PLAN_SCHEMA:
            raise ValueError(
                f"fault plan schema {schema!r} is not {FAULT_PLAN_SCHEMA!r}"
            )
        return cls(
            specs=tuple(
                FaultSpec.from_dict(s) for s in raw.get("specs", ())
            ),
            seed=raw.get("seed"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        return cls.from_dict(json.loads(blob))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def sample_plan(
    seed: int,
    points: Sequence[str],
    *,
    n_faults: int = 8,
    kinds: Optional[Iterable[str]] = None,
    max_occurrence: int = 4,
) -> FaultPlan:
    """Draw a random-but-reproducible plan over ``points``.

    The same ``(seed, points, n_faults, kinds, max_occurrence)`` always
    yields byte-identical specs — the chaos soak leans on this to rerun
    a failing schedule from nothing but its seed.
    """
    if n_faults < 1:
        raise ValueError("n_faults must be >= 1")
    if not points:
        raise ValueError("sample_plan needs at least one injection point")
    pool = tuple(kinds) if kinds is not None else FAULT_KINDS
    for kind in pool:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
    # Per point, only draw kinds the site actually applies.
    per_point = {
        p: tuple(k for k in pool if k in POINT_KINDS.get(p, FAULT_KINDS))
        for p in points
    }
    eligible = tuple(p for p in points if per_point[p])
    if not eligible:
        raise ValueError(
            "no injection point supports any of the requested kinds"
        )
    rng = np.random.default_rng(seed)
    specs = []
    for _ in range(n_faults):
        point = eligible[int(rng.integers(len(eligible)))]
        kind_pool = per_point[point]
        specs.append(
            FaultSpec(
                point=point,
                kind=kind_pool[int(rng.integers(len(kind_pool)))],
                at=int(rng.integers(1, max_occurrence + 1)),
            )
        )
    return FaultPlan(specs=tuple(specs), seed=seed)
