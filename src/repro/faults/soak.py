"""The chaos soak: replay a fault plan against the live stack.

One soak run stands up a real :class:`~repro.service.server.VerificationServer`
over a published registry, arms a :class:`~repro.faults.FaultInjector`,
and streams seeded :class:`~repro.workloads.traffic.TrafficGenerator`
chips through a :class:`~repro.service.client.VerificationClient` —
device persistence, batch engine and wire service all under fire in one
process.  The resulting :class:`ChaosReport` checks the invariants of
``docs/robustness.md``:

* **bounded** — the run finishes inside its deadline and no single
  request outlives its per-request timeout;
* **surfaced** — every injected fault is reconciled against a typed
  observation: an error response, a local
  :class:`~repro.service.protocol.FrameTooLarge`, a reconnect, or a
  counted retry (``engine.retries`` / ``service.registry_retries``);
* **no divergence** — every OK verdict matches the traffic item's
  ground truth (up to the documented false-rejection fallout);
* **reproducible** — the same seed replays the identical injection
  sequence and ``faults.injected.*`` counters (asserted by running the
  soak twice; see ``tests/faults/``).

:func:`coverage_plan` builds the canonical schedule firing **every**
fault kind at least once across all three layers, with deterministic
occurrence placement and seed-drawn fault parameters.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..telemetry import Telemetry
from .injector import FaultInjector, InjectedFault
from .plan import FaultPlan, FaultSpec

__all__ = ["coverage_plan", "ChaosReport", "run_chaos_soak"]

#: Verdict mismatches of this shape are the documented false-rejection
#: fallout (a marginal genuine die failing single-read extraction), not
#: a fault-induced divergence.
_FALSE_REJECT = ("counterfeit", ("authentic",))


def coverage_plan(seed: int = 0) -> FaultPlan:
    """The canonical all-kinds schedule for a sequential soak.

    Occurrence placement is fixed — it encodes how a sequential
    single-connection request stream advances each injection point, so
    every spec is guaranteed to fire within the first ~8 requests:

    ========  =========================  ==============================
    request   spec                       surfaces as
    ========  =========================  ==============================
    2         chip_to_bytes truncate     400 (undecodable chip blob)
    3         chip_to_bytes oversize     client-local FrameTooLarge
    4         service.read garbage       400 (frame is not valid JSON)
    5         service.read drop          severed connection + reconnect
    6         chip_from_bytes corrupt    400 (npz magic destroyed)
    7         service.registry error     counted retry, verdict still OK
    7         service.write hang         delayed (bounded) response
    8         engine.job error           counted engine retry, OK
    ========  =========================  ==============================

    The seed draws only the fault *parameters* (truncation fraction,
    corruption width, stall length, ...) — same seed, same plan, same
    injection sequence.
    """
    rng = np.random.default_rng(seed)
    keep = round(float(rng.uniform(0.3, 0.7)), 3)
    n_corrupt = int(rng.integers(4, 13))
    stall = round(float(rng.uniform(0.02, 0.06)), 3)
    specs = (
        FaultSpec("device.chip_to_bytes", "truncate", at=2,
                  params={"keep_fraction": keep}),
        FaultSpec("device.chip_to_bytes", "oversize", at=3),
        FaultSpec("service.read", "garbage", at=3),
        FaultSpec("service.read", "drop", at=4),
        # offset 0 destroys the npz (zip) magic, so the decode failure
        # is deterministic rather than left to a CRC check.
        FaultSpec("device.chip_from_bytes", "corrupt", at=3,
                  params={"offset": 0, "n_bytes": n_corrupt}),
        FaultSpec("service.registry", "error", at=2,
                  params={"exception": "sqlite3.OperationalError",
                          "message": "database is locked"}),
        FaultSpec("service.write", "hang", at=5,
                  params={"seconds": stall}),
        FaultSpec("engine.job", "error", at=3,
                  params={"exception": "ValueError",
                          "message": "injected job failure"}),
    )
    return FaultPlan(specs=specs, seed=seed)


@dataclass
class ChaosReport:
    """Everything one chaos soak observed, plus its invariant verdicts."""

    seed: Optional[int]
    plan: FaultPlan
    requests: int
    deadline_s: float
    #: ``(point, kind, occurrence)`` firing sequence, in order.
    injected: List[Tuple[str, str, int]] = field(default_factory=list)
    #: ``faults.injected.*`` counter snapshot.
    counters: Dict[str, int] = field(default_factory=dict)
    #: index -> verdict for OK responses.
    verdicts: Dict[int, str] = field(default_factory=dict)
    #: error-code histogram over error responses.
    errors: Dict[int, int] = field(default_factory=dict)
    #: requests rejected client-side (FrameTooLarge before send).
    local_rejects: int = 0
    #: connections the soak had to re-open (drops, aborts).
    reconnects: int = 0
    #: requests that hit the per-request timeout (invariant breach).
    request_timeouts: int = 0
    #: requests whose send path raised an injected encode error.
    encode_errors: int = 0
    #: (index, got, expected) verdicts outside the ground truth.
    divergences: List[Tuple[int, str, Tuple[str, ...]]] = field(
        default_factory=list
    )
    wall_s: float = 0.0
    #: True when a fleet monitor rode along (adds two invariants).
    monitored: bool = False
    #: Alert keys that fired / resolved during the soak, in order.
    alerts_fired: List[str] = field(default_factory=list)
    alerts_resolved: List[str] = field(default_factory=list)
    #: Alert keys still firing when the soak ended.
    alerts_firing_at_end: List[str] = field(default_factory=list)
    #: Monitor rollup (``ok``/``degraded``/``alerting``) at soak end.
    monitor_status: Optional[str] = None

    @property
    def completed(self) -> int:
        return len(self.verdicts)

    def retry_evidence(self) -> int:
        """Counted retries that absorbed injected faults.

        Engine retries inside the server surface under the absorbed
        ``service.batch`` prefix; direct engine runs count them bare.
        """
        return (
            self.counters.get("engine.retries", 0)
            + self.counters.get("service.batch.engine.retries", 0)
            + self.counters.get("service.registry_retries", 0)
        )

    def surfaced_evidence(self) -> int:
        """Typed observations available to account for injections."""
        return (
            sum(self.errors.values())
            + self.local_rejects
            + self.reconnects
            + self.encode_errors
            + self.retry_evidence()
            + self.counters.get("service.rejected.oversized", 0)
            + self.counters.get("service.errors.registry", 0)
        )

    #: Points whose occurrence counter advances once per request no
    #: matter what happened earlier in the pipeline: the client-side
    #: serialize and the server-side frame read.  Two faults scheduled
    #: at the same occurrence of these points poison the *same*
    #: request, which still fails with a single typed error.
    _LOCKSTEP_POINTS = frozenset(
        {"device.chip_to_bytes", "service.read"}
    )

    def _colliding_injections(self) -> int:
        """Injections sharing a request with an earlier one (the
        request's one typed error accounts for all of them)."""
        occurrences = [
            occ
            for point, _, occ in self.injected
            if point in self._LOCKSTEP_POINTS
        ]
        return len(occurrences) - len(set(occurrences))

    def invariants(self) -> Dict[str, bool]:
        """The soak contract of ``docs/robustness.md``, per clause."""
        n_injected = len(self.injected)
        n_hangs = sum(1 for _, kind, _ in self.injected if kind == "hang")
        benign = self.counters.get("faults.injected.device.save_chip", 0)
        collisions = self._colliding_injections()
        out = {
            "finished_before_deadline": self.wall_s <= self.deadline_s,
            "no_request_timed_out": self.request_timeouts == 0,
            # hang faults surface only as (bounded) latency; save_chip
            # faults fire outside the request path entirely; colliding
            # faults share their request's single typed error.
            "every_fault_surfaced": (
                n_injected - n_hangs - benign - collisions
                <= self.surfaced_evidence()
            ),
            "no_verdict_divergence": all(
                (got, expected) == _FALSE_REJECT
                for _, got, expected in self.divergences
            ),
        }
        if self.monitored:
            # The alerting contract: injected faults must burn the
            # error-budget SLO into a *fired* alert, and once the fault
            # schedule is exhausted the clean request tail must let
            # every alert resolve again.
            out["faults_tripped_alert"] = bool(self.alerts_fired)
            out["alerts_cleared_after_recovery"] = (
                not self.alerts_firing_at_end
            )
        return out

    @property
    def passed(self) -> bool:
        return all(self.invariants().values())

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "plan": self.plan.to_dict(),
            "requests": self.requests,
            "completed": self.completed,
            "errors_by_code": {
                str(k): v for k, v in sorted(self.errors.items())
            },
            "local_rejects": self.local_rejects,
            "reconnects": self.reconnects,
            "request_timeouts": self.request_timeouts,
            "encode_errors": self.encode_errors,
            "injected": [list(t) for t in self.injected],
            "fault_counters": dict(sorted(self.counters.items())),
            "divergences": [
                {"index": i, "got": got, "expected": list(expected)}
                for i, got, expected in self.divergences
            ],
            "wall_s": self.wall_s,
            "deadline_s": self.deadline_s,
            "monitored": self.monitored,
            "alerts_fired": list(self.alerts_fired),
            "alerts_resolved": list(self.alerts_resolved),
            "alerts_firing_at_end": list(self.alerts_firing_at_end),
            "monitor_status": self.monitor_status,
            "invariants": self.invariants(),
            "passed": self.passed,
        }


def run_chaos_soak(
    registry,
    family: str,
    items,
    plan: FaultPlan,
    *,
    telemetry: Optional[Telemetry] = None,
    deadline_s: float = 60.0,
    request_timeout_s: float = 10.0,
    workers: int = 1,
    monitor: bool = False,
    alert_sink=None,
) -> ChaosReport:
    """Replay ``items`` through a live server with ``plan`` armed.

    Requests go over one connection, strictly sequentially — each item
    waits for its verdict (or its failure) before the next is sent, so
    every injection point advances deterministically and the same plan
    always meets the same occurrence numbers.  A severed connection is
    re-opened and the dropped request is *not* retried (it counts as
    that fault's surface).

    With ``monitor=True`` a :class:`~repro.monitor.FleetMonitor` (in
    its tight :func:`~repro.monitor.soak_config`) rides along and two
    alerting invariants join the contract: the injected faults must
    burn an SLO alert into existence, and the clean tail of the run
    must let every alert resolve.  Give the run enough trailing clean
    requests (~24 total with the coverage plan) for the second clause.
    ``alert_sink`` optionally receives the ``flashmark.alerts/v1``
    stream.
    """
    tel = telemetry if telemetry is not None else Telemetry()
    report = ChaosReport(
        seed=plan.seed,
        plan=plan,
        requests=len(items),
        deadline_s=deadline_s,
        monitored=monitor,
    )

    async def _soak() -> None:
        # Imported here: repro.faults must stay importable by the layers
        # it instruments, so the soak pulls the service in lazily.
        from ..service import (
            ServerConfig,
            ServiceError,
            VerificationClient,
            VerificationServer,
            protocol,
        )

        loop = asyncio.get_running_loop()
        fleet_monitor = None
        if monitor:
            from ..monitor import FleetMonitor, soak_config

            fleet_monitor = FleetMonitor(
                soak_config(), telemetry=tel, alert_sink=alert_sink
            )
        # Without the ride-along monitor the server runs unmonitored,
        # keeping the classic soak's behavior (and counters) unchanged.
        config = ServerConfig(workers=workers, monitoring=monitor)
        server = VerificationServer(
            registry, config=config, telemetry=tel, monitor=fleet_monitor
        )
        t0 = loop.time()
        async with server:
            client = await VerificationClient.connect(server.endpoint)
            try:
                with FaultInjector(plan, telemetry=tel) as chaos:
                    for item in items:
                        try:
                            req = protocol.verify_request(
                                item.chip,
                                family,
                                request_id=item.index,
                                client="chaos",
                            )
                        except InjectedFault:
                            report.encode_errors += 1
                            continue
                        try:
                            result = await asyncio.wait_for(
                                client.call(req),
                                timeout=request_timeout_s,
                            )
                        except protocol.FrameTooLarge:
                            report.local_rejects += 1
                            continue
                        except ServiceError as exc:
                            report.errors[exc.code] = (
                                report.errors.get(exc.code, 0) + 1
                            )
                            continue
                        except asyncio.TimeoutError:
                            report.request_timeouts += 1
                        except (ConnectionError, OSError):
                            pass  # reconnect below
                        else:
                            verdict = result["verdict"]
                            report.verdicts[item.index] = verdict
                            if verdict not in item.expected_verdicts:
                                report.divergences.append(
                                    (
                                        item.index,
                                        verdict,
                                        tuple(item.expected_verdicts),
                                    )
                                )
                            continue
                        # Dropped or wedged connection: open a new one,
                        # do not retry the lost request.
                        report.reconnects += 1
                        await client.close()
                        client = await VerificationClient.connect(
                            server.endpoint
                        )
                    report.injected = chaos.sequence()
            finally:
                await client.close()
            if fleet_monitor is not None:
                alerts = fleet_monitor.alerts
                report.alerts_fired = [
                    a.key for a in alerts.history
                ] + [a.key for a in alerts.firing()]
                report.alerts_resolved = [a.key for a in alerts.history]
                report.alerts_firing_at_end = [
                    a.key for a in alerts.firing()
                ]
                report.monitor_status = fleet_monitor.status()
                # Close the alert stream with a summary record so
                # 'repro monitor report' sees the end-of-soak state.
                fleet_monitor.alerts.emit_snapshot(
                    fleet_monitor.snapshot()
                )
        report.wall_s = loop.time() - t0

    asyncio.run(_soak())
    counters = tel.registry.snapshot()["counters"]
    report.counters = {
        name: value
        for name, value in counters.items()
        if name.startswith("faults.")
        or name.endswith("engine.retries")
        or name
        in (
            "service.registry_retries",
            "service.errors.registry",
            "service.rejected.oversized",
            "service.read_aborts",
            "service.write_aborts",
        )
    }
    return report
