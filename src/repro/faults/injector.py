"""The fault injector: armed injection points and typed injected faults.

Library code marks its failure-prone seams with

.. code-block:: python

    from ..faults import fault_point

    action = fault_point("device.chip_from_bytes")
    if action is not None:
        data = action.apply_bytes(data)

When no injector is armed — the production case — :func:`fault_point`
is a single module-global ``None`` check and returns immediately; the
instrumented hot paths pay nothing.  Under ``with FaultInjector(plan):``
each call counts one *occurrence* of its point, and when the plan
schedules a fault at that occurrence the injector fires it:

* raising kinds (``error``) raise a typed exception **from inside**
  :func:`fault_point`, so the site's real error handling runs;
* every other kind returns a :class:`FaultAction` the call site
  applies: payload kinds (``truncate`` / ``corrupt`` / ``garbage`` /
  ``oversize``) via :meth:`FaultAction.apply_bytes`, ``drop`` by
  severing the site's connection, and ``hang`` by sleeping
  :attr:`FaultAction.hang_s` — synchronously in worker-pool code,
  ``await asyncio.sleep`` on the event loop — so an injected stall
  never deadlocks the harness itself.

Raised exceptions always subclass :class:`InjectedFault` *and* the
realistic class the site would see in production (``OSError``,
``sqlite3.OperationalError``, ``concurrent.futures.TimeoutError``, ...)
so existing ``except`` clauses catch them while the soak harness can
still tell injected failures from organic ones.

Every firing increments ``faults.injected`` and
``faults.injected.<point>`` on the injector's telemetry and appends an
:class:`InjectionRecord` to ``injector.records`` — the ground truth the
chaos harness reconciles observed errors against.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from ..telemetry import Telemetry
from ..telemetry import current as current_telemetry
from .plan import FaultPlan, FaultSpec

__all__ = [
    "InjectedFault",
    "InjectionRecord",
    "FaultAction",
    "FaultInjector",
    "fault_point",
    "current_injector",
]

#: Default byte size of an ``oversize`` payload: one past the wire
#: frame cap (kept in sync with :data:`repro.service.protocol.MAX_FRAME_BYTES`
#: by a test, not an import — faults must not depend on the service).
_OVERSIZE_DEFAULT = 16 * 1024 * 1024 + 1

#: Bytes that are neither valid UTF-8 nor valid JSON.
_GARBAGE = b'\xff\xfe{"unterminated: garbage'


class InjectedFault(RuntimeError):
    """Base of every exception raised by an armed fault point."""

    def __init__(self, message: str, *, point: str = "", kind: str = "",
                 occurrence: int = 0):
        super().__init__(message)
        self.point = point
        self.kind = kind
        self.occurrence = occurrence


#: Exception classes an ``error`` fault may masquerade as.  Each raised
#: instance subclasses both :class:`InjectedFault` and the named class.
_EXCEPTION_BASES: Dict[str, Type[BaseException]] = {
    "InjectedFault": RuntimeError,
    "OSError": OSError,
    "ValueError": ValueError,
    "ConnectionResetError": ConnectionResetError,
    "BrokenPipeError": BrokenPipeError,
    "TimeoutError": FutureTimeoutError,
    "BrokenExecutor": BrokenExecutor,
    "PicklingError": pickle.PicklingError,
    "sqlite3.OperationalError": sqlite3.OperationalError,
}

_HYBRID_CACHE: Dict[str, Type[InjectedFault]] = {}


def _exception_class(name: str) -> Type[InjectedFault]:
    """The injected-fault class masquerading as exception ``name``."""
    cls = _HYBRID_CACHE.get(name)
    if cls is None:
        base = _EXCEPTION_BASES.get(name)
        if base is None:
            raise ValueError(
                f"fault plan names unknown exception {name!r}; "
                f"expected one of {sorted(_EXCEPTION_BASES)}"
            )
        cls = _HYBRID_CACHE[name] = type(
            f"Injected_{name.replace('.', '_')}", (InjectedFault, base), {}
        )
    return cls


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired."""

    #: 0-based position in the injector's firing sequence.
    index: int
    point: str
    kind: str
    #: The occurrence of the point at which the fault fired (1-based).
    occurrence: int


@dataclass(frozen=True)
class FaultAction:
    """A payload-level fault the call site must apply itself."""

    spec: FaultSpec
    occurrence: int

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def hang_s(self) -> float:
        """Seconds a ``hang`` fault asks the site to stall for."""
        return float(self.param("seconds", 0.05))

    def param(self, key: str, default=None):
        return self.spec.params.get(key, default)

    def apply_bytes(self, data: bytes) -> bytes:
        """The faulted version of a byte payload.

        ``drop`` returns the payload unchanged — severing the transport
        is the site's job (it knows what its connection object is).
        """
        kind = self.spec.kind
        if kind == "truncate":
            keep = float(self.param("keep_fraction", 0.5))
            return data[: max(0, int(len(data) * keep))]
        if kind == "corrupt":
            n = int(self.param("n_bytes", 8))
            if not data:
                return data
            offset = int(self.param("offset", len(data) // 3))
            offset = min(max(offset, 0), max(len(data) - 1, 0))
            buf = bytearray(data)
            for i in range(offset, min(offset + n, len(buf))):
                buf[i] ^= 0xA5
            return bytes(buf)
        if kind == "garbage":
            return _GARBAGE
        if kind == "oversize":
            size = int(self.param("size", _OVERSIZE_DEFAULT))
            return b"\x41" * size
        return data


class FaultInjector:
    """Arms a :class:`FaultPlan` over the process's injection points.

    Use as a context manager::

        plan = FaultPlan([FaultSpec("engine.chunk", "error", at=2)])
        with FaultInjector(plan, telemetry=tel) as chaos:
            ...  # run the workload
        assert chaos.records  # what actually fired

    Arming is per-process: a point reached inside a forked pool worker
    stays disarmed, so the injection sequence does not depend on worker
    scheduling.  Hit counting is thread-safe — the verification server
    reaches fault points from executor threads and the event loop.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        telemetry: Optional[Telemetry] = None,
    ):
        self.plan = plan
        self.telemetry = telemetry
        self._schedule: Dict[str, Dict[int, FaultSpec]] = {
            point: plan.for_point(point) for point in plan.points()
        }
        self._hits: Dict[str, int] = {}
        self.records: List[InjectionRecord] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._prev: Optional["FaultInjector"] = None

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        global _ACTIVE
        if self.telemetry is None:
            self.telemetry = current_telemetry()
        self._prev = _ACTIVE
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev
        self._prev = None
        return False

    # -- introspection ----------------------------------------------------

    def hits(self, point: str) -> int:
        """Times ``point`` has been reached (fired or not)."""
        with self._lock:
            return self._hits.get(point, 0)

    def injected_counts(self) -> Dict[str, int]:
        """``point -> fired count`` over the armed lifetime."""
        counts: Dict[str, int] = {}
        for rec in self.records:
            counts[rec.point] = counts.get(rec.point, 0) + 1
        return counts

    def sequence(self) -> List[tuple]:
        """The firing sequence as comparable ``(point, kind, occurrence)``
        tuples — two same-seed runs must produce equal sequences."""
        return [(r.point, r.kind, r.occurrence) for r in self.records]

    # -- the hot path -----------------------------------------------------

    def _hit(self, point: str) -> Optional[FaultAction]:
        if os.getpid() != self._pid:
            return None
        with self._lock:
            occurrence = self._hits.get(point, 0) + 1
            self._hits[point] = occurrence
            spec = self._schedule.get(point, {}).get(occurrence)
            if spec is None:
                return None
            record = InjectionRecord(
                index=len(self.records),
                point=point,
                kind=spec.kind,
                occurrence=occurrence,
            )
            self.records.append(record)
        tel = self.telemetry
        if tel is not None:
            tel.count("faults.injected")
            tel.count(f"faults.injected.{point}")
        if spec.kind == "error":
            name = str(spec.params.get("exception", "InjectedFault"))
            message = str(
                spec.params.get(
                    "message",
                    f"injected {name} at {point} (occurrence {occurrence})",
                )
            )
            raise _exception_class(name)(
                message, point=point, kind="error", occurrence=occurrence
            )
        return FaultAction(spec=spec, occurrence=occurrence)


#: The armed injector, or None (the production state).
_ACTIVE: Optional[FaultInjector] = None


def current_injector() -> Optional[FaultInjector]:
    """The armed :class:`FaultInjector`, if any."""
    return _ACTIVE


def fault_point(name: str) -> Optional[FaultAction]:
    """Mark an injection point; zero-cost unless an injector is armed.

    Returns ``None`` (nothing scheduled here), returns a
    :class:`FaultAction` (payload fault for the site to apply), or
    raises an :class:`InjectedFault` subclass (scheduled ``error``).
    """
    injector = _ACTIVE
    if injector is None:
        return None
    return injector._hit(name)
