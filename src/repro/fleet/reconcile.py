"""Stitch per-shard audit logs into one fleet-level audit view.

Each shard owns an independent SQLite registry whose audit log is
hash-chained from its own genesis — tamper-evidence is *per shard*.
The fleet needs a single answer to "what happened, in order, and has
anything been rewritten?", so the reconciler:

1. re-verifies every shard chain (``verify_audit_chain``) and records
   its head hash — a rewritten shard fails here, a truncated one
   shows up as a head-hash / entry-count regression between reports;
2. merges the per-shard entries into one timeline ordered by
   ``(created_unix_s, shard, seq)`` — deterministic for identical
   inputs, so two reconcile runs over the same fleet byte-agree;
3. folds the sorted head hashes into a single *fleet digest*: one
   hex string that changes iff any shard's audit history changed;
4. cross-checks family consistency — every shard must serve the same
   published family set (the router hashes dies across all of them),
   so a drifted shard is a routing-correctness bug, not a style issue.

The output is a ``flashmark.fleet-audit/v1`` document; ``repro fleet
soak`` writes it as its reconcile artifact and CI asserts
``chains_ok`` + ``families["consistent"]`` on it.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..service.registry import RegistryError, WatermarkRegistry

__all__ = [
    "FLEET_AUDIT_SCHEMA",
    "reconcile_fleet",
    "fleet_digest",
    "check_fleet_anchors",
    "write_fleet_audit",
]

FLEET_AUDIT_SCHEMA = "flashmark.fleet-audit/v1"

#: Head hash of an empty / unreadable chain in the digest fold.
_EMPTY_HEAD = hashlib.sha256(b"flashmark.fleet-audit/empty").hexdigest()


def fleet_digest(head_hashes: Dict[str, str]) -> str:
    """One hex digest over a ``shard_id -> head_hash`` map.

    Folding ``sha256`` over the ``(shard_id, head_hash)`` pairs in
    shard-id order makes the digest order-independent of dict layout
    but sensitive to *which* shard a history lives on — two fleets
    with swapped registries reconcile to different digests.
    """
    h = hashlib.sha256()
    for shard_id in sorted(head_hashes):
        h.update(shard_id.encode("utf-8"))
        h.update(b"\x00")
        h.update(head_hashes[shard_id].encode("ascii"))
        h.update(b"\x00")
    return h.hexdigest()


def _shard_summary(shard_id: str, registry: WatermarkRegistry) -> dict:
    summary = {
        "shard_id": shard_id,
        "path": registry.path,
        "chain_ok": False,
        "chain_error": None,
        "entries": 0,
        "head_hash": _EMPTY_HEAD,
        "counts": {},
        "families": [],
    }
    try:
        summary["entries"] = registry.verify_audit_chain()
        summary["chain_ok"] = True
    except RegistryError as exc:
        summary["chain_error"] = str(exc)
        return summary
    entries = registry.audit_entries()
    if entries:
        summary["head_hash"] = entries[-1]["entry_hash"]
    summary["counts"] = registry.counts()
    summary["families"] = sorted(
        record.family_id for record in registry.families()
    )
    return summary


def check_fleet_anchors(
    receipts: List[dict], timeline: List[dict]
) -> dict:
    """Anchor each receipt against exactly one shard's chain.

    Audit ``seq`` numbers restart per shard, so a merged
    :class:`~repro.receipts.AnchorIndex` could pair shard A's head
    with shard B's record.  Indexing per shard and requiring head +
    ``history_seq`` to check out against the *same* shard closes that
    hole; a receipt anchors if any one shard accepts it (the shard
    that actually served the verify).
    """
    from ..receipts import AnchorIndex, ReceiptError, check_anchor

    by_shard: Dict[str, List[dict]] = {}
    for entry in timeline:
        by_shard.setdefault(entry["shard"], []).append(entry)
    indexes = {
        shard: AnchorIndex(entries)
        for shard, entries in by_shard.items()
    }
    anchored: Dict[str, int] = {}
    failures: List[dict] = []
    for i, receipt in enumerate(receipts):
        errors = []
        home = None
        for shard in sorted(indexes):
            try:
                check_anchor(receipt, indexes[shard])
            except ReceiptError as exc:
                errors.append(f"{shard}: {exc}")
            else:
                home = shard
                break
        if home is not None:
            anchored[home] = anchored.get(home, 0) + 1
        else:
            failures.append(
                {
                    "index": i,
                    "family": receipt.get("family"),
                    "die_id": receipt.get("die_id"),
                    "errors": errors
                    or ["no shard timeline to anchor against"],
                }
            )
    return {
        "checked": len(receipts),
        "anchored": sum(anchored.values()),
        "by_shard": anchored,
        "failures": failures,
        "ok": not failures,
    }


def reconcile_fleet(
    registries: Dict[str, Union[str, Path, WatermarkRegistry]],
    *,
    timeline_limit: Optional[int] = None,
    receipts: Optional[List[dict]] = None,
) -> dict:
    """Build the ``flashmark.fleet-audit/v1`` view of a shard set.

    Parameters
    ----------
    registries:
        ``shard_id -> registry`` map; values may be open
        :class:`WatermarkRegistry` objects or database paths (paths
        are opened read-style with ``create=False`` and closed again).
    timeline_limit:
        Keep only the newest N merged timeline entries (the summary
        blocks still cover everything).
    receipts:
        ``flashmark.receipt/v1`` documents to cross-check against the
        merged timeline: every receipt's ``audit_head`` must be a real
        entry hash of some shard's (re-verified) chain, and its
        ``history_seq`` must match a recorded verification.  The
        verdict lands in the report's ``receipts`` block — signature
        checking stays with ``repro receipt verify`` (the reconciler
        holds no keys, it anchors).
    """
    if not registries:
        raise ValueError("reconcile needs at least one shard registry")
    shards: List[dict] = []
    timeline: List[dict] = []
    heads: Dict[str, str] = {}
    for shard_id in sorted(registries):
        value = registries[shard_id]
        opened = None
        if not isinstance(value, WatermarkRegistry):
            opened = WatermarkRegistry(value, create=False)
            registry = opened
        else:
            registry = value
        try:
            summary = _shard_summary(shard_id, registry)
            if summary["chain_ok"]:
                for entry in registry.audit_entries():
                    entry = dict(entry)
                    entry["shard"] = shard_id
                    timeline.append(entry)
        finally:
            if opened is not None:
                opened.close()
        shards.append(summary)
        heads[shard_id] = summary["head_hash"]
    timeline.sort(
        key=lambda e: (e["created_unix_s"], e["shard"], e["seq"])
    )
    receipts_block = None
    if receipts is not None:
        # Anchor against the *full* merged timeline, before any
        # timeline_limit trim — a receipt's head may be older than the
        # window the report keeps for display.
        receipts_block = check_fleet_anchors(receipts, timeline)
    truncated = 0
    if timeline_limit is not None and len(timeline) > timeline_limit:
        truncated = len(timeline) - timeline_limit
        timeline = timeline[-timeline_limit:]

    family_sets = {s["shard_id"]: set(s["families"]) for s in shards}
    union = sorted(set().union(*family_sets.values()))
    missing = {
        shard_id: sorted(set(union) - families)
        for shard_id, families in family_sets.items()
        if set(union) - families
    }
    chains_ok = all(s["chain_ok"] for s in shards)
    totals = {
        "entries": sum(s["entries"] for s in shards),
        "verifications": sum(
            int(s["counts"].get("verifications", 0)) for s in shards
        ),
        "families": len(union),
    }
    return {
        "schema": FLEET_AUDIT_SCHEMA,
        "generated_unix_s": time.time(),
        "n_shards": len(shards),
        "chains_ok": chains_ok,
        "fleet_digest": fleet_digest(heads),
        "shards": shards,
        "families": {
            "consistent": not missing and bool(union),
            "union": union,
            "missing": missing,
        },
        "totals": totals,
        "timeline": timeline,
        "timeline_truncated": truncated,
        "receipts": receipts_block,
    }


def write_fleet_audit(report: dict, path: Union[str, Path]) -> Path:
    """Persist a reconcile report as pretty-printed JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out
