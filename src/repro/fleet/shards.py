"""Shard lifecycle: N verification servers, each with its own registry.

A *shard* is one :class:`~repro.service.server.VerificationServer`
over one private SQLite :class:`~repro.service.registry.WatermarkRegistry`.
The fleet replicates the published family parameters into every shard
registry up front (:func:`replicate_families`), then the router's
consistent hashing guarantees each die's verification history
accumulates on exactly one shard — the per-shard audit chains stay
independent and :mod:`repro.fleet.reconcile` stitches them back into
one fleet view.

Two managers implement the same small surface:

:class:`ProcessShardManager`
    Spawns each shard as a ``python -m repro serve`` subprocess
    (ephemeral port read back through ``--port-file``).  This is the
    production topology ``repro fleet up`` runs: real process
    isolation, real sockets, a shard crash cannot take the router
    down.

:class:`InProcessShardManager`
    Runs the shard servers inside the caller's event loop.  Same wire
    protocol, same registries — but deterministic and fast, which is
    what the fleet chaos soak needs to replay identical fault
    schedules.

Both support :meth:`~ProcessShardManager.kill` (hard death: SIGKILL /
abrupt stop, the registry file survives) and
:meth:`~ProcessShardManager.rejoin` (restart over the same registry,
usually on a new port) — the primitives behind the
``fleet.shard_kill`` / ``fleet.shard_rejoin`` fault points.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..service.endpoint import Endpoint
from ..service.registry import WatermarkRegistry

__all__ = [
    "FleetError",
    "ShardInfo",
    "StaticShardSet",
    "ProcessShardManager",
    "InProcessShardManager",
    "replicate_families",
    "shard_id_for",
]


class FleetError(RuntimeError):
    """A fleet-level lifecycle failure (spawn, readiness, topology)."""


def shard_id_for(index: int) -> str:
    """Canonical shard naming: ``shard-0``, ``shard-1``, ..."""
    return f"shard-{index}"


@dataclass
class ShardInfo:
    """One shard's identity and current lifecycle state."""

    shard_id: str
    #: Where the shard listens; None while down.
    endpoint: Optional[Endpoint]
    #: ``"up"`` (process/server running) or ``"down"`` (killed, not
    #: yet rejoined).  Health — whether "up" actually serves — is the
    #: router's judgement, not the manager's.
    state: str = "up"
    #: The shard's private registry database (survives kills).
    registry_path: Optional[str] = None
    pid: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "endpoint": (
                str(self.endpoint) if self.endpoint is not None else None
            ),
            "state": self.state,
            "registry_path": self.registry_path,
            "pid": self.pid,
        }


def replicate_families(
    source: WatermarkRegistry,
    dest_path: Union[str, Path],
    *,
    actor: str = "fleet-replicator",
) -> WatermarkRegistry:
    """Create a shard registry seeded with every family ``source``
    publishes.

    Re-publication is by value (calibration + format); signing keys are
    never stored in a registry, so signed families replicate *unsigned*
    — distribute the key to each shard via ``serve --sign-key`` if
    signature checking must survive sharding.  Receipt *verifying* keys
    are public material and DO replicate, so receipts issued by any
    shard name the same published key.  Each replication is its own
    audit-chain genesis: shard chains are independent by design.

    Returns the open destination registry (caller closes).
    """
    dest = WatermarkRegistry(dest_path)
    for record in source.families():
        dest.publish_family(
            record.family_id,
            record.calibration,
            record.format,
            verify_key=record.verify_key,
            verify_algorithm=record.verify_algorithm,
            actor=actor,
            replace=True,
        )
    return dest


class StaticShardSet:
    """A fixed, externally-managed shard map (no kill/rejoin).

    For pointing a router at shards something else runs — e.g.
    ``repro fleet up`` against pre-started ``repro serve`` processes.
    """

    def __init__(self, endpoints: Dict[str, Endpoint]):
        if not endpoints:
            raise FleetError("a shard set needs at least one shard")
        self._infos = {
            shard_id: ShardInfo(
                shard_id=shard_id,
                endpoint=Endpoint.from_any(endpoint),
            )
            for shard_id, endpoint in endpoints.items()
        }

    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(self._infos)

    def info(self, shard_id: str) -> ShardInfo:
        try:
            return self._infos[shard_id]
        except KeyError:
            raise FleetError(f"unknown shard {shard_id!r}") from None

    def infos(self) -> List[ShardInfo]:
        return [self._infos[s] for s in self._infos]

    def endpoint(self, shard_id: str) -> Optional[Endpoint]:
        return self.info(shard_id).endpoint

    def alive(self, shard_id: str) -> bool:
        return self.info(shard_id).state == "up"

    def registry_paths(self) -> List[str]:
        return []

    def kill(self, shard_id: str) -> None:
        raise FleetError(
            f"shard {shard_id!r} is not managed by this process; "
            "kill/rejoin need a ProcessShardManager or "
            "InProcessShardManager"
        )

    def rejoin(self, shard_id: str) -> None:
        self.kill(shard_id)


class ProcessShardManager:
    """Spawn and supervise shard subprocesses.

    Each shard runs ``python -m repro serve`` over its replicated
    registry, binds an ephemeral port, and reports it back through
    ``--port-file`` (stdout stays human logs).  ``stop()`` terminates
    gracefully (SIGTERM — the serve CLI flushes manifests on it);
    ``kill()`` is deliberately abrupt (SIGKILL) because it models a
    crashed shard, not an drained one.
    """

    def __init__(
        self,
        source: WatermarkRegistry,
        n_shards: int,
        directory: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        workers: int = 1,
        queue_depth: int = 64,
        monitoring: bool = True,
        ready_timeout_s: float = 30.0,
        receipt_key: Optional[bytes] = None,
        pow_difficulty: int = 0,
    ):
        if n_shards < 1:
            raise FleetError("n_shards must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.workers = workers
        self.queue_depth = queue_depth
        self.monitoring = monitoring
        self.ready_timeout_s = ready_timeout_s
        #: Issuer secret every shard signs receipts with (one fleet,
        #: one published verifying key).
        self.receipt_key = receipt_key
        #: Hashcash gate every shard enforces (0: open, no tickets).
        self.pow_difficulty = pow_difficulty
        self._infos: Dict[str, ShardInfo] = {}
        self._procs: Dict[str, subprocess.Popen] = {}
        self._logs: Dict[str, object] = {}
        for i in range(n_shards):
            shard_id = shard_id_for(i)
            path = self.directory / f"{shard_id}.db"
            replicate_families(source, path).close()
            self._infos[shard_id] = ShardInfo(
                shard_id=shard_id,
                endpoint=None,
                state="down",
                registry_path=str(path),
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for shard_id in self._infos:
            self._spawn(shard_id)
        deadline = time.monotonic() + self.ready_timeout_s
        for shard_id in self._infos:
            self._await_ready(shard_id, deadline)

    def stop(self) -> None:
        for shard_id, proc in list(self._procs.items()):
            if proc.poll() is None:
                proc.terminate()
        for shard_id, proc in list(self._procs.items()):
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            self._infos[shard_id].state = "down"
            self._infos[shard_id].pid = None
        self._procs.clear()
        for fh in self._logs.values():
            fh.close()
        self._logs.clear()

    def __enter__(self) -> "ProcessShardManager":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- chaos primitives --------------------------------------------------

    def kill(self, shard_id: str) -> None:
        """Hard-kill one shard (SIGKILL): no drain, no goodbye frame —
        the failure mode eviction exists for."""
        info = self.info(shard_id)
        proc = self._procs.get(shard_id)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()
        info.state = "down"
        info.endpoint = None
        info.pid = None

    def rejoin(self, shard_id: str) -> None:
        """Restart a killed shard over its surviving registry (new
        ephemeral port — the router re-reads endpoints per probe)."""
        info = self.info(shard_id)
        if info.state == "up":
            return
        self._spawn(shard_id)
        self._await_ready(
            shard_id, time.monotonic() + self.ready_timeout_s
        )

    # -- queries -----------------------------------------------------------

    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(self._infos)

    def info(self, shard_id: str) -> ShardInfo:
        try:
            return self._infos[shard_id]
        except KeyError:
            raise FleetError(f"unknown shard {shard_id!r}") from None

    def infos(self) -> List[ShardInfo]:
        return [self._infos[s] for s in self._infos]

    def endpoint(self, shard_id: str) -> Optional[Endpoint]:
        return self.info(shard_id).endpoint

    def alive(self, shard_id: str) -> bool:
        info = self.info(shard_id)
        proc = self._procs.get(shard_id)
        if info.state == "up" and proc is not None:
            if proc.poll() is not None:  # died behind our back
                info.state = "down"
                info.endpoint = None
                info.pid = None
        return info.state == "up"

    def registry_paths(self) -> List[str]:
        return [
            info.registry_path
            for info in self._infos.values()
            if info.registry_path
        ]

    # -- internals ---------------------------------------------------------

    def _port_file(self, shard_id: str) -> Path:
        return self.directory / f"{shard_id}.port"

    def _spawn(self, shard_id: str) -> None:
        info = self._infos[shard_id]
        port_file = self._port_file(shard_id)
        try:
            port_file.unlink()
        except FileNotFoundError:
            pass
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--registry",
            info.registry_path,
            "--host",
            self.host,
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--workers",
            str(self.workers),
            "--queue-depth",
            str(self.queue_depth),
        ]
        if not self.monitoring:
            cmd.append("--no-monitor")
        if self.receipt_key is not None:
            cmd.extend(["--receipt-key", self.receipt_key.hex()])
        if self.pow_difficulty > 0:
            cmd.extend(["--pow-difficulty", str(self.pow_difficulty)])
        env = dict(os.environ)
        # The shard must import the same repro this process runs.
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing
            else src_dir + os.pathsep + existing
        )
        log = open(
            self.directory / f"{shard_id}.log", "a", encoding="utf-8"
        )
        old_log = self._logs.pop(shard_id, None)
        if old_log is not None:
            old_log.close()
        self._logs[shard_id] = log
        proc = subprocess.Popen(
            cmd, stdout=log, stderr=subprocess.STDOUT, env=env
        )
        self._procs[shard_id] = proc
        info.pid = proc.pid
        info.state = "starting"

    def _await_ready(self, shard_id: str, deadline: float) -> None:
        info = self._infos[shard_id]
        proc = self._procs[shard_id]
        port_file = self._port_file(shard_id)
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise FleetError(
                    f"shard {shard_id} exited with code "
                    f"{proc.returncode} before binding; see "
                    f"{self.directory / (shard_id + '.log')}"
                )
            try:
                text = port_file.read_text(encoding="utf-8").strip()
            except FileNotFoundError:
                text = ""
            if text:
                info.endpoint = Endpoint(self.host, int(text))
                info.state = "up"
                return
            time.sleep(0.05)
        raise FleetError(
            f"shard {shard_id} did not report its port within "
            f"{self.ready_timeout_s}s"
        )


class InProcessShardManager:
    """Shard servers inside the current event loop.

    The deterministic twin of :class:`ProcessShardManager`: identical
    wire behavior and registry layout, but kills and rejoins are
    synchronous server stops/starts, so a seeded chaos schedule meets
    the same fleet state on every replay.  ``start``/``stop``/
    ``kill``/``rejoin`` are coroutines; the query surface matches the
    process manager.
    """

    def __init__(
        self,
        source: WatermarkRegistry,
        n_shards: int,
        directory: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        workers: int = 1,
        queue_depth: int = 64,
        monitoring: bool = False,
        telemetry=None,
        receipt_key: Optional[bytes] = None,
        pow_difficulty: int = 0,
    ):
        if n_shards < 1:
            raise FleetError("n_shards must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.workers = workers
        self.queue_depth = queue_depth
        self.monitoring = monitoring
        self.telemetry = telemetry
        self.receipt_key = receipt_key
        self.pow_difficulty = pow_difficulty
        self._infos: Dict[str, ShardInfo] = {}
        self._servers: Dict[str, object] = {}
        self._registries: Dict[str, WatermarkRegistry] = {}
        for i in range(n_shards):
            shard_id = shard_id_for(i)
            path = self.directory / f"{shard_id}.db"
            self._registries[shard_id] = replicate_families(source, path)
            self._infos[shard_id] = ShardInfo(
                shard_id=shard_id,
                endpoint=None,
                state="down",
                registry_path=str(path),
            )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        for shard_id in self._infos:
            await self._start_one(shard_id)

    async def stop(self) -> None:
        for shard_id in list(self._servers):
            await self._stop_one(shard_id)
        for registry in self._registries.values():
            registry.close()

    async def __aenter__(self) -> "InProcessShardManager":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    async def kill(self, shard_id: str) -> None:
        await self._stop_one(shard_id)

    async def rejoin(self, shard_id: str) -> None:
        if self.info(shard_id).state != "up":
            await self._start_one(shard_id)

    # -- queries -----------------------------------------------------------

    def shard_ids(self) -> Tuple[str, ...]:
        return tuple(self._infos)

    def info(self, shard_id: str) -> ShardInfo:
        try:
            return self._infos[shard_id]
        except KeyError:
            raise FleetError(f"unknown shard {shard_id!r}") from None

    def infos(self) -> List[ShardInfo]:
        return [self._infos[s] for s in self._infos]

    def endpoint(self, shard_id: str) -> Optional[Endpoint]:
        return self.info(shard_id).endpoint

    def alive(self, shard_id: str) -> bool:
        return self.info(shard_id).state == "up"

    def registry_paths(self) -> List[str]:
        return [
            info.registry_path
            for info in self._infos.values()
            if info.registry_path
        ]

    # -- internals ---------------------------------------------------------

    async def _start_one(self, shard_id: str) -> None:
        from ..service.server import ServerConfig, VerificationServer

        info = self._infos[shard_id]
        receipt_signer = None
        if self.receipt_key is not None:
            from ..receipts import ReceiptSigner

            receipt_signer = ReceiptSigner(self.receipt_key)
        server = VerificationServer(
            self._registries[shard_id],
            config=ServerConfig(
                host=self.host,
                port=0,
                queue_depth=self.queue_depth,
                workers=self.workers,
                monitoring=self.monitoring,
                pow_difficulty=self.pow_difficulty,
            ),
            telemetry=self.telemetry,
            receipt_signer=receipt_signer,
        )
        await server.start()
        self._servers[shard_id] = server
        info.endpoint = server.endpoint
        info.state = "up"

    async def _stop_one(self, shard_id: str) -> None:
        info = self._infos[shard_id]
        server = self._servers.pop(shard_id, None)
        if server is not None:
            await server.stop()
        info.state = "down"
        info.endpoint = None
