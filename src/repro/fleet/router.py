"""FleetRouter: one wire endpoint in front of N verification shards.

The router speaks ``flashmark.wire/v1`` on both sides: downstream it
looks exactly like a :class:`~repro.service.server.VerificationServer`
(same frame cap, same error codes, same HTTP ``/healthz`` +
``/metrics`` sidecar), upstream it is an ordinary client of each
shard.  A verify request is consistent-hashed on ``(family, die)``
(:mod:`repro.fleet.hashing`) to its owner shard; if the owner is
evicted or the forward fails, the request walks the ring to the next
healthy shard — bounded by ``retry_shards`` — and only then surfaces a
``503``.

Health-based eviction: a background probe fetches each shard's
``/healthz`` (the shared :class:`~repro.service.health.HealthReport`
schema) every ``probe_interval_s``.  A shard is *evicted* after
``evict_after`` consecutive failures — unreachable, un-parseable, a
growing ``engine.hung_skips`` counter (a wedged worker pool answers
HTTP fine while serving nothing), or ``status: alerting`` when
``evict_on_alerting`` is set — and *readmitted* after ``readmit_after``
consecutive healthy probes.  Forward failures feed the same counters,
so a crashed shard stops receiving traffic at the next request, not
the next probe tick.

Observability rides through: a request-carried traceparent is
re-parented onto a ``router.request`` span whose child context is
forwarded upstream, so one distributed trace covers client → router →
shard → engine worker.  Relayed outcomes feed the router's own
:class:`~repro.monitor.FleetMonitor`, making ``repro monitor watch``
against the router a whole-fleet dashboard.

Chaos seams: ``fault_point("fleet.shard_kill")`` fires on the verify
forward path (kind ``drop`` hard-kills the owner shard mid-traffic,
``error`` injects a routing fault) and
``fault_point("fleet.shard_rejoin")`` fires on each probe tick (kind
``drop`` restarts a killed shard, ``error`` aborts the probe round) —
the harness :mod:`repro.fleet.soak` arms them to prove the fleet
degrades but never wedges.
"""

from __future__ import annotations

import asyncio
import hashlib
import inspect
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..faults import InjectedFault, fault_point
from ..telemetry import Telemetry, build_manifest
from ..telemetry.prometheus import render_labeled, render_prometheus
from ..trace.context import TraceContext, parse_traceparent
from ..service import protocol
from ..service.client import VerificationClient
from ..service.endpoint import Endpoint
from ..service.health import HealthReport, engine_counters
from .hashing import DEFAULT_REPLICAS, HashRing, routing_key

__all__ = ["RouterConfig", "FleetRouter"]


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of a :class:`FleetRouter`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``router.port``).
    port: int = 0
    #: Virtual nodes per shard on the hash ring.
    ring_replicas: int = DEFAULT_REPLICAS
    #: Seconds between health-probe rounds.
    probe_interval_s: float = 0.5
    #: Run the background probe task.  The chaos soak turns this off
    #: and drives :meth:`FleetRouter.probe_once` itself, so the
    #: ``fleet.shard_rejoin`` seam advances deterministically with the
    #: request stream instead of a wall-clock timer.
    auto_probe: bool = True
    #: Consecutive probe/forward failures before eviction.
    evict_after: int = 2
    #: Consecutive healthy probes before readmission.
    readmit_after: int = 2
    #: Treat a shard whose monitor went ``alerting`` as failing.
    evict_on_alerting: bool = False
    #: Additional ring-walk shards tried after the owner fails; the
    #: request 503s only once 1 + retry_shards attempts are exhausted.
    retry_shards: int = 1
    #: Pooled upstream connections kept per shard.
    connections_per_shard: int = 8
    #: Upstream dial / per-forward / probe timeouts [s].
    dial_timeout_s: float = 5.0
    forward_timeout_s: float = 30.0
    probe_timeout_s: float = 3.0
    #: Record ``router.request`` spans and propagate child contexts.
    tracing: bool = True
    #: Feed relayed outcomes to a fleet monitor (the ``monitor`` op).
    monitoring: bool = True


class _ShardLink:
    """The router's view of one shard: health counters + connection pool."""

    __slots__ = (
        "shard_id",
        "consecutive_failures",
        "consecutive_successes",
        "evicted",
        "evictions",
        "readmissions",
        "last_status",
        "last_error",
        "last_engine",
        "last_registry",
        "pool",
    )

    def __init__(self, shard_id: str):
        self.shard_id = shard_id
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.evicted = False
        self.evictions = 0
        self.readmissions = 0
        self.last_status: Optional[str] = None
        self.last_error: Optional[str] = None
        self.last_engine: Dict[str, float] = {}
        self.last_registry: Dict[str, int] = {}
        self.pool: List = []  # (VerificationClient, Endpoint) stack

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "evicted": self.evicted,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_successes": self.consecutive_successes,
            "evictions": self.evictions,
            "readmissions": self.readmissions,
            "last_status": self.last_status,
            "last_error": self.last_error,
        }


class FleetRouter:
    """Route ``flashmark.wire/v1`` traffic across a shard set.

    Parameters
    ----------
    shards:
        A shard manager/set from :mod:`repro.fleet.shards` — anything
        with ``shard_ids()`` / ``endpoint()`` / ``alive()`` (and, for
        the chaos seams, ``kill()`` / ``rejoin()``).
    config:
        Routing, eviction and timeout tunables.
    telemetry:
        Receives ``fleet.*`` counters and ``router.request`` spans.
    monitor:
        A pre-built :class:`~repro.monitor.FleetMonitor`; with
        ``config.monitoring`` on and none given, a default one is
        built sharing the router's telemetry.
    """

    def __init__(
        self,
        shards,
        *,
        config: Optional[RouterConfig] = None,
        telemetry: Optional[Telemetry] = None,
        monitor=None,
    ):
        self.shards = shards
        self.config = config if config is not None else RouterConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.monitor = None
        if self.config.monitoring:
            if monitor is None:
                from ..monitor import FleetMonitor

                monitor = FleetMonitor(telemetry=self.telemetry)
            self.monitor = monitor
        self.ring = HashRing(
            shards.shard_ids(), replicas=self.config.ring_replicas
        )
        self._links: Dict[str, _ShardLink] = {
            shard_id: _ShardLink(shard_id)
            for shard_id in shards.shard_ids()
        }
        self._server: Optional[asyncio.base_events.Server] = None
        self._prober: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started_at: Optional[float] = None
        self._open_connections = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("router already started")
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_stream,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        self._started_at = self._loop.time()
        if self.config.auto_probe:
            self._prober = self._loop.create_task(self._probe_loop())
        self.telemetry.count("fleet.router_starts")

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._prober is not None:
            self._prober.cancel()
            try:
                await self._prober
            except asyncio.CancelledError:
                pass
            self._prober = None
        for link in self._links.values():
            while link.pool:
                client, _ = link.pool.pop()
                await client.close()

    async def __aenter__(self) -> "FleetRouter":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("router not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def endpoint(self) -> Endpoint:
        return Endpoint(self.config.host, self.port)

    # -- shard health -----------------------------------------------------

    def routable(self, shard_id: str) -> bool:
        """Whether the router will currently send traffic to a shard."""
        link = self._links[shard_id]
        return (
            not link.evicted
            and self.shards.alive(shard_id)
            and self.shards.endpoint(shard_id) is not None
        )

    def _note_failure(self, shard_id: str, error: str) -> None:
        link = self._links[shard_id]
        link.consecutive_failures += 1
        link.consecutive_successes = 0
        link.last_error = error
        if (
            not link.evicted
            and link.consecutive_failures >= self.config.evict_after
        ):
            link.evicted = True
            link.evictions += 1
            self.telemetry.count("fleet.evictions")
            self.telemetry.count(f"fleet.evictions.{shard_id}")

    def _note_success(self, shard_id: str) -> None:
        link = self._links[shard_id]
        link.consecutive_successes += 1
        link.consecutive_failures = 0
        link.last_error = None
        if (
            link.evicted
            and link.consecutive_successes >= self.config.readmit_after
        ):
            link.evicted = False
            link.readmissions += 1
            self.telemetry.count("fleet.readmissions")
            self.telemetry.count(f"fleet.readmissions.{shard_id}")

    async def probe_once(self) -> None:
        """Run one health-probe round now (the ``auto_probe=False``
        driving mode)."""
        await self._probe_round()

    async def _probe_loop(self) -> None:
        while True:
            try:
                await self._probe_round()
            except asyncio.CancelledError:
                raise
            except Exception:
                # The prober must never die; a broken round is one
                # missed health sample, not a dead fleet.
                self.telemetry.count("fleet.probe_rounds_failed")
            await asyncio.sleep(self.config.probe_interval_s)

    async def _probe_round(self) -> None:
        # Chaos seam: "drop" restarts the first down shard (the rejoin
        # half of the kill/rejoin cycle), "error" aborts this round —
        # readmission is delayed, surfaced as a counted probe abort.
        try:
            action = fault_point("fleet.shard_rejoin")
        except InjectedFault:
            self.telemetry.count("fleet.probe_aborts")
            return
        if action is not None and action.kind == "drop":
            await self._chaos_rejoin()
        self.telemetry.count("fleet.probe_rounds")
        await asyncio.gather(
            *(self._probe_shard(s) for s in self.shards.shard_ids())
        )

    async def _probe_shard(self, shard_id: str) -> None:
        endpoint = self.shards.endpoint(shard_id)
        if endpoint is None or not self.shards.alive(shard_id):
            self._note_failure(shard_id, "shard process down")
            self._links[shard_id].last_status = None
            return
        try:
            report = await asyncio.wait_for(
                self._fetch_healthz(endpoint),
                timeout=self.config.probe_timeout_s,
            )
        except (
            OSError,
            asyncio.TimeoutError,
            ValueError,
            ConnectionError,
        ) as exc:
            self._note_failure(shard_id, f"healthz probe failed: {exc}")
            return
        link = self._links[shard_id]
        link.last_status = report.status
        link.last_registry = dict(report.registry)
        hung_now = sum(
            v
            for k, v in report.engine.items()
            if k.endswith("hung_skips")
        )
        hung_before = sum(
            v
            for k, v in link.last_engine.items()
            if k.endswith("hung_skips")
        )
        link.last_engine = dict(report.engine)
        if hung_now > hung_before:
            self._note_failure(
                shard_id,
                f"engine hung_skips grew to {hung_now:g} "
                "(wedged worker pool)",
            )
            return
        if report.status == "alerting" and self.config.evict_on_alerting:
            self._note_failure(shard_id, "shard monitor is alerting")
            return
        self._note_success(shard_id)

    @staticmethod
    async def _fetch_healthz(endpoint: Endpoint) -> HealthReport:
        reader, writer = await asyncio.open_connection(
            endpoint.host, endpoint.port
        )
        try:
            writer.write(
                f"GET /healthz HTTP/1.1\r\nHost: {endpoint.host}\r\n"
                "Connection: close\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0]
        if b"200" not in status_line:
            raise ValueError(
                f"healthz answered {status_line.decode('latin-1')!r}"
            )
        return HealthReport.from_dict(json.loads(body.decode("utf-8")))

    async def _chaos_kill(self, shard_id: str) -> None:
        """Hard-kill a shard through its manager (chaos seam)."""
        self.telemetry.count("fleet.chaos_kills")
        result = self.shards.kill(shard_id)
        if inspect.isawaitable(result):
            await result

    async def _chaos_rejoin(self) -> None:
        """Restart the first down shard, if any (chaos seam)."""
        for shard_id in self.shards.shard_ids():
            if not self.shards.alive(shard_id):
                self.telemetry.count("fleet.chaos_rejoins")
                result = self.shards.rejoin(shard_id)
                if inspect.isawaitable(result):
                    await result
                return

    # -- upstream connection pool -----------------------------------------

    async def _lease(self, shard_id: str):
        endpoint = self.shards.endpoint(shard_id)
        if endpoint is None:
            raise ConnectionError(f"shard {shard_id} has no endpoint")
        link = self._links[shard_id]
        while link.pool:
            client, pooled_endpoint = link.pool.pop()
            if pooled_endpoint == endpoint:
                return client, endpoint
            await client.close()  # stale: shard rejoined elsewhere
        client = await asyncio.wait_for(
            VerificationClient.connect(endpoint),
            timeout=self.config.dial_timeout_s,
        )
        return client, endpoint

    async def _release(self, shard_id: str, client, endpoint) -> None:
        link = self._links[shard_id]
        if len(link.pool) < self.config.connections_per_shard:
            link.pool.append((client, endpoint))
        else:
            await client.close()

    async def _forward(self, shard_id: str, req: dict) -> dict:
        """One request/response exchange with a shard; the connection
        returns to the pool only on success."""
        client, endpoint = await self._lease(shard_id)
        try:
            resp = await asyncio.wait_for(
                client.request(req),
                timeout=self.config.forward_timeout_s,
            )
        except BaseException:
            await client.close()
            raise
        await self._release(shard_id, client, endpoint)
        return resp

    # -- downstream connection handling ------------------------------------

    async def _read_frame(self, frames, writer, write_lock) -> bytes:
        """Mirror of the server's guarded read: an oversized frame
        answers 400 and the connection keeps serving."""
        try:
            return await frames.read_frame()
        except protocol.FrameTooLarge as exc:
            self.telemetry.count("fleet.rejected.oversized")
            await self._write_frame(
                writer,
                write_lock,
                protocol.error_response(
                    None, protocol.BAD_REQUEST, str(exc)
                ),
            )
            return b"\n"

    async def _handle_stream(self, reader, writer) -> None:
        self._open_connections += 1
        self.telemetry.count("fleet.connections")
        write_lock = asyncio.Lock()
        tasks: set = set()
        frames = protocol.FrameReader(reader)
        try:
            first = await self._read_frame(frames, writer, write_lock)
            if first.split(b" ", 1)[0] in (b"GET", b"HEAD"):
                await self._handle_http(first, frames, writer)
                return
            line = first
            while line:
                stripped = line.strip()
                if stripped:
                    await self._dispatch_line(
                        stripped, writer, write_lock, tasks
                    )
                line = await self._read_frame(frames, writer, write_lock)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._open_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_line(
        self, line: bytes, writer, write_lock, tasks: set
    ) -> None:
        try:
            req = protocol.decode_frame(line)
        except protocol.ProtocolError as exc:
            self.telemetry.count("fleet.rejected.bad_request")
            await self._write_frame(
                writer,
                write_lock,
                protocol.error_response(
                    None, protocol.BAD_REQUEST, str(exc)
                ),
            )
            return
        self.telemetry.count("fleet.requests")
        op = req.get("op")
        if op == "verify":
            task = self._loop.create_task(
                self._serve_verify(req, writer, write_lock)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)
            return
        response = await self._handle_query(op, req.get("id"), req)
        await self._write_frame(writer, write_lock, response)

    async def _write_frame(self, writer, write_lock, obj: dict) -> None:
        async with write_lock:
            writer.write(protocol.encode_frame(obj))
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- verify routing ----------------------------------------------------

    def _routing_key(self, req: dict) -> str:
        family = req.get("family") or ""
        die_id = req.get("die_id")
        if isinstance(die_id, str) and die_id:
            return routing_key(family, die_id)
        # Legacy client without the die_id field: hash the blob itself.
        # Identical chips still pin to identical shards.
        blob = req.get("chip_b64") or ""
        digest = hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]
        return routing_key(family, f"blob:{digest}")

    async def _serve_verify(self, req: dict, writer, write_lock) -> None:
        request_id = req.get("id")
        t0 = self._loop.time()
        t0_unix = time.time()
        ctx = None
        upstream = dict(req)
        if self.config.tracing:
            parsed = parse_traceparent(req.get("trace"))
            ctx = (
                parsed.child() if parsed is not None
                else TraceContext.new_root()
            )
            upstream["trace"] = ctx.to_traceparent()
        response, shard_id = await self._route_verify(upstream, request_id)
        latency = self._loop.time() - t0
        exemplar = None
        if ctx is not None:
            # Bucket exemplar: the slowest relay per bucket keeps its
            # trace id (and receipt id when the shard issued one) plus
            # the shard that served it.
            exemplar = {"trace_id": ctx.trace_id}
            if shard_id:
                exemplar["shard"] = str(shard_id)
            receipt = (response.get("result") or {}).get("receipt")
            if isinstance(receipt, dict) and receipt.get("sig"):
                exemplar["receipt_id"] = str(receipt["sig"])[:16]
        self.telemetry.observe(
            "fleet.latency_s", latency, exemplar=exemplar
        )
        self._monitor_relay(req, response, latency)
        if ctx is not None:
            error = None
            if not response.get("ok", False):
                error = str(
                    (response.get("error") or {}).get("code", "error")
                )
            self.telemetry.record_span(
                "router.request",
                latency,
                t0_unix_s=t0_unix,
                ctx=ctx,
                attrs={
                    "shard": shard_id,
                    "family": req.get("family"),
                },
                error=error,
            )
        await self._write_frame(writer, write_lock, response)

    async def _route_verify(self, req: dict, request_id: Any):
        """Pick the owner shard, forward with bounded ring-walk retry;
        returns ``(response, shard_id_or_None)``."""
        family = req.get("family")
        if not isinstance(family, str) or not family:
            self.telemetry.count("fleet.rejected.bad_request")
            return (
                protocol.error_response(
                    request_id,
                    protocol.BAD_REQUEST,
                    "verify request is missing 'family'",
                ),
                None,
            )
        if not isinstance(req.get("chip_b64"), str) or not req["chip_b64"]:
            self.telemetry.count("fleet.rejected.bad_request")
            return (
                protocol.error_response(
                    request_id,
                    protocol.BAD_REQUEST,
                    "verify request is missing 'chip_b64'",
                ),
                None,
            )
        candidates = self.ring.candidates(self._routing_key(req))
        # Chaos seam: "drop" hard-kills the request's owner shard just
        # before the forward — the crash-mid-traffic scenario; "error"
        # injects a routing failure, surfaced as a typed 503.
        try:
            action = fault_point("fleet.shard_kill")
        except InjectedFault as exc:
            self.telemetry.count("fleet.injected_route_errors")
            return (
                protocol.error_response(
                    request_id,
                    protocol.SERVICE_UNAVAILABLE,
                    f"injected routing fault: {exc}",
                ),
                None,
            )
        if action is not None and action.kind == "drop":
            victim = next(
                (s for s in candidates if self.routable(s)),
                candidates[0],
            )
            await self._chaos_kill(victim)
        attempts = [s for s in candidates if self.routable(s)]
        attempts = attempts[: 1 + max(0, self.config.retry_shards)]
        last_error: Optional[str] = None
        for n, shard_id in enumerate(attempts):
            try:
                response = await self._forward(shard_id, req)
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                protocol.ProtocolError,
            ) as exc:
                last_error = f"{shard_id}: {exc or type(exc).__name__}"
                self.telemetry.count("fleet.forward_failures")
                self._note_failure(shard_id, str(exc) or repr(exc))
                continue
            self._note_success(shard_id)
            self.telemetry.count("fleet.forwarded")
            if n > 0:
                self.telemetry.count("fleet.rerouted")
            return response, shard_id
        self.telemetry.count("fleet.rejected.unavailable")
        detail = (
            f"no healthy shard for family {family!r} "
            f"({len(attempts)} of {len(candidates)} tried"
            + (f"; last error: {last_error}" if last_error else "")
            + ")"
        )
        return (
            protocol.error_response(
                request_id, protocol.SERVICE_UNAVAILABLE, detail
            ),
            None,
        )

    # -- monitor feed ------------------------------------------------------

    def _monitor_relay(
        self, req: dict, response: dict, latency: float
    ) -> None:
        """Feed one relayed outcome to the router's fleet monitor."""
        if self.monitor is None:
            return
        from ..monitor import (
            OUTCOME_ERROR,
            OUTCOME_OK,
            OUTCOME_REJECTED,
            VerificationEvent,
        )

        family = req.get("family")
        family = family if isinstance(family, str) else ""
        client = req.get("client")
        client = client if isinstance(client, str) else None
        if response.get("ok", False):
            result = response.get("result") or {}
            event = VerificationEvent(
                family=family,
                outcome=OUTCOME_OK,
                verdict=result.get("verdict"),
                statistic=result.get("statistic"),
                latency_s=latency,
                registry_seq=result.get("history_seq"),
                client=client,
                unix_s=time.time(),
            )
        else:
            code = (response.get("error") or {}).get("code")
            event = VerificationEvent(
                family=family,
                outcome=(
                    OUTCOME_REJECTED
                    if code
                    in (
                        protocol.TOO_MANY_REQUESTS,
                        protocol.SERVICE_UNAVAILABLE,
                    )
                    else OUTCOME_ERROR
                ),
                error_code=code,
                latency_s=latency,
                client=client,
                unix_s=time.time(),
            )
        self.monitor.record(event)

    # -- queries -----------------------------------------------------------

    async def _handle_query(self, op, request_id, req: dict) -> dict:
        if op == "ping":
            return protocol.ok_response(
                request_id, {"pong": True, "role": "router"}
            )
        if op == "topology":
            return protocol.ok_response(request_id, self.topology())
        if op == "stats":
            return protocol.ok_response(request_id, self.stats())
        if op == "monitor":
            if self.monitor is None:
                return protocol.error_response(
                    request_id,
                    protocol.BAD_REQUEST,
                    "monitoring is disabled on this router",
                )
            snapshot = self.monitor.snapshot()
            snapshot["fleet"] = self._fleet_block()
            return protocol.ok_response(request_id, snapshot)
        if op == "families":
            return await self._relay_query(request_id, req)
        if op == "history":
            return await self._merged_history(request_id, req)
        return protocol.error_response(
            request_id, protocol.BAD_REQUEST, f"unknown op {op!r}"
        )

    async def _relay_query(self, request_id, req: dict) -> dict:
        """Forward a query to the first routable shard."""
        for shard_id in self.shards.shard_ids():
            if not self.routable(shard_id):
                continue
            try:
                return await self._forward(shard_id, req)
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                protocol.ProtocolError,
            ) as exc:
                self._note_failure(shard_id, str(exc) or repr(exc))
        return protocol.error_response(
            request_id,
            protocol.SERVICE_UNAVAILABLE,
            "no healthy shard to answer the query",
        )

    async def _merged_history(self, request_id, req: dict) -> dict:
        """Fan a history query out to every routable shard and merge
        newest-first — each die's records live on one shard, so the
        union is the fleet's history."""
        limit = int(req.get("limit", 20))
        merged: List[dict] = []
        answered = 0
        for shard_id in self.shards.shard_ids():
            if not self.routable(shard_id):
                continue
            try:
                resp = await self._forward(shard_id, req)
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                protocol.ProtocolError,
            ) as exc:
                self._note_failure(shard_id, str(exc) or repr(exc))
                continue
            if not resp.get("ok", False):
                return resp
            answered += 1
            for record in (resp.get("result") or {}).get("history", []):
                record = dict(record)
                record["shard"] = shard_id
                merged.append(record)
        if answered == 0:
            return protocol.error_response(
                request_id,
                protocol.SERVICE_UNAVAILABLE,
                "no healthy shard to answer the query",
            )
        merged.sort(
            key=lambda r: (r.get("created_unix_s", 0), r.get("seq", 0)),
            reverse=True,
        )
        return protocol.ok_response(
            request_id, {"history": merged[:limit]}
        )

    # -- introspection -----------------------------------------------------

    def _fleet_block(self) -> dict:
        shards = []
        for info in self.shards.infos():
            entry = info.to_dict()
            entry.update(self._links[info.shard_id].to_dict())
            entry["routable"] = self.routable(info.shard_id)
            shards.append(entry)
        return {
            "shards": shards,
            "n_shards": len(shards),
            "routable": sum(1 for s in shards if s["routable"]),
            "evicted": sum(1 for s in shards if s["evicted"]),
            "ring_replicas": self.ring.replicas,
        }

    def topology(self) -> dict:
        """The shard map the ``topology`` wire op serves."""
        return {
            "role": "router",
            "wire_schema": protocol.WIRE_SCHEMA,
            "endpoint": (
                str(self.endpoint) if self._server is not None else None
            ),
            **self._fleet_block(),
        }

    def stats(self) -> dict:
        counters = self.telemetry.registry.snapshot()["counters"]
        fleet = {
            k: v for k, v in counters.items() if k.startswith("fleet.")
        }
        return {
            "wire_schema": protocol.WIRE_SCHEMA,
            "role": "router",
            "open_connections": self._open_connections,
            "monitoring": self.monitor is not None,
            "counters": fleet,
            "fleet": self._fleet_block(),
        }

    def health_report(self) -> HealthReport:
        """The router's ``/healthz`` in the shared schema.

        ``status`` degrades with the shard map: no routable shard is
        ``alerting`` (the fleet serves nothing), a partial fleet is
        ``degraded``; otherwise the router's own monitor status (or
        ``ok``).  The registry block sums the counts each shard last
        reported, so one probe of the router sizes the whole fleet.
        """
        from .. import __version__

        fleet = self._fleet_block()
        if fleet["routable"] == 0:
            status = "alerting"
        elif fleet["routable"] < fleet["n_shards"]:
            status = "degraded"
        elif self.monitor is not None:
            status = self.monitor.status()
        else:
            status = "ok"
        totals: Dict[str, int] = {}
        for link in self._links.values():
            for key, value in link.last_registry.items():
                totals[key] = totals.get(key, 0) + int(value)
        counters = self.telemetry.registry.snapshot()["counters"]
        return HealthReport(
            status=status,
            version=__version__,
            role="router",
            uptime_s=(
                self._loop.time() - self._started_at
                if self._loop is not None and self._started_at is not None
                else 0.0
            ),
            queue_depth=0,
            registry=totals,
            engine=engine_counters(counters),
            monitor=(
                self.monitor.healthz_block()
                if self.monitor is not None
                else None
            ),
            fleet=fleet,
        )

    # -- HTTP sidecar ------------------------------------------------------

    async def _handle_http(self, first_line, frames, writer) -> None:
        try:
            while True:  # drain headers
                header = await frames.read_frame()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = first_line.decode("latin-1").split()
            path = parts[1] if len(parts) > 1 else "/"
            if path == "/healthz":
                body = json.dumps(
                    self.health_report().to_dict()
                ).encode()
                content_type = "application/json"
                status = "200 OK"
            elif path == "/metrics":
                extra_gauges = {
                    "fleet.open_connections": self._open_connections,
                    "fleet.routable_shards": self._fleet_block()[
                        "routable"
                    ],
                }
                if self.monitor is not None:
                    extra_gauges.update(self.monitor.gauges())
                text = render_prometheus(
                    self.telemetry.registry.snapshot(),
                    extra_gauges=extra_gauges,
                )
                # Per-shard lifecycle counters, labeled — the scraped
                # form a fleet dashboard can ``sum by (shard)``.
                for name, attr in (
                    ("fleet.evictions.total", "evictions"),
                    ("fleet.readmissions.total", "readmissions"),
                ):
                    text += "".join(
                        line + "\n"
                        for line in render_labeled(
                            name,
                            [
                                (
                                    {"shard": link.shard_id},
                                    getattr(link, attr),
                                )
                                for link in self._links.values()
                            ],
                        )
                    )
                body = text.encode()
                content_type = "text/plain; version=0.0.4"
                status = "200 OK"
            else:
                body = b"not found\n"
                content_type = "text/plain"
                status = "404 Not Found"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # -- manifest ----------------------------------------------------------

    def build_manifest(self) -> dict:
        """Run manifest of this router session (``kind="fleet"``)."""
        from dataclasses import asdict

        return build_manifest(
            self.telemetry,
            kind="fleet",
            parameters=asdict(self.config),
            seeds={},
            extra={"fleet": self.stats()},
        )
