"""Consistent hashing: which shard owns a ``(family, die)`` key.

The router must send every verification of a given die to the same
shard, so that the die's history and audit trail accumulate in one
registry — and it must keep doing so as shards come and go.  A modulo
hash fails the second half (evicting one shard remaps nearly every
key); a consistent-hash ring remaps only the evicted shard's arc.

Classic construction (Karger et al.): each shard projects
``replicas`` virtual nodes onto a 64-bit ring at
``sha256(shard_id + "#" + i)`` positions; a key lands at
``sha256(key)`` and walks clockwise to the first virtual node.
:meth:`HashRing.candidates` returns shards in walk order, so a caller
with a health predicate takes the first healthy one — the next shard
in walk order is exactly where a failed shard's keys re-route.

Everything here is pure and deterministic: the same shard set and the
same key always map identically, across processes and runs, which is
what lets the soak compare a fleet's verdicts byte-for-byte against a
single server's.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Iterable, List, Optional, Tuple

__all__ = ["HashRing", "routing_key"]

#: Virtual nodes per shard.  128 keeps the per-shard load imbalance
#: under ~10% for small fleets while the ring stays tiny (N * 128
#: 8-byte points).
DEFAULT_REPLICAS = 128


def _point(label: str) -> int:
    """A label's 64-bit position on the ring."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def routing_key(family: str, die_id: str) -> str:
    """The canonical routing key of one verification request.

    ``die_id`` is the wire-form hex string (``"0x00000000002A"``); the
    router falls back to a digest of the chip blob when a legacy client
    omitted the field, which still pins identical requests to identical
    shards.
    """
    return f"{family}|{die_id}"


class HashRing:
    """An immutable consistent-hash ring over shard ids."""

    def __init__(
        self,
        shard_ids: Iterable[str],
        *,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_ids: Tuple[str, ...] = tuple(shard_ids)
        if not self.shard_ids:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ValueError("shard ids must be unique")
        self.replicas = replicas
        points: List[Tuple[int, str]] = []
        for shard_id in self.shard_ids:
            for i in range(replicas):
                points.append((_point(f"{shard_id}#{i}"), shard_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def owner(self, key: str) -> str:
        """The shard owning ``key``, health questions aside."""
        return self.candidates(key)[0]

    def candidates(self, key: str) -> List[str]:
        """Every shard in ring-walk order from ``key``'s position.

        The first entry is the owner; each subsequent entry is where
        the key re-routes if everything before it is unhealthy.  All
        shards appear exactly once.
        """
        start = bisect.bisect_right(self._points, _point(key))
        seen: List[str] = []
        n = len(self._owners)
        for i in range(n):
            shard = self._owners[(start + i) % n]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == len(self.shard_ids):
                    break
        return seen

    def route(
        self,
        key: str,
        healthy: Optional[Callable[[str], bool]] = None,
    ) -> Optional[str]:
        """The first healthy shard in walk order, or None if the whole
        fleet is unhealthy."""
        for shard in self.candidates(key):
            if healthy is None or healthy(shard):
                return shard
        return None

    def load_map(self, keys: Iterable[str]) -> dict:
        """``shard_id -> key count`` over a key sample (balance
        diagnostics for ``repro fleet topology``)."""
        counts = {shard: 0 for shard in self.shard_ids}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
