"""repro.fleet — horizontal scale-out of the verification service.

One :class:`FleetRouter` fronts N :class:`~repro.service.server.VerificationServer`
shards, each over its own SQLite registry.  Requests consistent-hash
on ``(family, die)`` (:class:`HashRing`), so every die's verification
history accumulates on exactly one shard; the router health-probes
each shard's ``/healthz`` (the shared
:class:`~repro.service.health.HealthReport` schema) and evicts /
readmits shards as they fail and recover, re-routing around the hole
with a bounded ring walk before answering ``503``.
:func:`reconcile_fleet` stitches the independent per-shard audit
chains back into one tamper-evident ``flashmark.fleet-audit/v1`` view.

Quick start::

    import asyncio, tempfile
    from repro.fleet import (
        FleetRouter, InProcessShardManager, RouterConfig,
    )
    from repro.service import LoadClient, WatermarkRegistry

    async def main():
        registry = WatermarkRegistry("registry.db")
        with tempfile.TemporaryDirectory() as tmp:
            async with InProcessShardManager(registry, 4, tmp) as shards:
                async with FleetRouter(shards) as router:
                    load = LoadClient(router.endpoint, "msp430")
                    print(await load.run_closed_loop(100, concurrency=8))

    asyncio.run(main())

``python -m repro fleet up|soak|topology`` wraps the same objects for
the shell (subprocess shards via :class:`ProcessShardManager`); the
parity/chaos harness lives in :func:`run_fleet_soak`.  See
``docs/service.md`` for the topology, eviction lifecycle and audit
reconcile semantics.
"""

from .hashing import DEFAULT_REPLICAS, HashRing, routing_key
from .reconcile import (
    FLEET_AUDIT_SCHEMA,
    check_fleet_anchors,
    fleet_digest,
    reconcile_fleet,
    write_fleet_audit,
)
from .router import FleetRouter, RouterConfig
from .shards import (
    FleetError,
    InProcessShardManager,
    ProcessShardManager,
    ShardInfo,
    StaticShardSet,
    replicate_families,
    shard_id_for,
)
from .soak import FleetSoakReport, fleet_coverage_plan, run_fleet_soak

__all__ = [
    "DEFAULT_REPLICAS",
    "FLEET_AUDIT_SCHEMA",
    "FleetError",
    "FleetRouter",
    "FleetSoakReport",
    "HashRing",
    "InProcessShardManager",
    "ProcessShardManager",
    "RouterConfig",
    "ShardInfo",
    "StaticShardSet",
    "check_fleet_anchors",
    "fleet_coverage_plan",
    "fleet_digest",
    "reconcile_fleet",
    "replicate_families",
    "routing_key",
    "run_fleet_soak",
    "shard_id_for",
    "write_fleet_audit",
]
