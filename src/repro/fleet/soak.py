"""The fleet soak: parity and chaos for a routed shard topology.

Two modes, one harness:

**Parity** (no fault plan): the same seeded traffic is replayed twice —
through a single :class:`~repro.service.server.VerificationServer`, and
through a :class:`~repro.fleet.router.FleetRouter` over N in-process
shards.  The contract is the one CI gates on: *zero drops* (every
request gets a typed answer) and *verdict identity* (each request's
``(verdict, statistic)`` through the fleet equals the direct server's,
bit for bit — consistent hashing plus deterministic extraction leave
nowhere for a difference to hide).

**Chaos** (a fault plan with the ``fleet.*`` points armed): traffic is
sequential and the router's probe rounds are driven one-per-request
(``auto_probe=False``), so the ``fleet.shard_kill`` seam advances with
verify requests and the ``fleet.shard_rejoin`` seam advances in
lockstep — the same plan meets the same fleet state on every replay.
The invariants extend ``docs/robustness.md`` to the fleet layer:

* **bounded** — the run beats its deadline, no request outlives its
  timeout, and a killed shard costs at most ``retry_shards`` re-route
  attempts before a clean ``503``;
* **surfaced** — every injection reconciles against a typed
  observation (a ``503``, a ``fleet.chaos_kills`` /
  ``fleet.chaos_rejoins`` / ``fleet.probe_aborts`` /
  ``fleet.injected_route_errors`` count, a reconnect);
* **no divergence** — every OK verdict matches ground truth (modulo
  the documented false-reject fallout) *and* matches the direct
  baseline when one was run;
* **recovered** — after the schedule is exhausted the killed shard is
  back and routable (eviction → rejoin → readmission completed);
* **reproducible** — same seed, same injection sequence (asserted by
  running the soak twice; see ``tests/fleet/``).

Either way the run ends with an audit reconcile
(:func:`~repro.fleet.reconcile.reconcile_fleet`): every shard chain
must verify and every shard must serve the same family set.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..faults import FaultInjector, FaultPlan, FaultSpec
from ..telemetry import Telemetry
from .reconcile import reconcile_fleet

__all__ = ["fleet_coverage_plan", "FleetSoakReport", "run_fleet_soak"]

#: The documented false-rejection fallout (a marginal genuine die
#: failing single-read extraction) — not a fault-induced divergence.
_FALSE_REJECT = ("counterfeit", ("authentic",))


def fleet_coverage_plan(seed: int = 0) -> FaultPlan:
    """The canonical fleet-layer schedule (both points, both kinds).

    Occurrence placement assumes the chaos driving mode: request *k*
    advances ``fleet.shard_kill`` to occurrence *k*, and the probe
    round after it advances ``fleet.shard_rejoin`` to occurrence *k*.

    ========  ==========================  ===========================
    request   spec                        surfaces as
    ========  ==========================  ===========================
    2         shard_rejoin error (probe)  counted probe abort
    4         shard_kill drop             owner killed; re-routed
    5..6      (probes see the corpse)     2 failures -> eviction
    7         shard_rejoin drop (probe)   shard restarted
    8..9      (probes see it healthy)     2 successes -> readmission
    11        shard_kill error            injected routing fault, 503
    ========  ==========================  ===========================

    Give the run >= 14 requests so the tail re-proves clean serving
    after recovery.  The seed shapes nothing here (the schedule is
    fully fixed); it is recorded so replays label themselves.
    """
    specs = (
        FaultSpec("fleet.shard_rejoin", "error", at=2),
        FaultSpec("fleet.shard_kill", "drop", at=4),
        FaultSpec("fleet.shard_rejoin", "drop", at=7),
        FaultSpec("fleet.shard_kill", "error", at=11,
                  params={"message": "injected fleet routing fault"}),
    )
    return FaultPlan(specs=specs, seed=seed)


@dataclass
class FleetSoakReport:
    """Everything one fleet soak observed, plus its invariant verdicts."""

    n_shards: int
    requests: int
    deadline_s: float
    chaos: bool
    seed: Optional[int] = None
    plan: Optional[FaultPlan] = None
    #: index -> verdict for OK responses through the fleet.
    verdicts: Dict[int, str] = field(default_factory=dict)
    #: index -> decision statistic through the fleet.
    statistics: Dict[int, float] = field(default_factory=dict)
    #: Direct single-server baseline (empty when not run).
    baseline_verdicts: Dict[int, str] = field(default_factory=dict)
    baseline_statistics: Dict[int, float] = field(default_factory=dict)
    #: error-code histogram over typed error responses.
    errors: Dict[int, int] = field(default_factory=dict)
    #: requests lost without a typed answer (connection-level).
    drops: int = 0
    request_timeouts: int = 0
    #: ``(point, kind, occurrence)`` firing sequence, in order.
    injected: List[Tuple[str, str, int]] = field(default_factory=list)
    #: ``fleet.*`` / ``faults.*`` counter snapshot.
    counters: Dict[str, int] = field(default_factory=dict)
    #: (index, got, expected) verdicts outside the ground truth.
    divergences: List[Tuple[int, str, Tuple[str, ...]]] = field(
        default_factory=list
    )
    #: All shards routable when the soak ended.
    recovered: bool = True
    #: Router topology at soak end.
    topology: dict = field(default_factory=dict)
    #: ``flashmark.fleet-audit/v1`` reconcile of the shard registries.
    fleet_audit: dict = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def completed(self) -> int:
        return len(self.verdicts)

    @property
    def answered(self) -> int:
        return self.completed + sum(self.errors.values())

    def surfaced_evidence(self) -> int:
        """Typed observations available to account for injections."""
        c = self.counters
        return (
            sum(self.errors.values())
            + self.drops
            + c.get("fleet.chaos_kills", 0)
            + c.get("fleet.chaos_rejoins", 0)
            + c.get("fleet.probe_aborts", 0)
            + c.get("fleet.injected_route_errors", 0)
        )

    def invariants(self) -> Dict[str, bool]:
        out = {
            "finished_before_deadline": self.wall_s <= self.deadline_s,
            "no_request_timed_out": self.request_timeouts == 0,
            "zero_drops": (
                self.drops == 0 and self.answered == self.requests
            ),
            "no_verdict_divergence": all(
                (got, expected) == _FALSE_REJECT
                for _, got, expected in self.divergences
            ),
            "audit_chains_ok": bool(
                self.fleet_audit.get("chains_ok")
            ),
            "families_consistent": bool(
                (self.fleet_audit.get("families") or {}).get(
                    "consistent"
                )
            ),
        }
        if self.baseline_verdicts:
            out["verdict_parity"] = all(
                self.baseline_verdicts.get(i) == v
                and self.baseline_statistics.get(i)
                == self.statistics.get(i)
                for i, v in self.verdicts.items()
            )
            if not self.chaos:
                # A clean fleet must answer everything OK, like the
                # direct server does.
                out["verdict_parity"] = (
                    out["verdict_parity"]
                    and set(self.verdicts) == set(self.baseline_verdicts)
                )
        if self.chaos:
            out["every_fault_surfaced"] = (
                len(self.injected) <= self.surfaced_evidence()
            )
            out["fleet_recovered"] = self.recovered
        return out

    @property
    def passed(self) -> bool:
        return all(self.invariants().values())

    def to_dict(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "requests": self.requests,
            "completed": self.completed,
            "answered": self.answered,
            "chaos": self.chaos,
            "seed": self.seed,
            "plan": self.plan.to_dict() if self.plan else None,
            "errors_by_code": {
                str(k): v for k, v in sorted(self.errors.items())
            },
            "drops": self.drops,
            "request_timeouts": self.request_timeouts,
            "injected": [list(t) for t in self.injected],
            "counters": dict(sorted(self.counters.items())),
            "divergences": [
                {"index": i, "got": got, "expected": list(expected)}
                for i, got, expected in self.divergences
            ],
            "baseline_compared": len(self.baseline_verdicts),
            "recovered": self.recovered,
            "wall_s": self.wall_s,
            "deadline_s": self.deadline_s,
            "topology": self.topology,
            "fleet_audit": self.fleet_audit,
            "invariants": self.invariants(),
            "passed": self.passed,
        }


def run_fleet_soak(
    registry,
    family: str,
    items,
    *,
    n_shards: int = 4,
    plan: Optional[FaultPlan] = None,
    baseline: bool = True,
    concurrency: int = 8,
    workers: int = 1,
    telemetry: Optional[Telemetry] = None,
    deadline_s: float = 300.0,
    request_timeout_s: float = 30.0,
    directory: Optional[Union[str, Path]] = None,
) -> FleetSoakReport:
    """Replay ``items`` through a routed fleet (and optionally through
    one direct server for the parity baseline).

    ``registry`` is the source of published families; each shard gets
    its own replicated registry under ``directory`` (a temp dir when
    None).  With ``plan`` given the run switches to chaos mode:
    sequential traffic, request-driven probe rounds, the plan armed
    around the whole fleet leg.
    """
    tel = telemetry if telemetry is not None else Telemetry()
    chaos_mode = plan is not None
    items = list(items)
    report = FleetSoakReport(
        n_shards=n_shards,
        requests=len(items),
        deadline_s=deadline_s,
        chaos=chaos_mode,
        seed=plan.seed if plan is not None else None,
        plan=plan,
    )

    async def _replay_direct() -> None:
        from ..service import ServerConfig, VerificationServer

        server = VerificationServer(
            registry, config=ServerConfig(workers=workers)
        )
        async with server:
            await _pump(
                server.endpoint,
                report.baseline_verdicts,
                report.baseline_statistics,
                None,
                None,
            )

    async def _pump(
        endpoint, verdicts, statistics, errors, probe
    ) -> None:
        """Drive ``items`` against ``endpoint``; sequential when a
        probe hook is given (chaos), else ``concurrency`` workers."""
        from ..service import ServiceError, VerificationClient, protocol

        queue: "asyncio.Queue" = asyncio.Queue()
        for item in items:
            queue.put_nowait(item)

        async def _worker() -> None:
            client = await VerificationClient.connect(endpoint)
            try:
                while True:
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    req = protocol.verify_request(
                        item.chip,
                        family,
                        request_id=item.index,
                        client="fleet-soak",
                    )
                    for attempt in (1, 2):
                        try:
                            result = await asyncio.wait_for(
                                client.call(req),
                                timeout=request_timeout_s,
                            )
                        except ServiceError as exc:
                            if errors is None:
                                raise
                            errors[exc.code] = (
                                errors.get(exc.code, 0) + 1
                            )
                            break
                        except asyncio.TimeoutError:
                            report.request_timeouts += 1
                            break
                        except (ConnectionError, OSError):
                            # One reconnect, one resend; past that the
                            # request counts as dropped.
                            await client.close()
                            if attempt == 2:
                                report.drops += 1
                                break
                            client = (
                                await VerificationClient.connect(
                                    endpoint
                                )
                            )
                            continue
                        else:
                            verdict = result["verdict"]
                            verdicts[item.index] = verdict
                            statistics[item.index] = result[
                                "statistic"
                            ]
                            if (
                                verdict
                                not in item.expected_verdicts
                            ):
                                report.divergences.append(
                                    (
                                        item.index,
                                        verdict,
                                        tuple(
                                            item.expected_verdicts
                                        ),
                                    )
                                )
                            break
                    if probe is not None:
                        await probe()
            finally:
                await client.close()

        n_workers = 1 if probe is not None else max(1, concurrency)
        await asyncio.gather(*(_worker() for _ in range(n_workers)))

    async def _soak() -> None:
        from .router import FleetRouter, RouterConfig
        from .shards import InProcessShardManager

        loop = asyncio.get_running_loop()
        t0 = loop.time()
        if baseline:
            await _replay_direct()
        with tempfile.TemporaryDirectory(
            prefix="repro-fleet-"
        ) if directory is None else _noop_cm(directory) as workdir:
            manager = InProcessShardManager(
                registry,
                n_shards,
                workdir,
                workers=workers,
            )
            async with manager:
                router = FleetRouter(
                    manager,
                    config=RouterConfig(
                        auto_probe=not chaos_mode,
                        probe_interval_s=0.2,
                        monitoring=False,
                    ),
                    telemetry=tel,
                )
                async with router:
                    if chaos_mode:
                        with FaultInjector(
                            plan, telemetry=tel
                        ) as chaos:
                            await _pump(
                                router.endpoint,
                                report.verdicts,
                                report.statistics,
                                report.errors,
                                router.probe_once,
                            )
                            report.injected = chaos.sequence()
                        # Post-schedule recovery: keep probing until
                        # eviction/readmission settles (an operator's
                        # `rejoin` for anything the schedule left
                        # dead would go here; the coverage plan never
                        # does).
                        settle_until = loop.time() + min(
                            30.0, deadline_s
                        )
                        while loop.time() < settle_until:
                            for shard_id in manager.shard_ids():
                                if not manager.alive(shard_id):
                                    await manager.rejoin(shard_id)
                            await router.probe_once()
                            if all(
                                router.routable(s)
                                for s in manager.shard_ids()
                            ):
                                break
                            await asyncio.sleep(0.05)
                        report.recovered = all(
                            router.routable(s)
                            for s in manager.shard_ids()
                        )
                    else:
                        await _pump(
                            router.endpoint,
                            report.verdicts,
                            report.statistics,
                            report.errors,
                            None,
                        )
                        report.recovered = all(
                            router.routable(s)
                            for s in manager.shard_ids()
                        )
                    report.topology = router.topology()
                paths = {
                    info.shard_id: info.registry_path
                    for info in manager.infos()
                }
            # Registries are closed now; reconcile re-opens the files.
            report.fleet_audit = reconcile_fleet(
                paths, timeline_limit=200
            )
        report.wall_s = loop.time() - t0
        snapshot = tel.registry.snapshot()["counters"]
        report.counters = {
            name: int(value)
            for name, value in snapshot.items()
            if name.startswith(("fleet.", "faults."))
        }

    asyncio.run(_soak())
    return report


class _noop_cm:
    """Context manager handing back a caller-owned directory."""

    def __init__(self, path):
        self.path = Path(path)

    def __enter__(self):
        self.path.mkdir(parents=True, exist_ok=True)
        return str(self.path)

    def __exit__(self, exc_type, exc, tb):
        return None
