"""ChipPopulation: the batched physics state of many dies at once.

Counterfeit screening is a population decision — the integrator
verifies a whole shipment, not one chip — yet the die model simulates
one `(n_cells,)` array per chip.  :class:`ChipPopulation` stacks the
watermark segment of N dies into ``(n_dies, n_cells)`` matrices (static
variation, threshold voltages, wear counters) and replays the
extraction sequence — full erase, program, partial erase, majority read
— through the 2-D kernels of :mod:`repro.phys.kernels`, so one call
verifies hundreds of dies in a handful of numpy dispatches.

Equivalence and RNG-stream ordering contract
--------------------------------------------
A population readout is **bit-identical** to running the serial
controller sequence (:func:`repro.core.extract.extract_segment`) on
each die alone.  Two rules make that exact:

1. *Per-die generators.*  Every die keeps its own
   ``numpy.random.Generator`` (cloned from the chip's, so the input
   chip's stream is never advanced).  Noise for die *i* comes only from
   generator *i*; stacking therefore cannot leak draws across dies.
2. *Serial draw order per die.*  Within each die's stream the draws
   happen in exactly the controller's operation order, with the same
   distribution calls and shapes: full-erase tau jitter
   ``lognormal(0, sigma, n)``, program noise ``normal(0, sigma, n)``,
   partial-erase tau jitter ``lognormal(0, sigma, n)``, then read noise
   ``normal(0, sigma, (n_reads, n))``.  A draw is skipped exactly when
   the die model skips it (the corresponding sigma is zero).

Dies are batchable together only when they share the same physics
(:class:`~repro.phys.constants.PhysicalParams`), segment geometry and
timing profile — :meth:`batch_key` is the grouping key the engine uses;
mixed shipments (e.g. rebranded parts with inferior oxide) simply split
into one population per physics group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..phys.kernels import (
    population_erase_transient,
    population_majority_read,
    population_program_targets,
    population_tau_us,
)
from .mcu import Microcontroller
from .tracing import OperationTrace

__all__ = ["ChipPopulation", "PopulationReadout"]


@dataclass(frozen=True)
class PopulationReadout:
    """Raw result of one batched extraction pass."""

    #: ``(n_dies, n_cells)`` uint8 read-back (1 = sensed erased).
    raw_bits: np.ndarray
    #: Device time one die's extraction charges [us] (identical for all
    #: dies of a population: same timing profile, same geometry).
    duration_us: float


def _clone_rng(rng: np.random.Generator) -> np.random.Generator:
    """An independent generator positioned at ``rng``'s current state.

    The new bit generator is seeded with ``0`` only to skip the OS
    entropy pull a default-constructed one performs; its state is
    overwritten immediately after, so the clone replays exactly the
    stream ``rng`` would produce.
    """
    clone = np.random.Generator(type(rng.bit_generator)(0))
    clone.bit_generator.state = rng.bit_generator.state
    return clone


class ChipPopulation:
    """Stacked per-segment physics state of N same-family dies.

    Build with :meth:`from_chips`; the input chips are **never
    mutated** — all evolving state (threshold voltages, wear counters,
    RNG streams) is copied, which is also why building a population is
    far cheaper than the per-die path's ``deepcopy`` of whole
    microcontrollers.
    """

    def __init__(
        self,
        *,
        params,
        timing,
        words_per_segment: int,
        vth: np.ndarray,
        tau0_us: np.ndarray,
        susceptibility: np.ndarray,
        vth_programmed: np.ndarray,
        vth_erased: np.ndarray,
        program_cycles: np.ndarray,
        erase_only_cycles: np.ndarray,
        programmed_since_erase: np.ndarray,
        temperature_c: np.ndarray,
        rngs: List[np.random.Generator],
    ):
        self.params = params
        self.timing = timing
        self.words_per_segment = words_per_segment
        self.vth = vth
        self.tau0_us = tau0_us
        self.susceptibility = susceptibility
        self.vth_programmed = vth_programmed
        self.vth_erased = vth_erased
        self.program_cycles = program_cycles
        self.erase_only_cycles = erase_only_cycles
        self.programmed_since_erase = programmed_since_erase
        self.temperature_c = temperature_c
        self.rngs = rngs

    # -- construction -----------------------------------------------------

    @staticmethod
    def batch_key(chip: Microcontroller, segment: int) -> Tuple:
        """Hashable key; dies with equal keys can share one population.

        Raises the same addressing errors the serial path would when
        ``segment`` does not exist on the chip — callers route such
        dies to the per-die path so failures keep identical semantics.
        """
        sl = chip.geometry.segment_bit_slice(segment)
        return (
            chip.params,
            chip.flash.timing,
            sl.stop - sl.start,
            chip.geometry.words_per_segment,
        )

    @classmethod
    def from_chips(
        cls, chips: Sequence[Microcontroller], segment: int
    ) -> "ChipPopulation":
        """Stack one flash segment of every chip into a population.

        Every chip must share the same physics parameters, segment
        geometry and timing profile (see :meth:`batch_key`).
        """
        if not chips:
            raise ValueError("cannot build a population from zero chips")
        head = chips[0]
        key = cls.batch_key(head, segment)
        for chip in chips[1:]:
            if cls.batch_key(chip, segment) != key:
                raise ValueError(
                    "population chips must share physics parameters, "
                    "segment geometry and timing; group by batch_key() "
                    "first"
                )
        slices = [c.geometry.segment_bit_slice(segment) for c in chips]
        return cls(
            params=head.params,
            timing=head.flash.timing,
            words_per_segment=head.geometry.words_per_segment,
            vth=np.stack(
                [c.array.vth[sl] for c, sl in zip(chips, slices)]
            ),
            tau0_us=np.stack(
                [c.array.static.tau0_us[sl] for c, sl in zip(chips, slices)]
            ),
            susceptibility=np.stack(
                [
                    c.array.static.wear_susceptibility[sl]
                    for c, sl in zip(chips, slices)
                ]
            ),
            vth_programmed=np.stack(
                [
                    c.array.static.vth_programmed[sl]
                    for c, sl in zip(chips, slices)
                ]
            ),
            vth_erased=np.stack(
                [
                    c.array.static.vth_erased[sl]
                    for c, sl in zip(chips, slices)
                ]
            ),
            program_cycles=np.stack(
                [c.array.program_cycles[sl] for c, sl in zip(chips, slices)]
            ),
            erase_only_cycles=np.stack(
                [
                    c.array.erase_only_cycles[sl]
                    for c, sl in zip(chips, slices)
                ]
            ),
            programmed_since_erase=np.stack(
                [
                    c.array.programmed_since_erase[sl]
                    for c, sl in zip(chips, slices)
                ]
            ),
            temperature_c=np.array(
                [c.array.temperature_c for c in chips], dtype=np.float64
            ),
            rngs=[_clone_rng(c.rng) for c in chips],
        )

    def clone(self) -> "ChipPopulation":
        """An independent copy (evolving state and RNG streams deep).

        Static arrays are copied too — a population is only the segment
        slice of each die, so the copy is cheap; extraction on a clone
        leaves the original reusable (idempotent retries).
        """
        return ChipPopulation(
            params=self.params,
            timing=self.timing,
            words_per_segment=self.words_per_segment,
            vth=self.vth.copy(),
            tau0_us=self.tau0_us.copy(),
            susceptibility=self.susceptibility.copy(),
            vth_programmed=self.vth_programmed.copy(),
            vth_erased=self.vth_erased.copy(),
            program_cycles=self.program_cycles.copy(),
            erase_only_cycles=self.erase_only_cycles.copy(),
            programmed_since_erase=self.programmed_since_erase.copy(),
            temperature_c=self.temperature_c.copy(),
            rngs=[_clone_rng(rng) for rng in self.rngs],
        )

    @property
    def n_dies(self) -> int:
        return self.vth.shape[0]

    @property
    def n_cells(self) -> int:
        return self.vth.shape[1]

    # -- primitive operations ---------------------------------------------

    def current_tau_us(self) -> np.ndarray:
        """Wear- and temperature-adjusted erase time constants, 2-D."""
        return population_tau_us(
            self.tau0_us,
            self.program_cycles,
            self.erase_only_cycles,
            self.susceptibility,
            self.temperature_c,
            self.params,
        )

    def erase_pulse(self, t_us: float) -> None:
        """Apply the erase voltage to every cell of every die for ``t_us``."""
        jitter_sigma = self.params.noise.erase_jitter_sigma
        tau = self.current_tau_us()
        if jitter_sigma > 0.0:
            for i, rng in enumerate(self.rngs):
                tau[i] = tau[i] * rng.lognormal(
                    0.0, jitter_sigma, size=self.n_cells
                )
        self.vth = population_erase_transient(
            self.vth, t_us, tau, self.vth_erased, self.params.cell
        )
        unprogrammed = ~self.programmed_since_erase
        self.erase_only_cycles += unprogrammed
        self.programmed_since_erase[:] = False

    def program_all(self) -> None:
        """Program every cell of every die (the all-zeros pattern)."""
        self.program_cycles += 1.0
        sigma = self.params.noise.program_sigma_v
        noise = None
        if sigma > 0.0:
            noise = np.stack(
                [
                    rng.normal(0.0, sigma, size=self.n_cells)
                    for rng in self.rngs
                ]
            )
        self.vth = population_program_targets(
            self.vth_programmed,
            self.program_cycles,
            self.erase_only_cycles,
            self.susceptibility,
            noise,
            self.params,
        )
        self.programmed_since_erase[:] = True

    def read_bits(self, n_reads: int = 1) -> np.ndarray:
        """Sense every cell; ``(n_dies, n_cells)`` uint8 (1 = erased)."""
        if n_reads < 1 or n_reads % 2 == 0:
            raise ValueError("n_reads must be a positive odd number")
        sigma = self.params.noise.read_sigma_v
        noise = None
        if sigma > 0.0:
            noise = np.stack(
                [
                    rng.normal(0.0, sigma, size=(n_reads, self.n_cells))
                    for rng in self.rngs
                ]
            )
        bits = population_majority_read(
            self.vth, noise, self.params.cell, n_reads=n_reads
        )
        disturb = self.params.noise.read_disturb_v_per_read
        if disturb > 0.0:
            self.vth = np.minimum(
                self.vth + disturb * n_reads, self.vth_programmed
            )
        return bits

    # -- the extraction fast path -----------------------------------------

    def extract_readout(
        self, t_pew_us: float, n_reads: int = 1
    ) -> PopulationReadout:
        """One ExtractFlashmark round (Fig. 8) over the whole population.

        Full erase, program all, partial erase for ``t_pew_us``, then
        majority read — the exact controller sequence of
        :func:`repro.core.extract.extract_segment`, with every step one
        2-D kernel dispatch.
        """
        if t_pew_us < 0:
            raise ValueError("t_pew_us must be non-negative")
        self.erase_pulse(self.timing.t_erase_us)
        self.program_all()
        self.erase_pulse(t_pew_us)
        raw = self.read_bits(n_reads=n_reads)
        return PopulationReadout(
            raw_bits=raw,
            duration_us=self.extraction_duration_us(t_pew_us, n_reads),
        )

    def extraction_duration_us(
        self, t_pew_us: float, n_reads: int
    ) -> float:
        """Device time one die's extraction charges [us].

        Accumulated in the same order — and with the same intermediate
        expressions — as the serial controller's four ``trace.charge``
        calls, so the value is bit-identical to the per-die device
        clock.
        """
        timing = self.timing
        total = 0.0
        total += timing.t_cmd_overhead_us + timing.t_erase_us
        total += timing.t_cmd_overhead_us + timing.segment_program_time_us(
            self.words_per_segment, block=True
        )
        total += (
            timing.t_cmd_overhead_us + t_pew_us + timing.t_abort_overhead_us
        )
        total += timing.segment_read_time_us(
            self.words_per_segment, n_reads=n_reads
        )
        return total

    def charge_extraction(
        self,
        trace: OperationTrace,
        t_pew_us: float,
        n_reads: int,
        address: int = 0,
    ) -> None:
        """Charge one die's extraction onto ``trace``.

        Same operation names, durations and energy the serial
        :class:`~repro.device.controller.FlashController` charges, so
        merged manifests reconcile device clocks identically on either
        path.  Pass the die's segment base as ``address`` to keep even
        ``keep_events`` traces identical.
        """
        timing = self.timing
        n_words = self.words_per_segment
        trace.charge(
            "erase_segment",
            timing.t_cmd_overhead_us + timing.t_erase_us,
            address=address,
            energy_uj=timing.e_erase_uj,
        )
        trace.charge(
            "program_segment",
            timing.t_cmd_overhead_us
            + timing.segment_program_time_us(n_words, block=True),
            address=address,
            energy_uj=n_words * timing.e_program_word_uj,
        )
        trace.charge(
            "partial_erase",
            timing.t_cmd_overhead_us + t_pew_us + timing.t_abort_overhead_us,
            address=address,
            energy_uj=timing.e_erase_uj
            * min(1.0, t_pew_us / timing.t_erase_us),
        )
        trace.charge(
            "read_segment",
            timing.segment_read_time_us(n_words, n_reads=n_reads),
            address=address,
            energy_uj=n_reads * n_words * timing.e_read_word_uj,
        )
