"""Multi-level cell (MLC) flash variant.

Section II: "A flash memory cell typically keeps one bit of information
(single-level cells or SLCs), though multi-level cells (MLCs) are used
in high-density flash memories that can store multiple bits in a single
cell."  This module adds a 2-bit MLC device on the same cell physics:
four threshold-voltage levels, Gray-coded so a single-level misread
corrupts only one of the two bits, three read references.

Flashmark ports to MLC naturally: imprinting stresses cells exactly as
on SLC (full program/erase cycles), and extraction partial-erases from
the *highest* level, so the level-3 transient crosses all three read
references in wear-dependent order.  The included
:meth:`MlcNorFlash.extract_flashmark_bits` uses the lowest reference —
the last one a discharging cell crosses — which gives the widest timing
contrast.

Like the NAND variant, geometry is scaled down to keep simulator state
modest; per-cell physics is identical to the calibrated SLC model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..phys.constants import PhysicalParams
from ..phys.erase import apply_erase_transient
from ..phys.wear import (
    effective_cycles,
    programmed_level_shift,
    tau_wear_multiplier,
)
from .array import NorFlashArray
from .errors import FlashCommandError
from .geometry import FlashGeometry
from .timing import MSP430F5438_TIMING, TimingProfile
from .tracing import OperationTrace

__all__ = ["MlcNorFlash", "MLC_GEOMETRY", "MLC_LEVELS_V", "MLC_READ_REFS_V"]

#: Small MLC array: cells are addressed directly (one "byte" of the
#: underlying geometry = 8 cells = 16 stored bits).
MLC_GEOMETRY = FlashGeometry(
    bits_per_word=8, segment_bytes=512, segments_per_bank=8, n_banks=1
)

#: Target threshold voltage per level, level 0 = fully erased [V].
MLC_LEVELS_V: Tuple[float, ...] = (1.5, 3.7, 4.5, 5.2)
#: Read references separating the four levels [V].
MLC_READ_REFS_V: Tuple[float, ...] = (3.2, 4.1, 4.85)

#: Gray code: level index -> (lsb, msb); adjacent levels differ by 1 bit.
_GRAY = ((1, 1), (1, 0), (0, 0), (0, 1))


@dataclass(frozen=True)
class _LevelRead:
    """Per-cell level decision plus decoded bit pair."""

    levels: np.ndarray
    lsb: np.ndarray
    msb: np.ndarray


class MlcNorFlash:
    """A 2-bit-per-cell NOR flash on the calibrated cell physics.

    The device reuses :class:`NorFlashArray` for wear accounting and the
    erased floor, but drives threshold voltages to one of four levels.
    """

    def __init__(
        self,
        seed: int = 0,
        params: Optional[PhysicalParams] = None,
        geometry: FlashGeometry = MLC_GEOMETRY,
        timing: TimingProfile = MSP430F5438_TIMING,
    ):
        self.rng = np.random.default_rng(seed)
        self.params = params if params is not None else PhysicalParams()
        self.trace = OperationTrace()
        self.array = NorFlashArray(geometry, self.params, self.rng)
        self.timing = timing

    @property
    def geometry(self) -> FlashGeometry:
        return self.array.geometry

    @property
    def cells_per_segment(self) -> int:
        return self.geometry.bits_per_segment

    # -- operations ---------------------------------------------------

    def erase_segment(self, segment: int) -> None:
        """Full erase: every cell returns to level 0."""
        sl = self.geometry.segment_bit_slice(segment)
        self.array.erase_pulse(sl, self.timing.t_erase_us)
        self.trace.charge(
            "mlc_erase",
            self.timing.t_cmd_overhead_us + self.timing.t_erase_us,
            energy_uj=self.timing.e_erase_uj,
        )

    def program_levels(self, segment: int, levels: np.ndarray) -> None:
        """Program each cell of the segment to a level (0..3).

        Level 0 leaves the cell untouched (programming only raises
        thresholds); levels 1..3 use incremental-step placement with the
        same wear drift and program noise as the SLC model.
        """
        levels = np.asarray(levels)
        n = self.cells_per_segment
        if levels.shape != (n,):
            raise FlashCommandError(
                f"expected {n} levels, got shape {levels.shape}"
            )
        if levels.min() < 0 or levels.max() > 3:
            raise FlashCommandError("MLC levels must be 0..3")
        sl = self.geometry.segment_bit_slice(segment)
        array = self.array
        idx_all = np.arange(sl.start, sl.stop)
        target = np.asarray(MLC_LEVELS_V)[levels]
        charged = levels > 0
        idx = idx_all[charged]
        if idx.size:
            array.program_cycles[idx] += 1.0
            n_eff = effective_cycles(
                array.program_cycles[idx],
                array.erase_only_cycles[idx],
                self.params.wear,
            )
            shift = programmed_level_shift(
                n_eff,
                self.params.wear,
                array.static.wear_susceptibility[idx],
            )
            sigma = self.params.noise.program_sigma_v
            noise = (
                self.rng.normal(0.0, sigma, size=idx.size)
                if sigma > 0
                else 0.0
            )
            placed = target[charged] + shift + noise
            array.vth[idx] = np.maximum(array.vth[idx], placed)
            array.programmed_since_erase[idx] = True
        # MLC programs at ~half the SLC speed per cell (program-verify
        # staircase); coarse but representative.
        self.trace.charge(
            "mlc_program",
            self.timing.t_cmd_overhead_us
            + 2.0
            * self.timing.segment_program_time_us(
                self.geometry.words_per_segment
            ),
            energy_uj=self.geometry.words_per_segment
            * self.timing.e_program_word_uj
            * 2.0,
        )

    def partial_erase(self, segment: int, t_pe_us: float) -> None:
        """Initiate an erase and abort after ``t_pe_us`` (EMEX-style)."""
        if t_pe_us < 0:
            raise ValueError("partial erase time must be non-negative")
        sl = self.geometry.segment_bit_slice(segment)
        self.array.erase_pulse(sl, t_pe_us)
        self.trace.charge(
            "mlc_partial_erase",
            self.timing.t_cmd_overhead_us
            + t_pe_us
            + self.timing.t_abort_overhead_us,
        )

    def read_levels(self, segment: int) -> _LevelRead:
        """Sense each cell against the three references; Gray-decode."""
        sl = self.geometry.segment_bit_slice(segment)
        sigma = self.params.noise.read_sigma_v
        vth = self.array.vth[sl]
        sensed = (
            vth + self.rng.normal(0.0, sigma, size=vth.size)
            if sigma > 0
            else vth
        )
        levels = np.zeros(vth.size, dtype=np.int64)
        for ref in MLC_READ_REFS_V:
            levels += sensed >= ref
        gray = np.asarray(_GRAY, dtype=np.uint8)
        lsb = gray[levels, 0]
        msb = gray[levels, 1]
        self.trace.charge(
            "mlc_read",
            3 * self.timing.segment_read_time_us(
                self.geometry.words_per_segment
            ),
        )
        return _LevelRead(levels=levels, lsb=lsb, msb=msb)

    # -- Flashmark on MLC ------------------------------------------------

    def imprint_flashmark(
        self, segment: int, pattern_bits: np.ndarray, n_pe: int
    ) -> None:
        """Imprint a watermark by cycling pattern-0 cells to level 3.

        Uses the exact bulk fast path of the SLC model — the wear physics
        does not care how many levels the cell stores.
        """
        pattern_bits = np.asarray(pattern_bits, dtype=np.uint8)
        sl = self.geometry.segment_bit_slice(segment)
        self.array.bulk_stress(sl, pattern_bits, n_pe)
        per_cycle = (
            self.timing.t_erase_us
            + 2.0
            * self.timing.segment_program_time_us(
                self.geometry.words_per_segment
            )
        )
        self.trace.charge(
            "mlc_imprint", n_pe * per_cycle, count=n_pe,
            energy_uj=n_pe * self.timing.e_erase_uj,
        )

    def extract_flashmark_bits(
        self, segment: int, t_pew_us: float
    ) -> np.ndarray:
        """One extraction round; returns per-cell bits (1 = good/fresh).

        Erase, program every cell to the top level, partial erase, and
        sense against the *lowest* reference — the last one a
        discharging cell crosses, i.e. the largest wear contrast.
        """
        self.erase_segment(segment)
        self.program_levels(
            segment, np.full(self.cells_per_segment, 3, dtype=np.int64)
        )
        self.partial_erase(segment, t_pew_us)
        read = self.read_levels(segment)
        return (read.levels == 0).astype(np.uint8)
