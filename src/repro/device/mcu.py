"""Microcontroller wrapper: a whole simulated chip with embedded flash.

A :class:`Microcontroller` bundles everything one physical device carries:
its flash geometry, its datasheet timing, one die's worth of
process-varied cells, the behavioural flash controller and the
register-level programming model.  Chips are identified by a die id and
are exactly reproducible from ``(model, seed)``.

The :func:`make_mcu` factory knows the two device models used in the
paper's evaluation (MSP430F5438 and MSP430F5529).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..phys.constants import PhysicalParams
from .array import NorFlashArray
from .controller import FlashController
from .geometry import (
    MSP430F5438_GEOMETRY,
    MSP430F5529_GEOMETRY,
    FlashGeometry,
)
from .registers import FlashRegisterFile
from .timing import MSP430F5438_TIMING, TimingProfile
from .tracing import OperationTrace

__all__ = ["Microcontroller", "McuFactory", "make_mcu", "SUPPORTED_MODELS"]

#: model name -> (geometry, timing)
SUPPORTED_MODELS: Dict[str, Tuple[FlashGeometry, TimingProfile]] = {
    "MSP430F5438": (MSP430F5438_GEOMETRY, MSP430F5438_TIMING),
    "MSP430F5529": (MSP430F5529_GEOMETRY, MSP430F5438_TIMING),
}


class Microcontroller:
    """One simulated microcontroller with an embedded NOR flash module.

    Attributes
    ----------
    model:
        Device model name (e.g. ``"MSP430F5438"``).
    die_id:
        Pseudo-unique die identifier derived from the seed (purely
        informational; Flashmark deliberately does not rely on it).
    flash:
        The :class:`FlashController` — the host-side driver interface.
    regs:
        The :class:`FlashRegisterFile` — the bare-metal register interface.
    trace:
        Shared operation trace / device clock.
    """

    def __init__(
        self,
        model: str,
        geometry: FlashGeometry,
        timing: TimingProfile,
        params: PhysicalParams,
        seed: int,
        keep_trace_events: bool = False,
    ):
        self.model = model
        self.seed = seed
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.die_id = int(self.rng.integers(0, 2**48))
        self.trace = OperationTrace(keep_events=keep_trace_events)
        self.array = NorFlashArray(geometry, params, self.rng)
        self.flash = FlashController(self.array, timing, self.trace)
        self.regs = FlashRegisterFile(self.flash)

    @property
    def geometry(self) -> FlashGeometry:
        return self.array.geometry

    @property
    def temperature_c(self) -> float:
        """Junction temperature [deg C] the flash module operates at."""
        return self.array.temperature_c

    def set_temperature(self, celsius: float) -> None:
        """Move the die to a new junction temperature.

        Erase transients run faster when hot; the family's published
        partial-erase window assumes the calibration temperature, so an
        integrator verifying at a very different temperature must
        re-derive or guard-band the window (see the temperature
        benchmark).
        """
        if not -55.0 <= celsius <= 150.0:
            raise ValueError(
                "junction temperature must be within -55..150 deg C"
            )
        self.array.temperature_c = float(celsius)

    def fork(self, seed: Optional[int] = None) -> "Microcontroller":
        """Deep-copy this chip's current state into a new object.

        The fork shares nothing mutable with the original; its future
        noise stream is decorrelated (or seeded with ``seed``).  Useful
        for what-if studies: imprint once, extract many ways.
        """
        clone = object.__new__(Microcontroller)
        clone.model = self.model
        clone.seed = self.seed
        clone.params = self.params
        clone.die_id = self.die_id
        rng = np.random.default_rng(
            seed if seed is not None else self.rng.integers(0, 2**63)
        )
        clone.rng = rng
        clone.trace = OperationTrace(keep_events=self.trace.keep_events)
        clone.trace.now_us = self.trace.now_us
        clone.array = self.array.copy(rng=rng)
        clone.flash = FlashController(
            clone.array, self.flash.timing, clone.trace
        )
        clone.flash.locked = self.flash.locked
        clone.regs = FlashRegisterFile(clone.flash)
        return clone

    def __repr__(self) -> str:
        total = self.geometry.total_bytes
        size = (
            f"{total // 1024} KiB" if total >= 1024 else f"{total} B"
        )
        return (
            f"Microcontroller(model={self.model!r}, "
            f"die_id=0x{self.die_id:012X}, flash={size})"
        )


@dataclass(frozen=True)
class McuFactory:
    """A picklable ``seed -> Microcontroller`` chip factory.

    Workflows that fan chip builds across worker processes (family
    calibration, wear-reference building) need a factory that survives
    pickling — a lambda closing over ``make_mcu`` does not.  This
    dataclass captures the same intent declaratively::

        factory = McuFactory(model="MSP430F5438", n_segments=1)
        chip = factory(seed=7)     # == make_mcu(model=..., seed=7, ...)

    Two factories with equal fields produce physically identical chips
    for the same seed, on any process.
    """

    model: str = "MSP430F5438"
    params: Optional[PhysicalParams] = None
    n_segments: Optional[int] = 1
    keep_trace_events: bool = False

    def __call__(self, seed: int) -> Microcontroller:
        return make_mcu(
            model=self.model,
            seed=seed,
            params=self.params,
            keep_trace_events=self.keep_trace_events,
            n_segments=self.n_segments,
        )


def make_mcu(
    model: str = "MSP430F5438",
    seed: int = 0,
    params: Optional[PhysicalParams] = None,
    keep_trace_events: bool = False,
    n_segments: Optional[int] = None,
) -> Microcontroller:
    """Build a simulated microcontroller of a supported model.

    Parameters
    ----------
    model:
        One of :data:`SUPPORTED_MODELS` (``"MSP430F5438"`` or
        ``"MSP430F5529"``).
    seed:
        Die seed; two calls with the same (model, seed, params) produce
        physically identical chips.
    params:
        Physical parameter overrides (defaults to the calibrated set).
    keep_trace_events:
        Record a per-operation event log (slow; debugging only).
    n_segments:
        Simulate only the first ``n_segments`` flash segments instead of
        the whole array.  A full die carries ~2 M cells (~120 MB of
        simulator state); experiments that touch one watermark segment
        should pass a small value (Flashmark itself needs exactly one).
        Per-cell behaviour is unaffected — segments are physically
        independent.
    """
    if model not in SUPPORTED_MODELS:
        raise ValueError(
            f"unknown model {model!r}; supported: {sorted(SUPPORTED_MODELS)}"
        )
    geometry, timing = SUPPORTED_MODELS[model]
    if n_segments is not None:
        if not 1 <= n_segments <= geometry.n_segments:
            raise ValueError(
                f"n_segments must be in 1..{geometry.n_segments}, "
                f"got {n_segments}"
            )
        geometry = FlashGeometry(
            bits_per_word=geometry.bits_per_word,
            segment_bytes=geometry.segment_bytes,
            segments_per_bank=n_segments,
            n_banks=1,
        )
    return Microcontroller(
        model=model,
        geometry=geometry,
        timing=timing,
        params=params if params is not None else PhysicalParams(),
        seed=seed,
        keep_trace_events=keep_trace_events,
    )
