"""Operation tracing: a device clock plus an optional event log.

Every controller operation charges its duration against a monotone
device clock.  Experiments read the clock to report imprint/extract
times (the paper's Section V cost table) without actually waiting out
the tens of minutes a 40 K-cycle imprint takes on silicon.

The event log is off by default — characterisation sweeps issue millions
of operations — and can be enabled for debugging or example scripts.
With ``keep_events`` on, ``max_events`` bounds the log so a forgotten
flag cannot grow unbounded during a million-op sweep; operations past
the cap are still fully accounted (clock, energy, counts) and tallied in
``dropped_events``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "OperationTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One logged flash operation."""

    #: Operation name, e.g. ``"segment_erase"`` or ``"program_word"``.
    op: str
    #: Byte address the operation targeted (segment base for erases).
    address: int
    #: Device-clock timestamp when the operation started [us].
    start_us: float
    #: Operation duration [us].
    duration_us: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class OperationTrace:
    """Accumulates time, energy and (optionally) per-operation events."""

    #: Keep a per-operation event list (costly for long experiments).
    keep_events: bool = False
    #: Device clock [us].
    now_us: float = 0.0
    #: Total energy charged [uJ].
    energy_uj: float = 0.0
    #: Count of operations by name.
    op_counts: Dict[str, int] = field(default_factory=dict)
    #: Cap on the event log (None = unbounded); ignored unless
    #: ``keep_events`` is set.
    max_events: Optional[int] = None
    #: Events not logged because the ``max_events`` cap was reached.
    dropped_events: int = 0
    _events: List[TraceEvent] = field(default_factory=list)

    def charge(
        self,
        op: str,
        duration_us: float,
        address: int = 0,
        energy_uj: float = 0.0,
        count: int = 1,
    ) -> None:
        """Advance the clock by ``duration_us`` and account the operation.

        ``count`` lets bulk fast paths account many identical operations
        (e.g. 40 000 erase/program cycles) with one call.
        """
        if duration_us < 0:
            raise ValueError("operation duration must be non-negative")
        if self.keep_events:
            if (
                self.max_events is not None
                and len(self._events) >= self.max_events
            ):
                self.dropped_events += 1
            else:
                self._events.append(
                    TraceEvent(op, address, self.now_us, duration_us)
                )
        self.now_us += duration_us
        self.energy_uj += energy_uj
        self.op_counts[op] = self.op_counts.get(op, 0) + count

    @property
    def now_ms(self) -> float:
        return self.now_us / 1000.0

    @property
    def now_s(self) -> float:
        return self.now_us / 1_000_000.0

    def elapsed_since(self, mark_us: float) -> float:
        """Microseconds elapsed since a previously captured ``now_us``."""
        return self.now_us - mark_us

    def events(self) -> Iterator[TraceEvent]:
        """Iterate logged events (empty unless ``keep_events`` is set)."""
        return iter(self._events)

    def last_event(self) -> Optional[TraceEvent]:
        return self._events[-1] if self._events else None

    def merge(self, other: "OperationTrace") -> "OperationTrace":
        """Fold another trace into this one; returns ``self``.

        Aggregates per-socket traces from parallel production testers
        into one batch trace: clocks and energy add (the merged clock is
        total device-busy time across sockets, not wall-clock), op
        counts accumulate, and — when this trace keeps events — the
        other trace's events are appended with their timestamps offset
        so the merged log stays monotone.
        """
        offset = self.now_us
        if self.keep_events:
            for e in other._events:
                if (
                    self.max_events is not None
                    and len(self._events) >= self.max_events
                ):
                    self.dropped_events += 1
                else:
                    self._events.append(
                        TraceEvent(
                            e.op, e.address, e.start_us + offset, e.duration_us
                        )
                    )
        self.now_us += other.now_us
        self.energy_uj += other.energy_uj
        for op, n in other.op_counts.items():
            self.op_counts[op] = self.op_counts.get(op, 0) + n
        self.dropped_events += other.dropped_events
        return self

    def reset(self) -> None:
        """Zero the clock, the energy meter, the log and the drop count."""
        self.now_us = 0.0
        self.energy_uj = 0.0
        self.op_counts.clear()
        self.dropped_events = 0
        self._events.clear()
