"""Chip persistence: save and reload a simulated die's full state.

A chip file is a compressed ``.npz`` holding the evolving state
(threshold voltages, wear counters), the manufacture-time static lot,
the physics parameters, and identity metadata.  Reloading reproduces
the die exactly, so a "chip" can travel between processes — e.g. a
manufacturer script imprints and ships a file, an integrator script
verifies it (see ``python -m repro``).

The file format is versioned; loading checks it.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..faults import fault_point
from ..phys.constants import (
    CellParams,
    NoiseParams,
    PhysicalParams,
    WearParams,
)
from ..phys.variation import StaticCellLot
from .array import NorFlashArray
from .controller import FlashController
from .geometry import FlashGeometry
from .mcu import SUPPORTED_MODELS, Microcontroller
from .registers import FlashRegisterFile
from .timing import MSP430F5438_TIMING
from .tracing import OperationTrace

__all__ = [
    "save_chip",
    "load_chip",
    "chip_to_bytes",
    "chip_from_bytes",
    "ChipPersistenceError",
    "CHIP_FILE_VERSION",
]

CHIP_FILE_VERSION = 1


class ChipPersistenceError(ValueError):
    """A chip file/blob is truncated, corrupt, or of a foreign version.

    Every decode failure — a short read, a damaged ``.npz`` archive,
    missing arrays, unparseable metadata — surfaces as this one type,
    so callers (the CLI, the service wire protocol) can map "bad chip
    state" to a clean client-facing error instead of leaking
    ``zipfile``/``json``/``KeyError`` internals.
    """


def _params_to_json(params: PhysicalParams) -> str:
    return json.dumps(
        {
            "cell": vars(params.cell),
            "wear": vars(params.wear),
            "noise": vars(params.noise),
        }
    )


def _params_from_json(blob: str) -> PhysicalParams:
    raw = json.loads(blob)
    return PhysicalParams(
        cell=CellParams(**raw["cell"]),
        wear=WearParams(**raw["wear"]),
        noise=NoiseParams(**raw["noise"]),
    )


def save_chip(
    chip: Microcontroller, path: Union[str, Path, io.IOBase]
) -> None:
    """Write a chip's complete state to ``path`` (.npz, compressed).

    ``path`` may also be a binary file-like object — the wire protocol
    of :mod:`repro.service` streams chips through :class:`io.BytesIO`.
    """
    geometry = chip.geometry
    meta = {
        "version": CHIP_FILE_VERSION,
        "model": chip.model,
        "seed": chip.seed,
        "die_id": chip.die_id,
        "clock_us": chip.trace.now_us,
        "energy_uj": chip.trace.energy_uj,
        "temperature_c": chip.array.temperature_c,
        "geometry": {
            "bits_per_word": geometry.bits_per_word,
            "segment_bytes": geometry.segment_bytes,
            "segments_per_bank": geometry.segments_per_bank,
            "n_banks": geometry.n_banks,
        },
        "params": _params_to_json(chip.params),
    }
    target = Path(path) if isinstance(path, (str, Path)) else path
    arrays = dict(
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        vth=chip.array.vth,
        program_cycles=chip.array.program_cycles,
        erase_only_cycles=chip.array.erase_only_cycles,
        programmed_since_erase=chip.array.programmed_since_erase,
        tau0_us=chip.array.static.tau0_us,
        wear_susceptibility=chip.array.static.wear_susceptibility,
        vth_programmed=chip.array.static.vth_programmed,
        vth_erased=chip.array.static.vth_erased,
        rng_state=np.frombuffer(
            json.dumps(chip.rng.bit_generator.state).encode(),
            dtype=np.uint8,
        ),
    )
    # Injection point: a scheduled "error" models a failed write (raises
    # from fault_point); truncate/corrupt model a partial write that the
    # next load must reject with a typed ChipPersistenceError.
    action = fault_point("device.save_chip")
    if action is not None:
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        data = action.apply_bytes(buf.getvalue())
        if isinstance(target, Path):
            target.write_bytes(data)
        else:
            target.write(data)
        return
    np.savez_compressed(target, **arrays)


def load_chip(path: Union[str, Path, io.IOBase]) -> Microcontroller:
    """Reload a chip saved with :func:`save_chip`.

    Raises :class:`ChipPersistenceError` when the file is truncated,
    corrupt, missing arrays, or of an unsupported version — never a raw
    ``zipfile``/``json`` exception.
    """
    source = Path(path) if isinstance(path, (str, Path)) else path
    try:
        return _load_chip_raw(source)
    except ChipPersistenceError:
        raise
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise ChipPersistenceError(
            f"corrupt or truncated chip state: {exc}"
        ) from exc


def _load_chip_raw(source) -> Microcontroller:
    with np.load(source) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta.get("version") != CHIP_FILE_VERSION:
            raise ChipPersistenceError(
                f"unsupported chip file version {meta.get('version')!r}"
            )
        params = _params_from_json(meta["params"])
        geometry = FlashGeometry(**meta["geometry"])

        chip = object.__new__(Microcontroller)
        chip.model = meta["model"]
        chip.seed = meta["seed"]
        chip.params = params
        chip.die_id = meta["die_id"]
        chip.rng = np.random.default_rng()
        chip.rng.bit_generator.state = json.loads(
            bytes(data["rng_state"]).decode()
        )
        chip.trace = OperationTrace()
        chip.trace.now_us = float(meta["clock_us"])
        chip.trace.energy_uj = float(meta["energy_uj"])

        array = object.__new__(NorFlashArray)
        array.geometry = geometry
        array.params = params
        array.rng = chip.rng
        array.static = StaticCellLot(
            tau0_us=data["tau0_us"].copy(),
            wear_susceptibility=data["wear_susceptibility"].copy(),
            vth_programmed=data["vth_programmed"].copy(),
            vth_erased=data["vth_erased"].copy(),
        )
        array.vth = data["vth"].copy()
        array.program_cycles = data["program_cycles"].copy()
        array.erase_only_cycles = data["erase_only_cycles"].copy()
        array.programmed_since_erase = data["programmed_since_erase"].copy()
        array.temperature_c = float(
            meta.get("temperature_c", params.cell.nominal_temperature_c)
        )
        chip.array = array

        timing = MSP430F5438_TIMING
        if chip.model in SUPPORTED_MODELS:
            timing = SUPPORTED_MODELS[chip.model][1]
        chip.flash = FlashController(array, timing, chip.trace)
        chip.regs = FlashRegisterFile(chip.flash)
        return chip


def chip_to_bytes(chip: Microcontroller) -> bytes:
    """Serialize a chip to the compressed ``.npz`` byte stream.

    The in-memory twin of :func:`save_chip`: the service wire protocol
    ships chips as these bytes (base64-wrapped inside JSON frames).
    """
    buf = io.BytesIO()
    save_chip(chip, buf)
    data = buf.getvalue()
    # Injection point: "error" models a read-back failure, the payload
    # kinds hand downstream consumers a damaged blob.
    action = fault_point("device.chip_to_bytes")
    if action is not None:
        data = action.apply_bytes(data)
    return data


def chip_from_bytes(data: bytes) -> Microcontroller:
    """Inverse of :func:`chip_to_bytes`.

    Raises :class:`ChipPersistenceError` on a damaged blob.
    """
    action = fault_point("device.chip_from_bytes")
    if action is not None:
        data = action.apply_bytes(data)
    return load_chip(io.BytesIO(data))
