"""Flash array geometry: words, segments, banks, and address arithmetic.

The paper's devices (MSP430F5438/F5529) expose an in-system programmable
NOR flash organised as banks of 512-byte segments with a 16-bit word
interface.  Programs work at bit/byte/word granularity (1 -> 0 only),
erases work on whole segments (or whole banks for a mass erase).

All addresses in the simulator are *byte* addresses relative to the
start of the flash array; helper methods convert between byte addresses,
word indices, segment indices and flat bit indices into the cell arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlashGeometry", "MSP430F5438_GEOMETRY", "MSP430F5529_GEOMETRY"]


@dataclass(frozen=True)
class FlashGeometry:
    """Dimensions of a NOR flash array.

    Attributes
    ----------
    bits_per_word:
        Width of the data bus (16 for the MSP430 flash module).
    segment_bytes:
        Size of the erase unit in bytes (512 for MSP430 main flash).
    segments_per_bank:
        Number of segments in one bank (the mass-erase unit).
    n_banks:
        Number of banks in the array.
    """

    bits_per_word: int = 16
    segment_bytes: int = 512
    segments_per_bank: int = 128
    n_banks: int = 4

    def __post_init__(self) -> None:
        if self.bits_per_word % 8 != 0 or self.bits_per_word <= 0:
            raise ValueError("bits_per_word must be a positive multiple of 8")
        if self.segment_bytes % self.bytes_per_word != 0:
            raise ValueError("segment size must be a whole number of words")
        if self.segments_per_bank <= 0 or self.n_banks <= 0:
            raise ValueError("segments_per_bank and n_banks must be positive")

    # -- sizes -----------------------------------------------------------

    @property
    def bytes_per_word(self) -> int:
        return self.bits_per_word // 8

    @property
    def words_per_segment(self) -> int:
        return self.segment_bytes // self.bytes_per_word

    @property
    def bits_per_segment(self) -> int:
        return self.segment_bytes * 8

    @property
    def n_segments(self) -> int:
        return self.segments_per_bank * self.n_banks

    @property
    def total_bytes(self) -> int:
        return self.n_segments * self.segment_bytes

    @property
    def total_bits(self) -> int:
        return self.total_bytes * 8

    # -- address arithmetic ----------------------------------------------

    def check_byte_address(self, address: int) -> None:
        """Raise ``ValueError`` if ``address`` is outside the array."""
        if not 0 <= address < self.total_bytes:
            raise ValueError(
                f"byte address 0x{address:X} outside flash "
                f"(size 0x{self.total_bytes:X})"
            )

    def check_word_address(self, address: int) -> None:
        """Raise ``ValueError`` if ``address`` is not a valid word address."""
        self.check_byte_address(address)
        if address % self.bytes_per_word != 0:
            raise ValueError(
                f"byte address 0x{address:X} is not word-aligned "
                f"({self.bytes_per_word}-byte words)"
            )

    def segment_of(self, address: int) -> int:
        """Segment index containing byte ``address``."""
        self.check_byte_address(address)
        return address // self.segment_bytes

    def bank_of(self, address: int) -> int:
        """Bank index containing byte ``address``."""
        return self.segment_of(address) // self.segments_per_bank

    def segment_base(self, segment: int) -> int:
        """Byte address of the first byte of ``segment``."""
        if not 0 <= segment < self.n_segments:
            raise ValueError(
                f"segment {segment} outside flash ({self.n_segments} segments)"
            )
        return segment * self.segment_bytes

    def segment_bit_slice(self, segment: int) -> slice:
        """Slice of the flat cell arrays covered by ``segment``."""
        base = self.segment_base(segment) * 8
        return slice(base, base + self.bits_per_segment)

    def bank_segments(self, bank: int) -> range:
        """Segment indices belonging to ``bank``."""
        if not 0 <= bank < self.n_banks:
            raise ValueError(f"bank {bank} outside flash ({self.n_banks} banks)")
        first = bank * self.segments_per_bank
        return range(first, first + self.segments_per_bank)

    def word_bit_slice(self, address: int) -> slice:
        """Slice of the flat cell arrays for the word at byte ``address``."""
        self.check_word_address(address)
        base = address * 8
        return slice(base, base + self.bits_per_word)


#: Geometry of the 256 KB flash of the MSP430F5438 (4 banks x 64 KB).
MSP430F5438_GEOMETRY = FlashGeometry(
    bits_per_word=16, segment_bytes=512, segments_per_bank=128, n_banks=4
)

#: Geometry of the 128 KB flash of the MSP430F5529 (2 banks x 64 KB).
MSP430F5529_GEOMETRY = FlashGeometry(
    bits_per_word=16, segment_bytes=512, segments_per_bank=128, n_banks=2
)
