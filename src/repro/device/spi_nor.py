"""Stand-alone SPI NOR flash chip model.

Section V of the paper notes that stand-alone NOR chips program and
erase far faster than the MSP430's embedded module, so Flashmark imprint
times there would be "significantly smaller".  This module provides such
a chip with the standard JEDEC SPI command set, so the Flashmark
procedures can be demonstrated beyond the embedded module:

========  =======================================
0x06      WREN — write enable
0x04      WRDI — write disable
0x05      RDSR — read status (bit0 WIP, bit1 WEL)
0x02      PP   — page program (256 bytes)
0x20      SE   — sector erase (4 KB)
0x03      READ — sequential read
0x9F      RDID — JEDEC id
0x75      erase suspend (the partial-erase abort)
========  =======================================

The *erase suspend* command is how partial erase is realised on
stand-alone chips: initiate SE, wait t_PE, suspend.  Unlike the MCU's
emergency exit, suspend is resumable on real parts; the model treats a
suspend followed by a new command as an abort, which is the Flashmark
use case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..phys.constants import PhysicalParams
from .array import NorFlashArray
from .controller import FlashController
from .errors import FlashBusyError, FlashCommandError
from .geometry import FlashGeometry
from .timing import FAST_SPI_NOR_TIMING, TimingProfile
from .tracing import OperationTrace

__all__ = ["SpiNorFlash", "SPI_NOR_GEOMETRY"]

#: 1 MiB chip: byte-wide interface, 4 KiB erase sectors.
SPI_NOR_GEOMETRY = FlashGeometry(
    bits_per_word=8, segment_bytes=4096, segments_per_bank=256, n_banks=1
)

PAGE_BYTES = 256


@dataclass
class _PendingSectorErase:
    sector: int
    start_us: float
    duration_us: float


class SpiNorFlash:
    """A stand-alone SPI NOR flash chip driven by JEDEC-style commands.

    Examples
    --------
    >>> chip = SpiNorFlash(seed=3)
    >>> chip.write_enable()
    >>> chip.page_program(0x000, bytes(range(16)))
    >>> chip.read(0x000, 4)
    b'\\x00\\x01\\x02\\x03'
    """

    JEDEC_ID = (0xC2, 0x20, 0x18)  # (manufacturer, type, capacity)

    def __init__(
        self,
        seed: int = 0,
        params: Optional[PhysicalParams] = None,
        geometry: FlashGeometry = SPI_NOR_GEOMETRY,
        timing: TimingProfile = FAST_SPI_NOR_TIMING,
    ):
        self.rng = np.random.default_rng(seed)
        self.params = params if params is not None else PhysicalParams()
        self.trace = OperationTrace()
        self.array = NorFlashArray(geometry, self.params, self.rng)
        self.controller = FlashController(self.array, timing, self.trace)
        self._wel = False  # write enable latch
        self._pending: Optional[_PendingSectorErase] = None

    @property
    def geometry(self) -> FlashGeometry:
        return self.array.geometry

    # -- status ---------------------------------------------------------

    def read_status(self) -> int:
        """RDSR: bit0 = WIP (write in progress), bit1 = WEL."""
        self._complete_if_elapsed()
        status = 0
        if self._pending is not None:
            status |= 0x01
        if self._wel:
            status |= 0x02
        return status

    def read_jedec_id(self) -> tuple:
        """RDID."""
        return self.JEDEC_ID

    def write_enable(self) -> None:
        """WREN."""
        self._wel = True

    def write_disable(self) -> None:
        """WRDI."""
        self._wel = False

    def wait_us(self, duration_us: float) -> None:
        """Advance the host clock (e.g. between SE and erase suspend)."""
        if duration_us < 0:
            raise ValueError("wait duration must be non-negative")
        self.trace.charge("host_wait", duration_us)
        self._complete_if_elapsed()

    # -- data path ---------------------------------------------------------

    def page_program(self, address: int, data: bytes) -> None:
        """PP: program up to 256 bytes within one page (1 -> 0 only)."""
        self._require_ready_for_write()
        if len(data) == 0 or len(data) > PAGE_BYTES:
            raise FlashCommandError(
                f"page program accepts 1..{PAGE_BYTES} bytes, got {len(data)}"
            )
        if address // PAGE_BYTES != (address + len(data) - 1) // PAGE_BYTES:
            raise FlashCommandError("page program must not cross a page")
        self.geometry.check_byte_address(address)
        bits = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8), bitorder="little"
        )
        sl = slice(address * 8, address * 8 + bits.size)
        self.array.program_bits(sl, bits)
        timing = self.controller.timing
        self.trace.charge(
            "page_program",
            timing.t_cmd_overhead_us
            + len(data) * timing.t_program_word_block_us,
            address=address,
            energy_uj=len(data) * timing.e_program_word_uj,
        )
        self._wel = False

    def sector_erase(self, address: int) -> None:
        """SE: start erasing the 4 KiB sector containing ``address``.

        The chip goes WIP; poll :meth:`read_status` or call
        :meth:`wait_us` until done, or abort with :meth:`erase_suspend`.
        """
        self._require_ready_for_write()
        sector = self.geometry.segment_of(address)
        self._pending = _PendingSectorErase(
            sector, self.trace.now_us, self.controller.timing.t_erase_us
        )
        self._wel = False

    def erase_suspend(self) -> float:
        """Suspend (abort) the in-flight sector erase.

        Returns the effective partial-erase time [us]; 0 if nothing was
        in flight.
        """
        self._complete_if_elapsed()
        if self._pending is None:
            return 0.0
        pending, self._pending = self._pending, None
        elapsed = min(
            self.trace.now_us - pending.start_us, pending.duration_us
        )
        sl = self.geometry.segment_bit_slice(pending.sector)
        self.array.erase_pulse(sl, elapsed)
        self.trace.charge(
            "erase_suspend",
            self.controller.timing.t_abort_overhead_us,
            address=self.geometry.segment_base(pending.sector),
            energy_uj=self.controller.timing.e_erase_uj
            * min(1.0, elapsed / pending.duration_us),
        )
        return elapsed

    def read(self, address: int, n_bytes: int, n_reads: int = 1) -> bytes:
        """READ: sequential byte read."""
        self._complete_if_elapsed()
        if self._pending is not None:
            raise FlashBusyError("read while erase in progress")
        if n_bytes <= 0:
            raise ValueError("n_bytes must be positive")
        self.geometry.check_byte_address(address)
        self.geometry.check_byte_address(address + n_bytes - 1)
        sl = slice(address * 8, (address + n_bytes) * 8)
        bits = self.array.read_bits(sl, n_reads=n_reads)
        timing = self.controller.timing
        self.trace.charge(
            "read",
            n_bytes * n_reads * timing.t_read_word_us,
            address=address,
            energy_uj=n_bytes * n_reads * timing.e_read_word_uj,
        )
        return np.packbits(bits, bitorder="little").tobytes()

    # -- internals -----------------------------------------------------------

    def _require_ready_for_write(self) -> None:
        self._complete_if_elapsed()
        if self._pending is not None:
            raise FlashBusyError("command issued while erase in progress")
        if not self._wel:
            raise FlashCommandError("write enable latch not set (send WREN)")

    def _complete_if_elapsed(self) -> None:
        if self._pending is None:
            return
        elapsed = self.trace.now_us - self._pending.start_us
        if elapsed + 1e-9 >= self._pending.duration_us:
            pending, self._pending = self._pending, None
            sl = self.geometry.segment_bit_slice(pending.sector)
            self.array.erase_pulse(sl, pending.duration_us)
            self.trace.charge(
                "sector_erase_complete",
                0.0,
                address=self.geometry.segment_base(pending.sector),
                energy_uj=self.controller.timing.e_erase_uj,
            )
