"""MSP430-style flash controller register facade.

The paper drives the MSP430 flash module bare-metal through its control
registers.  This facade reproduces that programming model (simplified to
the bits the paper's procedures touch) on top of the behavioural
controller, including the part that cannot be expressed through plain
method calls: an erase is *initiated*, the CPU *waits* t_PE, and then the
**emergency exit** (EMEX) bit aborts the operation mid-flight.

Register map (subset of the MSP430F5xx flash module):

=========  =====================================================
FCTL1      WRT (0x0040) write mode, BLKWRT (0x0080) block write,
           ERASE (0x0002) segment erase, MERAS (0x0004) mass erase
FCTL3      BUSY (0x0001), KEYV (0x0002), LOCK (0x0010),
           EMEX (0x0020)
=========  =====================================================

Every write must carry the password ``0xA5`` in the upper byte (reads
return ``0x96`` there, as on silicon); a bad key sets KEYV and the write
is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .controller import FlashController
from .errors import FlashBusyError, FlashCommandError, FlashLockedError

__all__ = [
    "FlashRegisterFile",
    "FCTL1",
    "FCTL3",
    "WRT",
    "BLKWRT",
    "ERASE",
    "MERAS",
    "BUSY",
    "KEYV",
    "LOCK",
    "EMEX",
    "FWKEY",
    "FRKEY",
]

#: Register identifiers.
FCTL1 = "FCTL1"
FCTL3 = "FCTL3"

#: FCTL1 bits.
ERASE = 0x0002
MERAS = 0x0004
WRT = 0x0040
BLKWRT = 0x0080

#: FCTL3 bits.
BUSY = 0x0001
KEYV = 0x0002
LOCK = 0x0010
EMEX = 0x0020

#: Write key (upper byte of every register write).
FWKEY = 0xA500
#: Read key (upper byte returned by register reads).
FRKEY = 0x9600

_KEY_MASK = 0xFF00


@dataclass
class _PendingErase:
    """An erase operation currently in flight."""

    kind: str  # "segment" or "mass"
    target: int  # segment index or bank index
    start_us: float
    duration_us: float


class FlashRegisterFile:
    """Register-level programming model of the embedded flash module.

    The facade keeps its own view of FCTL1/FCTL3 and maps the canonical
    MSP430 sequences onto :class:`FlashController` calls:

    * ``FCTL3 = FWKEY`` (clear LOCK), ``FCTL1 = FWKEY | ERASE``, then a
      dummy write to any address of the segment starts a segment erase;
    * while BUSY, ``wait_us`` advances the CPU clock; writing
      ``FWKEY | EMEX`` to FCTL3 aborts the erase at the elapsed time —
      this is exactly the partial-erase primitive of Figs. 3 and 8;
    * ``FCTL1 = FWKEY | WRT`` plus a word write programs a word.
    """

    def __init__(self, controller: FlashController):
        self.controller = controller
        self._fctl1 = 0
        self._lock = True
        self._keyv = False
        self._pending: Optional[_PendingErase] = None

    # -- time ------------------------------------------------------------

    @property
    def now_us(self) -> float:
        return self.controller.trace.now_us

    def wait_us(self, duration_us: float) -> None:
        """Busy-wait the CPU for ``duration_us`` (advances device clock)."""
        if duration_us < 0:
            raise ValueError("wait duration must be non-negative")
        self.controller.trace.charge("cpu_wait", duration_us)
        self._complete_if_elapsed()

    # -- register access ----------------------------------------------------

    def write_register(self, name: str, value: int) -> None:
        """Write FCTL1 or FCTL3 (password-protected)."""
        if value & _KEY_MASK != FWKEY:
            self._keyv = True
            return
        payload = value & ~_KEY_MASK
        if name == FCTL1:
            if self._pending is not None:
                raise FlashBusyError("FCTL1 written while erase in flight")
            self._fctl1 = payload
        elif name == FCTL3:
            if payload & EMEX:
                self._emergency_exit()
            self._lock = bool(payload & LOCK)
            self.controller.locked = self._lock
            if not payload & KEYV:
                self._keyv = False
        else:
            raise FlashCommandError(f"unknown flash register {name!r}")

    def read_register(self, name: str) -> int:
        """Read FCTL1 or FCTL3; upper byte reads back as 0x96."""
        self._complete_if_elapsed()
        if name == FCTL1:
            return FRKEY | self._fctl1
        if name == FCTL3:
            value = 0
            if self._pending is not None:
                value |= BUSY
            if self._keyv:
                value |= KEYV
            if self._lock:
                value |= LOCK
            return FRKEY | value
        raise FlashCommandError(f"unknown flash register {name!r}")

    @property
    def busy(self) -> bool:
        """True while an initiated erase has neither finished nor aborted."""
        self._complete_if_elapsed()
        return self._pending is not None

    # -- memory-mapped accesses ------------------------------------------------

    def dummy_write(self, address: int) -> None:
        """A write access that triggers a pending ERASE/MERAS command."""
        self._complete_if_elapsed()
        if self._pending is not None:
            raise FlashBusyError("flash access while BUSY")
        if self._lock:
            raise FlashLockedError("erase trigger while LOCK=1")
        timing = self.controller.timing
        if self._fctl1 & MERAS:
            bank = self.controller.geometry.bank_of(address)
            self._pending = _PendingErase(
                "mass", bank, self.now_us, timing.t_erase_us
            )
        elif self._fctl1 & ERASE:
            segment = self.controller.geometry.segment_of(address)
            self._pending = _PendingErase(
                "segment", segment, self.now_us, timing.t_erase_us
            )
        else:
            raise FlashCommandError(
                "dummy write without ERASE or MERAS set in FCTL1"
            )

    def write_word(self, address: int, value: int) -> None:
        """Program a word through the memory bus (WRT mode required)."""
        self._complete_if_elapsed()
        if self._pending is not None:
            raise FlashBusyError("flash write while BUSY")
        if not self._fctl1 & (WRT | BLKWRT):
            raise FlashCommandError("word write without WRT set in FCTL1")
        self.controller.program_word(address, value)

    def read_word(self, address: int, n_reads: int = 1) -> int:
        """Read a word through the memory bus."""
        self._complete_if_elapsed()
        if self._pending is not None:
            raise FlashBusyError("flash read while BUSY")
        return self.controller.read_word(address, n_reads=n_reads)

    # -- internals ----------------------------------------------------------

    def _elapsed_us(self) -> float:
        assert self._pending is not None
        return self.now_us - self._pending.start_us

    def _complete_if_elapsed(self) -> None:
        if self._pending is None:
            return
        if self._elapsed_us() + 1e-9 >= self._pending.duration_us:
            self._apply_erase(self._pending.duration_us, completed=True)

    def _emergency_exit(self) -> None:
        """Abort the in-flight erase at the elapsed partial-erase time."""
        if self._pending is None:
            return
        elapsed = min(self._elapsed_us(), self._pending.duration_us)
        self._apply_erase(elapsed, completed=False)

    def _apply_erase(self, effective_us: float, completed: bool) -> None:
        assert self._pending is not None
        pending, self._pending = self._pending, None
        geometry = self.controller.geometry
        array = self.controller.array
        if pending.kind == "segment":
            sl = geometry.segment_bit_slice(pending.target)
            address = geometry.segment_base(pending.target)
        else:
            segments = geometry.bank_segments(pending.target)
            first = geometry.segment_bit_slice(segments[0])
            last = geometry.segment_bit_slice(segments[-1])
            sl = slice(first.start, last.stop)
            address = geometry.segment_base(segments[0])
        array.erase_pulse(sl, effective_us)
        # Time already advanced through wait_us; charge only bookkeeping.
        op = "erase_complete" if completed else "erase_emergency_exit"
        timing = self.controller.timing
        self.controller.trace.charge(
            op,
            0.0 if completed else timing.t_abort_overhead_us,
            address=address,
            energy_uj=timing.e_erase_uj
            * min(1.0, effective_us / timing.t_erase_us),
        )
