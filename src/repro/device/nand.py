"""SLC NAND flash variant.

The paper's conclusion states the method "is applicable broadly to NOR
and NAND flash memories".  This module backs that claim with a
page-oriented SLC NAND device on the same cell physics: program works at
page granularity, erase at block granularity, and the partial erase is
realised with the NAND RESET (0xFF) command, which aborts an in-flight
erase — the mechanism used by the recycled-NAND literature the paper
cites ([7]).

The simulated chip is geometrically scaled down (small pages, few
blocks) to keep memory modest; the physics per cell is identical to the
NOR model, with NAND-typical timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..phys.constants import PhysicalParams
from .array import NorFlashArray
from .controller import FlashController
from .errors import FlashBusyError, FlashCommandError
from .geometry import FlashGeometry
from .timing import SLC_NAND_TIMING, TimingProfile
from .tracing import OperationTrace

__all__ = ["NandFlash", "NAND_GEOMETRY", "NAND_PAGE_BYTES", "NAND_PAGES_PER_BLOCK"]

#: Bytes per NAND page (scaled-down SLC part).
NAND_PAGE_BYTES = 512
#: Pages per erase block.
NAND_PAGES_PER_BLOCK = 16

#: One block is one erase unit -> one "segment" of the underlying array.
NAND_GEOMETRY = FlashGeometry(
    bits_per_word=8,
    segment_bytes=NAND_PAGE_BYTES * NAND_PAGES_PER_BLOCK,
    segments_per_bank=64,
    n_banks=1,
)


@dataclass
class _PendingBlockErase:
    block: int
    start_us: float
    duration_us: float


class NandFlash:
    """A small SLC NAND chip exposing page program / block erase / reset."""

    def __init__(
        self,
        seed: int = 0,
        params: Optional[PhysicalParams] = None,
        geometry: FlashGeometry = NAND_GEOMETRY,
        timing: TimingProfile = SLC_NAND_TIMING,
    ):
        self.rng = np.random.default_rng(seed)
        self.params = params if params is not None else PhysicalParams()
        self.trace = OperationTrace()
        self.array = NorFlashArray(geometry, self.params, self.rng)
        self.controller = FlashController(self.array, timing, self.trace)
        self._pending: Optional[_PendingBlockErase] = None

    @property
    def geometry(self) -> FlashGeometry:
        return self.array.geometry

    @property
    def n_blocks(self) -> int:
        return self.geometry.n_segments

    @property
    def pages_per_block(self) -> int:
        return NAND_PAGES_PER_BLOCK

    @property
    def page_bytes(self) -> int:
        return NAND_PAGE_BYTES

    # -- address helpers ---------------------------------------------------

    def _page_slice(self, block: int, page: int) -> slice:
        if not 0 <= block < self.n_blocks:
            raise FlashCommandError(
                f"block {block} outside chip ({self.n_blocks} blocks)"
            )
        if not 0 <= page < self.pages_per_block:
            raise FlashCommandError(
                f"page {page} outside block ({self.pages_per_block} pages)"
            )
        base = (
            self.geometry.segment_base(block) + page * self.page_bytes
        ) * 8
        return slice(base, base + self.page_bytes * 8)

    # -- operations ----------------------------------------------------------

    def program_page(self, block: int, page: int, data: bytes) -> None:
        """Program one page (1 -> 0 only, as on silicon)."""
        self._require_ready()
        if len(data) != self.page_bytes:
            raise FlashCommandError(
                f"page data must be exactly {self.page_bytes} bytes"
            )
        sl = self._page_slice(block, page)
        bits = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8), bitorder="little"
        )
        self.array.program_bits(sl, bits)
        timing = self.controller.timing
        self.trace.charge(
            "program_page",
            timing.t_cmd_overhead_us + timing.t_program_word_us,
            address=sl.start // 8,
            energy_uj=timing.e_program_word_uj,
        )

    def read_page(self, block: int, page: int, n_reads: int = 1) -> bytes:
        """Read one page."""
        self._require_ready()
        sl = self._page_slice(block, page)
        bits = self.array.read_bits(sl, n_reads=n_reads)
        timing = self.controller.timing
        self.trace.charge(
            "read_page",
            n_reads * timing.t_read_word_us,
            address=sl.start // 8,
            energy_uj=n_reads * timing.e_read_word_uj,
        )
        return np.packbits(bits, bitorder="little").tobytes()

    def erase_block(self, block: int) -> None:
        """Start erasing ``block``; chip is busy until done or reset."""
        self._require_ready()
        if not 0 <= block < self.n_blocks:
            raise FlashCommandError(
                f"block {block} outside chip ({self.n_blocks} blocks)"
            )
        self._pending = _PendingBlockErase(
            block, self.trace.now_us, self.controller.timing.t_erase_us
        )

    def reset(self) -> float:
        """NAND RESET (0xFF): abort an in-flight erase.

        Returns the effective partial-erase time [us] (0 if idle) — the
        NAND counterpart of the MCU's emergency exit.
        """
        self._complete_if_elapsed()
        if self._pending is None:
            return 0.0
        pending, self._pending = self._pending, None
        elapsed = min(
            self.trace.now_us - pending.start_us, pending.duration_us
        )
        sl = self.geometry.segment_bit_slice(pending.block)
        self.array.erase_pulse(sl, elapsed)
        self.trace.charge(
            "reset_abort",
            self.controller.timing.t_abort_overhead_us,
            address=self.geometry.segment_base(pending.block),
            energy_uj=self.controller.timing.e_erase_uj
            * min(1.0, elapsed / pending.duration_us),
        )
        return elapsed

    def wait_us(self, duration_us: float) -> None:
        """Advance the host clock."""
        if duration_us < 0:
            raise ValueError("wait duration must be non-negative")
        self.trace.charge("host_wait", duration_us)
        self._complete_if_elapsed()

    @property
    def busy(self) -> bool:
        self._complete_if_elapsed()
        return self._pending is not None

    # -- internals --------------------------------------------------------

    def _require_ready(self) -> None:
        self._complete_if_elapsed()
        if self._pending is not None:
            raise FlashBusyError("command issued while erase in progress")

    def _complete_if_elapsed(self) -> None:
        if self._pending is None:
            return
        elapsed = self.trace.now_us - self._pending.start_us
        if elapsed + 1e-9 >= self._pending.duration_us:
            pending, self._pending = self._pending, None
            sl = self.geometry.segment_bit_slice(pending.block)
            self.array.erase_pulse(sl, pending.duration_us)
            self.trace.charge(
                "block_erase_complete",
                0.0,
                address=self.geometry.segment_base(pending.block),
                energy_uj=self.controller.timing.e_erase_uj,
            )
