"""Operation timing (and energy) profiles for simulated flash devices.

The paper's cost analysis (Section V) hinges on datasheet timing: the
MSP430F5438's segment erase takes T_ERASE ~ 23-35 ms and a word program
takes T_PROG ~ 64-85 us; block-write mode amortises setup so a full
512-byte segment programs in about 10 ms.  Stand-alone SPI NOR chips and
NAND devices erase and program much faster, which is why the paper
expects far smaller imprint times there.

A :class:`TimingProfile` carries those constants; the controller charges
every operation against a monotonically increasing device clock so
experiments can report imprint/extract wall times without real waiting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TimingProfile",
    "MSP430F5438_TIMING",
    "FAST_SPI_NOR_TIMING",
    "SLC_NAND_TIMING",
]


@dataclass(frozen=True)
class TimingProfile:
    """Timing and energy constants of one flash device family."""

    #: Human-readable profile name.
    name: str
    #: Nominal full segment/sector/block erase time [us].
    t_erase_us: float
    #: Single word/page program time [us].
    t_program_word_us: float
    #: Per-word program time in block-write (burst) mode [us].
    t_program_word_block_us: float
    #: One-time setup cost of entering block-write mode [us].
    t_block_setup_us: float
    #: Word read access time [us].
    t_read_word_us: float
    #: Overhead of starting any program/erase command (voltage generator
    #: ramp-up) [us].
    t_cmd_overhead_us: float
    #: Overhead of the emergency-exit abort (voltage ramp-down) [us].
    t_abort_overhead_us: float
    #: Energy per erase pulse [uJ] (coarse; used for energy accounting).
    e_erase_uj: float = 18.0
    #: Energy per word program [uJ].
    e_program_word_uj: float = 0.6
    #: Energy per word read [uJ].
    e_read_word_uj: float = 0.002

    def segment_program_time_us(self, n_words: int, block: bool = True) -> float:
        """Time to program ``n_words`` consecutive words [us]."""
        if n_words < 0:
            raise ValueError("n_words must be non-negative")
        if n_words == 0:
            return 0.0
        if block:
            return (
                self.t_block_setup_us
                + n_words * self.t_program_word_block_us
            )
        return n_words * self.t_program_word_us

    def segment_read_time_us(self, n_words: int, n_reads: int = 1) -> float:
        """Time to read ``n_words`` words, ``n_reads`` times each [us]."""
        return n_words * n_reads * self.t_read_word_us


#: MSP430F5438/F5529 embedded flash (datasheet rev. F, ref. [18]).
#: 25 ms erase + ~10 ms block write per 512-byte segment reproduces the
#: paper's baseline imprint cost of ~34.5 ms per P/E cycle.
MSP430F5438_TIMING = TimingProfile(
    name="MSP430F5438",
    t_erase_us=25_000.0,
    t_program_word_us=75.0,
    t_program_word_block_us=37.0,
    t_block_setup_us=65.0,
    t_read_word_us=0.18,
    t_cmd_overhead_us=25.0,
    t_abort_overhead_us=12.0,
)

#: A fast stand-alone SPI NOR chip (aggressive page program / sector
#: erase, representative of the "significantly faster" parts the paper
#: mentions in Section V).
FAST_SPI_NOR_TIMING = TimingProfile(
    name="FAST_SPI_NOR",
    t_erase_us=3_000.0,
    t_program_word_us=12.0,
    t_program_word_block_us=2.8,
    t_block_setup_us=30.0,
    t_read_word_us=0.08,
    t_cmd_overhead_us=8.0,
    t_abort_overhead_us=4.0,
    e_erase_uj=9.0,
    e_program_word_uj=0.25,
)

#: SLC NAND block/page timing (block erase ~3 ms, page program ~300 us);
#: included for the paper's "applicable to NAND" claim.
SLC_NAND_TIMING = TimingProfile(
    name="SLC_NAND",
    t_erase_us=3_000.0,
    t_program_word_us=300.0,
    t_program_word_block_us=300.0,
    t_block_setup_us=0.0,
    t_read_word_us=25.0,
    t_cmd_overhead_us=5.0,
    t_abort_overhead_us=5.0,
    e_erase_uj=35.0,
    e_program_word_uj=12.0,
)
