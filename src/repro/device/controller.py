"""Flash memory controller: the digital interface Flashmark drives.

The controller exposes exactly the command surface the paper uses on the
MSP430 flash module:

* word program and block-write (1 -> 0 only);
* segment erase and bank mass erase;
* **partial erase** — initiate a segment erase, wait ``t_PE``
  microseconds, then issue the emergency-exit abort;
* **erase-until-clean** — the premature erase exit that cuts imprint
  time ~3.5x in Section V: poll-verify and stop as soon as every cell
  reads erased;
* word/segment reads with optional N-read majority voting.

Every operation charges datasheet timing (and energy) against the
device's :class:`~repro.device.tracing.OperationTrace`, so experiments
read imprint/extract wall times straight off the device clock.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compat import trapezoid
from .array import NorFlashArray
from .errors import FlashAddressError, FlashLockedError
from .geometry import FlashGeometry
from .pack import bits_to_word, bits_to_words, word_to_bits, words_to_bits
from .timing import TimingProfile
from .tracing import OperationTrace

__all__ = ["FlashController"]


class FlashController:
    """Digital command interface over a :class:`NorFlashArray`.

    Parameters
    ----------
    array:
        The cell-physics array the controller drives.
    timing:
        Datasheet timing profile used for the device clock.
    trace:
        Operation trace; a fresh one is created if not supplied.
    """

    def __init__(
        self,
        array: NorFlashArray,
        timing: TimingProfile,
        trace: Optional[OperationTrace] = None,
    ):
        self.array = array
        self.timing = timing
        self.trace = trace if trace is not None else OperationTrace()
        #: Software write/erase protection (the LOCK bit of FCTL3).
        self.locked = False
        #: Optional telemetry context (see :meth:`attach_telemetry`).
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> "FlashController":
        """Bind a :class:`~repro.telemetry.Telemetry` context.

        Points the telemetry's span accounting at this controller's
        :class:`OperationTrace` and enables the controller's own metric
        hooks (erase-convergence and bulk-cycle histograms).  The hooks
        are guarded by a ``None`` check, so an unattached controller
        pays nothing.
        """
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.bind_trace(self.trace)
        return self

    @property
    def geometry(self) -> FlashGeometry:
        return self.array.geometry

    # -- guards ----------------------------------------------------------

    def _require_unlocked(self) -> None:
        if self.locked:
            raise FlashLockedError(
                "program/erase issued while flash is locked (LOCK=1)"
            )

    def _segment_slice(self, segment: int) -> slice:
        try:
            return self.geometry.segment_bit_slice(segment)
        except ValueError as exc:
            raise FlashAddressError(str(exc)) from None

    # -- program ----------------------------------------------------------

    def program_word(self, address: int, value: int) -> None:
        """Program one word; only 1 -> 0 transitions take effect."""
        self._require_unlocked()
        try:
            sl = self.geometry.word_bit_slice(address)
        except ValueError as exc:
            raise FlashAddressError(str(exc)) from None
        bits = word_to_bits(value, self.geometry.bits_per_word)
        self.array.program_bits(sl, bits)
        self.trace.charge(
            "program_word",
            self.timing.t_cmd_overhead_us + self.timing.t_program_word_us,
            address=address,
            energy_uj=self.timing.e_program_word_uj,
        )

    def program_segment_words(
        self, segment: int, words: np.ndarray, block: bool = True
    ) -> None:
        """Program a whole segment's words (block-write mode by default)."""
        self._require_unlocked()
        sl = self._segment_slice(segment)
        words = np.asarray(words)
        if words.shape != (self.geometry.words_per_segment,):
            raise ValueError(
                f"expected {self.geometry.words_per_segment} words, "
                f"got shape {words.shape}"
            )
        bits = words_to_bits(words, self.geometry.bits_per_word)
        self.array.program_bits(sl, bits)
        n_words = int(words.size)
        self.trace.charge(
            "program_segment",
            self.timing.t_cmd_overhead_us
            + self.timing.segment_program_time_us(n_words, block=block),
            address=self.geometry.segment_base(segment),
            energy_uj=n_words * self.timing.e_program_word_uj,
        )

    def program_segment_bits(
        self, segment: int, bits: np.ndarray, block: bool = True
    ) -> None:
        """Program a whole segment from a flat bit pattern (1 = leave erased)."""
        self._require_unlocked()
        sl = self._segment_slice(segment)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.geometry.bits_per_segment,):
            raise ValueError(
                f"expected {self.geometry.bits_per_segment} bits, "
                f"got shape {bits.shape}"
            )
        self.array.program_bits(sl, bits)
        n_words = self.geometry.words_per_segment
        self.trace.charge(
            "program_segment",
            self.timing.t_cmd_overhead_us
            + self.timing.segment_program_time_us(n_words, block=block),
            address=self.geometry.segment_base(segment),
            energy_uj=n_words * self.timing.e_program_word_uj,
        )

    def partial_program_segment(
        self, segment: int, bits: np.ndarray, t_pp_us: float
    ) -> None:
        """Program a segment pattern with an aborted (partial) pulse.

        The partial-program counterpart of
        :meth:`partial_erase_segment`: the programming voltage is
        removed after ``t_pp_us`` instead of the nominal T_PROG, leaving
        pattern-0 cells partially charged.  Used by the FFD-style
        recycled detector and the flash TRNG baselines.
        """
        self._require_unlocked()
        if t_pp_us < 0:
            raise ValueError("partial program time must be non-negative")
        sl = self._segment_slice(segment)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.geometry.bits_per_segment,):
            raise ValueError(
                f"expected {self.geometry.bits_per_segment} bits, "
                f"got shape {bits.shape}"
            )
        self.array.partial_program_bits(sl, bits, t_pp_us)
        self.trace.charge(
            "partial_program",
            self.timing.t_cmd_overhead_us
            + t_pp_us
            + self.timing.t_abort_overhead_us,
            address=self.geometry.segment_base(segment),
            energy_uj=self.geometry.words_per_segment
            * self.timing.e_program_word_uj
            * min(1.0, t_pp_us / self.timing.t_program_word_us),
        )

    # -- erase -------------------------------------------------------------

    def erase_segment(self, segment: int) -> None:
        """Full segment erase (nominal T_ERASE; all cells reach floor)."""
        self._require_unlocked()
        sl = self._segment_slice(segment)
        self.array.erase_pulse(sl, self.timing.t_erase_us)
        self.trace.charge(
            "erase_segment",
            self.timing.t_cmd_overhead_us + self.timing.t_erase_us,
            address=self.geometry.segment_base(segment),
            energy_uj=self.timing.e_erase_uj,
        )

    def mass_erase_bank(self, bank: int) -> None:
        """Erase every segment of ``bank`` in one operation."""
        self._require_unlocked()
        segments = self.geometry.bank_segments(bank)
        first = self.geometry.segment_bit_slice(segments[0])
        last = self.geometry.segment_bit_slice(segments[-1])
        sl = slice(first.start, last.stop)
        self.array.erase_pulse(sl, self.timing.t_erase_us)
        self.trace.charge(
            "mass_erase",
            self.timing.t_cmd_overhead_us + self.timing.t_erase_us,
            address=self.geometry.segment_base(segments[0]),
            energy_uj=self.timing.e_erase_uj * len(segments),
        )

    def partial_erase_segment(self, segment: int, t_pe_us: float) -> None:
        """Initiate a segment erase and abort it after ``t_pe_us``.

        This is the paper's core sensing primitive (Fig. 3 / Fig. 8): the
        emergency-exit command freezes every cell mid-transient, leaving
        the wear-dependent pattern readable through normal reads.
        """
        self._require_unlocked()
        if t_pe_us < 0:
            raise ValueError("partial erase time must be non-negative")
        sl = self._segment_slice(segment)
        self.array.erase_pulse(sl, t_pe_us)
        self.trace.charge(
            "partial_erase",
            self.timing.t_cmd_overhead_us
            + t_pe_us
            + self.timing.t_abort_overhead_us,
            address=self.geometry.segment_base(segment),
            energy_uj=self.timing.e_erase_uj
            * min(1.0, t_pe_us / self.timing.t_erase_us),
        )

    def erase_segment_until_clean(
        self,
        segment: int,
        margin: float = 2.0,
        max_pulses: int = 8,
    ) -> float:
        """Accelerated erase: stop as soon as every cell reads erased.

        Applies an erase pulse sized ``margin`` times the slowest cell's
        predicted crossing time, then verifies with a read; repeats (up to
        ``max_pulses``) if any cell still reads programmed.  Returns the
        total erase time spent [us] — typically hundreds of microseconds
        instead of the 25 ms nominal erase, which is where the paper's
        ~3.5x imprint speed-up comes from.
        """
        self._require_unlocked()
        if margin < 1.0:
            raise ValueError("margin must be >= 1.0")
        sl = self._segment_slice(segment)
        total_t = 0.0
        for _ in range(max_pulses):
            crossings = self.array.erase_crossing_times_us(sl)
            t_pulse = max(float(crossings.max()) * margin, 10.0)
            self.array.erase_pulse(sl, t_pulse)
            total_t += t_pulse
            verify = self.array.read_bits(sl, n_reads=1)
            self.trace.charge(
                "erase_verify_read",
                self.timing.segment_read_time_us(
                    self.geometry.words_per_segment
                ),
                address=self.geometry.segment_base(segment),
            )
            if verify.all():
                break
        self.trace.charge(
            "erase_until_clean",
            self.timing.t_cmd_overhead_us
            + total_t
            + self.timing.t_abort_overhead_us,
            address=self.geometry.segment_base(segment),
            energy_uj=self.timing.e_erase_uj
            * min(1.0, total_t / self.timing.t_erase_us),
        )
        if self.telemetry is not None:
            self.telemetry.observe("device.erase_until_clean_us", total_t)
        return total_t

    # -- read ---------------------------------------------------------------

    def read_word(self, address: int, n_reads: int = 1) -> int:
        """Read one word (majority vote over ``n_reads`` if > 1)."""
        try:
            sl = self.geometry.word_bit_slice(address)
        except ValueError as exc:
            raise FlashAddressError(str(exc)) from None
        bits = self.array.read_bits(sl, n_reads=n_reads)
        self.trace.charge(
            "read_word",
            n_reads * self.timing.t_read_word_us,
            address=address,
            energy_uj=n_reads * self.timing.e_read_word_uj,
        )
        return bits_to_word(bits)

    def read_segment_bits(self, segment: int, n_reads: int = 1) -> np.ndarray:
        """Read all bits of a segment (flat uint8 vector, 1 = erased)."""
        sl = self._segment_slice(segment)
        bits = self.array.read_bits(sl, n_reads=n_reads)
        n_words = self.geometry.words_per_segment
        self.trace.charge(
            "read_segment",
            self.timing.segment_read_time_us(n_words, n_reads=n_reads),
            address=self.geometry.segment_base(segment),
            energy_uj=n_reads * n_words * self.timing.e_read_word_uj,
        )
        return bits

    def read_segment_words(self, segment: int, n_reads: int = 1) -> np.ndarray:
        """Read a segment as a vector of word values."""
        bits = self.read_segment_bits(segment, n_reads=n_reads)
        return bits_to_words(bits, self.geometry.bits_per_word)

    # -- bulk fast path -------------------------------------------------------

    def bulk_pe_cycles(
        self,
        segment: int,
        pattern_bits: np.ndarray,
        n_cycles: int,
        accelerated: bool = False,
    ) -> None:
        """Charge ``n_cycles`` [erase; program pattern] cycles in one call.

        Physically exact (delegates to :meth:`NorFlashArray.bulk_stress`)
        and charges the same device time the explicit loop would:
        ``n_cycles * (T_ERASE + block-write)`` for the baseline, or the
        integrated premature-exit erase times when ``accelerated``.
        """
        self._require_unlocked()
        if n_cycles < 0:
            raise ValueError("n_cycles must be non-negative")
        if n_cycles == 0:
            return
        sl = self._segment_slice(segment)
        pattern_bits = np.asarray(pattern_bits, dtype=np.uint8)
        if accelerated:
            erase_time_us = self._accelerated_erase_time_us(
                sl, pattern_bits, n_cycles
            )
            per_cycle_overhead = self.timing.segment_read_time_us(
                self.geometry.words_per_segment
            )
            erase_time_us += n_cycles * per_cycle_overhead
        else:
            erase_time_us = n_cycles * self.timing.t_erase_us
        self.array.bulk_stress(sl, pattern_bits, n_cycles)
        program_time = self.timing.segment_program_time_us(
            self.geometry.words_per_segment, block=True
        )
        total = n_cycles * (
            2 * self.timing.t_cmd_overhead_us + program_time
        ) + erase_time_us
        self.trace.charge(
            "bulk_pe_cycles",
            total,
            address=self.geometry.segment_base(segment),
            energy_uj=n_cycles
            * (
                self.timing.e_erase_uj
                * (erase_time_us / n_cycles / self.timing.t_erase_us if accelerated else 1.0)
                + self.geometry.words_per_segment
                * self.timing.e_program_word_uj
            ),
            count=n_cycles,
        )
        if self.telemetry is not None:
            self.telemetry.count("device.bulk_pe_cycles", n_cycles)
            self.telemetry.observe("device.bulk_pe_batch", float(n_cycles))

    def _accelerated_erase_time_us(
        self, sl: slice, pattern_bits: np.ndarray, n_cycles: int
    ) -> float:
        """Total erase time of ``n_cycles`` premature-exit erases [us].

        The slowest cell's crossing time grows as wear accumulates, so
        the per-cycle erase time is integrated over the cycle count on a
        logarithmic grid (the growth law is smooth and monotone).
        """
        from ..phys.erase import crossing_time_us as _crossing
        from ..phys.wear import tau_wear_multiplier as _mult

        cellp = self.array.params.cell
        wearp = self.array.params.wear
        stressed = np.asarray(pattern_bits) == 0
        if not np.any(stressed):
            # Nothing is ever programmed; each erase costs the fresh
            # crossing time of the slowest cell plus margin.
            crossings = self.array.erase_crossing_times_us(sl)
            return float(n_cycles * max(2.0 * crossings.max(), 10.0))
        idx = np.flatnonzero(stressed) + sl.start
        tau0 = self.array.static.tau0_us[idx]
        suscept = self.array.static.wear_susceptibility[idx]
        vth_p = self.array.static.vth_programmed[idx]
        base_pc = self.array.program_cycles[idx]
        base_eo = self.array.erase_only_cycles[idx]

        grid = np.unique(
            np.concatenate(
                [
                    np.array([1.0]),
                    np.geomspace(1.0, float(n_cycles), num=64),
                    np.array([float(n_cycles)]),
                ]
            )
        )
        from ..phys.wear import programmed_level_shift as _shift

        t_max = np.empty_like(grid)
        for i, k in enumerate(grid):
            n_eff = (
                base_pc + k + wearp.erase_only_fraction * (base_eo + 1.0)
            )
            tau = tau0 * _mult(n_eff, suscept, wearp)
            crossings = _crossing(
                vth_p + _shift(n_eff, wearp, suscept),
                cellp.v_ref,
                tau,
                cellp.erase_slope_v_per_decade,
            )
            t_max[i] = 2.0 * crossings.max()  # margin factor 2
        # Integrate per-cycle cost over cycles via the trapezoid rule.
        return float(trapezoid(t_max, grid))
