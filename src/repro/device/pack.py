"""Packing helpers between flash words and flat bit arrays.

The cell arrays index bits flat and LSB-first within each word: bit ``i``
of the word at byte address ``a`` lives at flat index ``a * 8 + i``.
These helpers convert between numpy bit vectors (uint8, 1 = erased) and
word values, both scalar and vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = ["word_to_bits", "bits_to_word", "words_to_bits", "bits_to_words"]


def word_to_bits(value: int, bits_per_word: int) -> np.ndarray:
    """Expand one word value into an LSB-first uint8 bit vector."""
    if not 0 <= value < (1 << bits_per_word):
        raise ValueError(
            f"value 0x{value:X} does not fit in {bits_per_word} bits"
        )
    return ((value >> np.arange(bits_per_word)) & 1).astype(np.uint8)


def bits_to_word(bits: np.ndarray) -> int:
    """Pack an LSB-first bit vector into a word value."""
    bits = np.asarray(bits, dtype=np.uint64)
    return int((bits << np.arange(bits.size, dtype=np.uint64)).sum())


def words_to_bits(words: np.ndarray, bits_per_word: int) -> np.ndarray:
    """Expand a vector of word values into one flat LSB-first bit vector."""
    words = np.asarray(words, dtype=np.uint64)
    if words.size and int(words.max()) >= (1 << bits_per_word):
        raise ValueError(f"word values exceed {bits_per_word} bits")
    shifts = np.arange(bits_per_word, dtype=np.uint64)
    return ((words[:, None] >> shifts[None, :]) & 1).astype(np.uint8).ravel()


def bits_to_words(bits: np.ndarray, bits_per_word: int) -> np.ndarray:
    """Pack a flat LSB-first bit vector into a vector of word values."""
    bits = np.asarray(bits, dtype=np.uint64)
    if bits.size % bits_per_word != 0:
        raise ValueError(
            f"bit vector length {bits.size} is not a multiple of "
            f"{bits_per_word}"
        )
    shaped = bits.reshape(-1, bits_per_word)
    shifts = np.arange(bits_per_word, dtype=np.uint64)
    return (shaped << shifts[None, :]).sum(axis=1)
