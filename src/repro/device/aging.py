"""Chip aging: unpowered shelf time and its effect on stored charge.

Applies the :mod:`repro.phys.retention` loss model to a whole die:
programmed cells leak floating-gate charge over storage time, faster on
worn cells.  Two facts matter for Flashmark:

* **stored data degrades** — worn (e.g. recycled) chips lose retention
  margin, which is one of the end-user failure modes counterfeits cause
  (Section I);
* **the watermark does not** — extraction re-erases and re-programs the
  segment before the partial erase, so it senses oxide *wear*, not
  stored charge.  Aging a chip for years leaves the watermark intact,
  which the aging benchmark demonstrates.
"""

from __future__ import annotations

import numpy as np

from ..phys.retention import RetentionParams, retention_loss_v
from .mcu import Microcontroller

__all__ = ["age_chip", "data_retention_margin_v"]


def age_chip(
    chip: Microcontroller,
    hours: float,
    retention: RetentionParams = RetentionParams(),
) -> None:
    """Advance ``hours`` of unpowered shelf time on a chip.

    Threshold voltages of charged cells decay along the wear-accelerated
    log-time law; fully erased cells sit at their floor and are
    unaffected.  The device clock also advances (it measures elapsed
    device time, powered or not).
    """
    if hours < 0:
        raise ValueError("shelf time must be non-negative")
    if hours == 0:
        return
    array = chip.array
    sl = slice(0, chip.geometry.total_bits)
    loss = retention_loss_v(hours, array.n_effective(sl), retention)
    array.vth[sl] = np.maximum(
        array.vth[sl] - loss, array.static.vth_erased[sl]
    )
    chip.trace.charge("shelf_time", hours * 3_600e6, count=1)


def data_retention_margin_v(chip: Microcontroller, segment: int) -> float:
    """Worst-case margin of stored 0-bits above the read reference [V].

    Negative means at least one programmed cell has leaked below the
    reference and now reads erased — i.e. stored data has bit-flipped.
    """
    sl = chip.geometry.segment_bit_slice(segment)
    programmed = chip.array.programmed_since_erase[sl]
    if not programmed.any():
        raise ValueError(
            f"segment {segment} holds no programmed cells to measure"
        )
    vth = chip.array.vth[sl][programmed]
    return float(vth.min() - chip.params.cell.v_ref)
