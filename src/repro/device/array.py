"""Vectorised NOR flash cell array: the physics state of a simulated die.

This module holds, for every cell of a die, the evolving physical state
(threshold voltage, wear counters) plus the static manufacture-time
parameters, and implements the physical effect of the three primitive
flash operations — program, erase pulse (full or aborted), read — as
whole-slice numpy operations.

The array knows nothing about command timing, registers or protection;
that is the :class:`~repro.device.controller.FlashController`'s job.
Slices are flat bit-index slices produced by
:meth:`~repro.device.geometry.FlashGeometry.segment_bit_slice` and
friends; bit values use the flash convention (1 = erased/conducting,
0 = programmed/non-conducting).
"""

from __future__ import annotations

import copy as _copy
from typing import Optional

import numpy as np

from ..phys.constants import PhysicalParams
from ..phys.erase import apply_erase_transient, crossing_time_us
from ..phys.program import apply_program_transient
from ..phys.variation import StaticCellLot, sample_static_cells
from ..phys.wear import (
    effective_cycles,
    programmed_level_shift,
    tau_wear_multiplier,
)
from .geometry import FlashGeometry

__all__ = ["NorFlashArray"]


class NorFlashArray:
    """Physics state of every cell in a simulated NOR flash die.

    Parameters
    ----------
    geometry:
        Array dimensions.
    params:
        Physical model parameters.
    rng:
        Random generator used for the manufacture-time draw and for all
        per-operation noise.  Two arrays built with generators seeded
        identically are indistinguishable.
    """

    def __init__(
        self,
        geometry: FlashGeometry,
        params: PhysicalParams,
        rng: np.random.Generator,
    ):
        self.geometry = geometry
        self.params = params
        self.rng = rng
        n = geometry.total_bits
        self.static: StaticCellLot = sample_static_cells(n, params, rng)
        #: Current threshold voltage per cell [V]; dies ship erased.
        self.vth: np.ndarray = self.static.vth_erased.copy()
        #: Completed program operations per cell.
        self.program_cycles: np.ndarray = np.zeros(n, dtype=np.float64)
        #: Erase pulses seen while the cell held no programmed charge.
        self.erase_only_cycles: np.ndarray = np.zeros(n, dtype=np.float64)
        #: True if the cell was programmed since the last erase pulse.
        self.programmed_since_erase: np.ndarray = np.zeros(n, dtype=bool)
        #: Junction temperature [deg C]; erase transients speed up when
        #: hot (see ``CellParams.erase_temp_coefficient_per_k``).
        self.temperature_c: float = params.cell.nominal_temperature_c

    # -- derived quantities -------------------------------------------

    def n_effective(self, sl: slice) -> np.ndarray:
        """Effective stress-cycle count for the cells in ``sl``."""
        return effective_cycles(
            self.program_cycles[sl],
            self.erase_only_cycles[sl],
            self.params.wear,
        )

    def current_tau_us(self, sl: slice) -> np.ndarray:
        """Wear- and temperature-adjusted erase time constant [us].

        Jitter-free; hot dies erase faster (tau shrinks) along an
        Arrhenius-like law around the calibration temperature.
        """
        mult = tau_wear_multiplier(
            self.n_effective(sl),
            self.static.wear_susceptibility[sl],
            self.params.wear,
        )
        cell = self.params.cell
        temp_factor = np.exp(
            -cell.erase_temp_coefficient_per_k
            * (self.temperature_c - cell.nominal_temperature_c)
        )
        return self.static.tau0_us[sl] * mult * temp_factor

    def erase_crossing_times_us(self, sl: slice) -> np.ndarray:
        """Partial-erase time at which each cell would read erased [us].

        Computed from the *current* threshold voltage with the jitter-free
        time constant; cells already reading erased return 0.
        """
        return crossing_time_us(
            self.vth[sl],
            self.params.cell.v_ref,
            self.current_tau_us(sl),
            self.params.cell.erase_slope_v_per_decade,
        )

    # -- primitive operations -------------------------------------------

    def program_bits(self, sl: slice, pattern: np.ndarray) -> None:
        """Program the cells of ``sl`` whose ``pattern`` bit is 0.

        Flash programming only moves bits from 1 to 0: pattern-1 cells
        are left untouched (whatever their current state), pattern-0
        cells are charged to their programmed level.
        """
        pattern = np.asarray(pattern)
        n = sl.stop - sl.start
        if pattern.shape != (n,):
            raise ValueError(
                f"pattern length {pattern.shape} does not match slice ({n},)"
            )
        target = pattern == 0
        if not np.any(target):
            return
        idx = np.flatnonzero(target) + sl.start
        self.program_cycles[idx] += 1.0
        n_eff = effective_cycles(
            self.program_cycles[idx],
            self.erase_only_cycles[idx],
            self.params.wear,
        )
        shift = programmed_level_shift(
            n_eff, self.params.wear, self.static.wear_susceptibility[idx]
        )
        noise_sigma = self.params.noise.program_sigma_v
        noise = (
            self.rng.normal(0.0, noise_sigma, size=idx.size)
            if noise_sigma > 0.0
            else 0.0
        )
        self.vth[idx] = self.static.vth_programmed[idx] + shift + noise
        self.programmed_since_erase[idx] = True

    def partial_program_bits(
        self, sl: slice, pattern: np.ndarray, t_us: float
    ) -> None:
        """Program pattern-0 cells with a pulse of only ``t_us`` [us].

        Shorter pulses than the nominal full program time leave cells
        partially charged — the sweeping-partial-program sensing knob of
        the FFD recycled-chip detector ([6]) and of flash TRNGs ([15]).
        Wear is charged fractionally (``t / t_full`` of a program
        cycle); programming never lowers a threshold voltage.
        """
        if t_us < 0:
            raise ValueError("program duration must be non-negative")
        pattern = np.asarray(pattern)
        n = sl.stop - sl.start
        if pattern.shape != (n,):
            raise ValueError(
                f"pattern length {pattern.shape} does not match slice ({n},)"
            )
        target = pattern == 0
        if not np.any(target) or t_us == 0:
            return
        cell = self.params.cell
        fraction = min(1.0, t_us / cell.program_t_full_us)
        idx = np.flatnonzero(target) + sl.start
        self.program_cycles[idx] += fraction
        n_eff = effective_cycles(
            self.program_cycles[idx],
            self.erase_only_cycles[idx],
            self.params.wear,
        )
        shift = programmed_level_shift(
            n_eff, self.params.wear, self.static.wear_susceptibility[idx]
        )
        sigma = self.params.noise.program_sigma_v
        noise = (
            self.rng.normal(0.0, sigma, size=idx.size)
            if sigma > 0.0
            else 0.0
        )
        full_target = self.static.vth_programmed[idx] + shift + noise
        self.vth[idx] = apply_program_transient(
            self.vth[idx],
            full_target,
            t_us,
            cell.program_t_full_us,
            cell.program_tau_us,
        )
        self.programmed_since_erase[idx] = True

    def erase_pulse(self, sl: slice, t_us: float) -> None:
        """Apply the erase voltage to all cells of ``sl`` for ``t_us``.

        A full erase uses the nominal erase time (long enough for every
        cell to reach its erased floor); Flashmark's partial erase aborts
        after a few tens of microseconds, freezing the transient.
        """
        n = sl.stop - sl.start
        jitter_sigma = self.params.noise.erase_jitter_sigma
        tau = self.current_tau_us(sl)
        if jitter_sigma > 0.0:
            tau = tau * self.rng.lognormal(0.0, jitter_sigma, size=n)
        self.vth[sl] = apply_erase_transient(
            self.vth[sl],
            t_us,
            tau,
            self.static.vth_erased[sl],
            self.params.cell.erase_slope_v_per_decade,
        )
        # Erase-only damage applies to cells that held no programmed
        # charge (far lower tunnelling current when the gate is empty).
        unprogrammed = ~self.programmed_since_erase[sl]
        self.erase_only_cycles[sl] += unprogrammed
        self.programmed_since_erase[sl] = False

    def read_bits(self, sl: slice, n_reads: int = 1) -> np.ndarray:
        """Sense the cells of ``sl``; returns uint8 bits (1 = erased).

        With ``n_reads > 1`` (odd), each cell's value is the majority
        vote over independent reads — the AnalyzeSegment behaviour of the
        paper's Fig. 3.
        """
        if n_reads < 1 or n_reads % 2 == 0:
            raise ValueError("n_reads must be a positive odd number")
        n = sl.stop - sl.start
        sigma = self.params.noise.read_sigma_v
        v_ref = self.params.cell.v_ref
        if sigma == 0.0:
            bits = (self.vth[sl] < v_ref).astype(np.uint8)
        else:
            noise = self.rng.normal(0.0, sigma, size=(n_reads, n))
            ones = np.count_nonzero(
                self.vth[sl] + noise < v_ref, axis=0
            )
            bits = (ones > n_reads // 2).astype(np.uint8)
        disturb = self.params.noise.read_disturb_v_per_read
        if disturb > 0.0:
            # Weak programming of the sensed cells: thresholds creep up,
            # bounded by the programmed target level.
            self.vth[sl] = np.minimum(
                self.vth[sl] + disturb * n_reads,
                self.static.vth_programmed[sl],
            )
        return bits

    # -- bulk fast path ---------------------------------------------------

    def bulk_stress(
        self, sl: slice, pattern: np.ndarray, n_cycles: int
    ) -> None:
        """Apply ``n_cycles`` iterations of [full erase; program pattern].

        Exactly equivalent (in wear counters and, with noise disabled, in
        final threshold voltages) to calling :meth:`erase_pulse` +
        :meth:`program_bits` in a loop, but O(cells) instead of
        O(cells x cycles).  This is what makes 100 K-cycle imprints and
        multi-point sweeps tractable; ``ImprintFlashmark`` uses it unless
        asked to simulate cycle by cycle.

        The loop ends, like the paper's Fig. 7, with the pattern
        programmed into the segment.
        """
        if n_cycles < 0:
            raise ValueError("n_cycles must be non-negative")
        if n_cycles == 0:
            return
        pattern = np.asarray(pattern)
        n = sl.stop - sl.start
        if pattern.shape != (n,):
            raise ValueError(
                f"pattern length {pattern.shape} does not match slice ({n},)"
            )
        programmed_bits = pattern == 0  # stressed, "bad" cells
        erased_bits = ~programmed_bits  # untouched, "good" cells

        # Wear accounting, matching the loop semantics exactly:
        # cycle 1's erase charges an erase-only cycle to every cell that
        # was not programmed on entry; afterwards, pattern-0 cells are
        # always programmed when the erase hits, pattern-1 cells never are.
        first_erase_counts = ~self.programmed_since_erase[sl]
        self.erase_only_cycles[sl][first_erase_counts] += 1.0
        eo = self.erase_only_cycles[sl]
        eo[erased_bits] += float(n_cycles - 1)
        self.erase_only_cycles[sl] = eo
        pc = self.program_cycles[sl]
        pc[programmed_bits] += float(n_cycles)
        self.program_cycles[sl] = pc

        # Final state: pattern programmed (last loop operation).
        idx_all = np.arange(sl.start, sl.stop)
        idx_p = idx_all[programmed_bits]
        idx_e = idx_all[erased_bits]
        if idx_p.size:
            n_eff = effective_cycles(
                self.program_cycles[idx_p],
                self.erase_only_cycles[idx_p],
                self.params.wear,
            )
            shift = programmed_level_shift(
                n_eff,
                self.params.wear,
                self.static.wear_susceptibility[idx_p],
            )
            sigma = self.params.noise.program_sigma_v
            noise = (
                self.rng.normal(0.0, sigma, size=idx_p.size)
                if sigma > 0.0
                else 0.0
            )
            self.vth[idx_p] = self.static.vth_programmed[idx_p] + shift + noise
        if idx_e.size:
            self.vth[idx_e] = self.static.vth_erased[idx_e]
        flags = self.programmed_since_erase[sl]
        flags[programmed_bits] = True
        flags[erased_bits] = False
        self.programmed_since_erase[sl] = flags

    # -- lifecycle -------------------------------------------------------

    def copy(self, rng: Optional[np.random.Generator] = None) -> "NorFlashArray":
        """Deep copy of the die (state and static parameters).

        Useful for what-if experiments: fork a die, run two different
        procedures, compare.  Pass ``rng`` to decorrelate the copies'
        future noise; by default the copy gets an independent generator
        spawned from this one's bit stream.
        """
        clone = _copy.copy(self)
        clone.temperature_c = self.temperature_c
        clone.vth = self.vth.copy()
        clone.program_cycles = self.program_cycles.copy()
        clone.erase_only_cycles = self.erase_only_cycles.copy()
        clone.programmed_since_erase = self.programmed_since_erase.copy()
        clone.rng = rng if rng is not None else np.random.default_rng(
            self.rng.integers(0, 2**63)
        )
        return clone
