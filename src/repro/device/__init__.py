"""Simulated flash devices: the substrate Flashmark runs on.

This package provides the digital side of the reproduction — everything
the paper's procedures touch through "standard system commands":

* :class:`NorFlashArray` — vectorised per-cell physics state;
* :class:`FlashController` — program / erase / partial-erase / read
  command surface with datasheet timing;
* :class:`FlashRegisterFile` — the MSP430 register-level programming
  model (FCTL1/FCTL3, BUSY, EMEX emergency exit);
* :class:`Microcontroller` / :func:`make_mcu` — whole simulated chips;
* :class:`SpiNorFlash` — stand-alone JEDEC SPI NOR chip;
* :class:`NandFlash` — SLC NAND variant (reset-aborted erase).
"""

from .aging import age_chip, data_retention_margin_v
from .array import NorFlashArray
from .controller import FlashController
from .errors import (
    FlashAddressError,
    FlashBusyError,
    FlashCommandError,
    FlashError,
    FlashLockedError,
)
from .geometry import (
    MSP430F5438_GEOMETRY,
    MSP430F5529_GEOMETRY,
    FlashGeometry,
)
from .mcu import SUPPORTED_MODELS, McuFactory, Microcontroller, make_mcu
from .persistence import (
    CHIP_FILE_VERSION,
    ChipPersistenceError,
    chip_from_bytes,
    chip_to_bytes,
    load_chip,
    save_chip,
)
from .mlc import MLC_GEOMETRY, MLC_LEVELS_V, MLC_READ_REFS_V, MlcNorFlash
from .nand import NAND_GEOMETRY, NandFlash
from .pack import bits_to_word, bits_to_words, word_to_bits, words_to_bits
from .population import ChipPopulation, PopulationReadout
from .registers import (
    BLKWRT,
    BUSY,
    EMEX,
    ERASE,
    FCTL1,
    FCTL3,
    FRKEY,
    FWKEY,
    KEYV,
    LOCK,
    MERAS,
    WRT,
    FlashRegisterFile,
)
from .spi_nor import SPI_NOR_GEOMETRY, SpiNorFlash
from .timing import (
    FAST_SPI_NOR_TIMING,
    MSP430F5438_TIMING,
    SLC_NAND_TIMING,
    TimingProfile,
)
from .tracing import OperationTrace, TraceEvent

__all__ = [
    "NorFlashArray",
    "age_chip",
    "data_retention_margin_v",
    "save_chip",
    "load_chip",
    "chip_to_bytes",
    "chip_from_bytes",
    "ChipPersistenceError",
    "CHIP_FILE_VERSION",
    "FlashController",
    "FlashRegisterFile",
    "Microcontroller",
    "ChipPopulation",
    "PopulationReadout",
    "McuFactory",
    "make_mcu",
    "SUPPORTED_MODELS",
    "SpiNorFlash",
    "NandFlash",
    "MlcNorFlash",
    "MLC_GEOMETRY",
    "MLC_LEVELS_V",
    "MLC_READ_REFS_V",
    "FlashGeometry",
    "MSP430F5438_GEOMETRY",
    "MSP430F5529_GEOMETRY",
    "SPI_NOR_GEOMETRY",
    "NAND_GEOMETRY",
    "TimingProfile",
    "MSP430F5438_TIMING",
    "FAST_SPI_NOR_TIMING",
    "SLC_NAND_TIMING",
    "OperationTrace",
    "TraceEvent",
    "FlashError",
    "FlashAddressError",
    "FlashBusyError",
    "FlashCommandError",
    "FlashLockedError",
    "word_to_bits",
    "bits_to_word",
    "words_to_bits",
    "bits_to_words",
    "FCTL1",
    "FCTL3",
    "WRT",
    "BLKWRT",
    "ERASE",
    "MERAS",
    "BUSY",
    "KEYV",
    "LOCK",
    "EMEX",
    "FWKEY",
    "FRKEY",
]
