"""Exception hierarchy of the flash device simulator."""

from __future__ import annotations

__all__ = [
    "FlashError",
    "FlashAddressError",
    "FlashBusyError",
    "FlashLockedError",
    "FlashCommandError",
]


class FlashError(Exception):
    """Base class for all flash device simulation errors."""


class FlashAddressError(FlashError, ValueError):
    """An address, segment index or word index is out of range."""


class FlashBusyError(FlashError):
    """A command was issued while a flash operation was in flight.

    On the real microcontroller, accessing flash while BUSY is set leads
    to unpredictable behaviour; the simulator turns it into a hard error.
    """


class FlashLockedError(FlashError):
    """A program/erase command was issued while the LOCK bit was set."""


class FlashCommandError(FlashError, ValueError):
    """A malformed or unsupported controller command."""
