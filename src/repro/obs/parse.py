"""Parse Prometheus text exposition back into typed samples.

The inverse of :func:`repro.telemetry.prometheus.render_prometheus`:
the scraper pulls ``/metrics`` off every shard and this module turns
the text back into :class:`Sample` values the tsdb can store — names,
sorted label tuples, float values, and OpenMetrics exemplar clauses
(``... # {trace_id="..."} 0.048 1754650000.1``).

Deliberately lenient about what it accepts (unknown comment lines,
missing TYPE declarations, extra whitespace) and strict about what it
produces: every sample's labels are a canonical sorted tuple so that
set comparisons — the round-trip property test — are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Sample",
    "ParsedMetrics",
    "parse_prometheus_text",
    "parse_labels",
    "assemble_histogram",
]


@dataclass(frozen=True)
class Sample:
    """One exposition sample: ``name{labels} value`` (+ exemplar)."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float
    #: ``{"labels": {...}, "value": float, "unix_s": float|None}`` from
    #: an OpenMetrics exemplar clause, or None.
    exemplar: Optional[dict] = None

    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def label(self, key: str, default: str = "") -> str:
        for k, v in self.labels:
            if k == key:
                return v
        return default


@dataclass
class ParsedMetrics:
    """All samples from one exposition body, plus declared TYPEs."""

    samples: List[Sample] = field(default_factory=list)
    types: Dict[str, str] = field(default_factory=dict)

    def names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self.samples:
            seen.setdefault(s.name, None)
        return list(seen)

    def get(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> List[Sample]:
        """Samples for ``name`` whose labels include ``labels``."""
        want = (labels or {}).items()
        return [
            s
            for s in self.samples
            if s.name == name
            and all(s.label(k, None) == v for k, v in want)
        ]

    def value(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[float]:
        found = self.get(name, labels)
        return found[0].value if found else None


def _parse_value(token: str) -> float:
    low = token.lower()
    if low in ("+inf", "inf"):
        return math.inf
    if low == "-inf":
        return -math.inf
    if low == "nan":
        return math.nan
    return float(token)


def parse_labels(text: str) -> Dict[str, str]:
    """Parse the inside of a ``{...}`` label block (escapes honored)."""
    labels: Dict[str, str] = {}
    i, n = 0, len(text)
    while i < n:
        while i < n and text[i] in ", \t":
            i += 1
        if i >= n:
            break
        eq = text.index("=", i)
        key = text[i:eq].strip()
        i = eq + 1
        if i >= n or text[i] != '"':
            raise ValueError(f"unquoted label value in {text!r}")
        i += 1
        out: List[str] = []
        while i < n and text[i] != '"':
            c = text[i]
            if c == "\\" and i + 1 < n:
                nxt = text[i + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                i += 2
            else:
                out.append(c)
                i += 1
        if i >= n:
            raise ValueError(f"unterminated label value in {text!r}")
        i += 1  # closing quote
        labels[key] = "".join(out)
    return labels


def _parse_sample_body(
    body: str,
) -> Tuple[str, Dict[str, str], float]:
    """Parse ``name[{labels}] value [timestamp]`` (timestamp ignored)."""
    body = body.strip()
    brace = body.find("{")
    space = body.find(" ")
    if brace >= 0 and (space < 0 or brace < space):
        name = body[:brace]
        # Quote-aware scan to the matching close brace.
        i, n = brace + 1, len(body)
        in_quotes = False
        while i < n:
            c = body[i]
            if c == "\\" and in_quotes:
                i += 2
                continue
            if c == '"':
                in_quotes = not in_quotes
            elif c == "}" and not in_quotes:
                break
            i += 1
        if i >= n:
            raise ValueError(f"unterminated label block in {body!r}")
        labels = parse_labels(body[brace + 1 : i])
        rest = body[i + 1 :].split()
    else:
        labels = {}
        parts = body.split()
        name, rest = parts[0], parts[1:]
    if not rest:
        raise ValueError(f"sample line missing value: {body!r}")
    return name, labels, _parse_value(rest[0])


def _parse_exemplar(text: str) -> dict:
    """Parse ``{labels} value [timestamp]`` after a ``# `` marker."""
    text = text.strip()
    if not text.startswith("{"):
        raise ValueError(f"exemplar must start with '{{': {text!r}")
    end = text.index("}")
    labels = parse_labels(text[1:end])
    rest = text[end + 1 :].split()
    if not rest:
        raise ValueError(f"exemplar missing value: {text!r}")
    exemplar = {
        "labels": labels,
        "value": _parse_value(rest[0]),
        "unix_s": _parse_value(rest[1]) if len(rest) > 1 else None,
    }
    return exemplar


def _split_exemplar(line: str) -> Tuple[str, Optional[str]]:
    """Split a sample line from its exemplar clause, if any.

    The ``#`` can only introduce an exemplar outside a quoted label
    value, so scan with quote tracking rather than a plain find.
    """
    in_quotes = False
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "\\" and in_quotes:
            i += 2
            continue
        if c == '"':
            in_quotes = not in_quotes
        elif c == "#" and not in_quotes:
            return line[:i], line[i + 1 :]
        i += 1
    return line, None


def parse_prometheus_text(text: str) -> ParsedMetrics:
    """Parse one ``/metrics`` body into :class:`ParsedMetrics`."""
    parsed = ParsedMetrics()
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                parsed.types[parts[2]] = parts[3].strip()
            continue
        body, exemplar_text = _split_exemplar(line)
        try:
            name, labels, value = _parse_sample_body(body)
            exemplar = (
                _parse_exemplar(exemplar_text)
                if exemplar_text is not None
                else None
            )
        except (ValueError, IndexError):
            continue  # lenient: skip malformed lines
        parsed.samples.append(
            Sample(
                name=name,
                labels=tuple(sorted(labels.items())),
                value=value,
                exemplar=exemplar,
            )
        )
    return parsed


def assemble_histogram(
    samples: Iterable[Sample],
    base: str,
    labels: Optional[Dict[str, str]] = None,
) -> Optional[dict]:
    """Rebuild one histogram from its ``_bucket``/``_count``/``_sum``
    samples.

    Returns ``{"buckets": [finite bounds], "cumulative": [counts],
    "count": n, "sum": s, "exemplars": [..]}`` — the shape the tsdb
    query layer and the report's quantile math consume — or None when
    no bucket samples match.
    """
    want = (labels or {}).items()
    bounds: List[Tuple[float, int, Optional[dict]]] = []
    count = None
    total = None
    for s in samples:
        if not all(s.label(k, None) == v for k, v in want):
            continue
        if s.name == f"{base}_bucket":
            le = s.label("le")
            bounds.append((_parse_value(le), int(s.value), s.exemplar))
        elif s.name == f"{base}_count":
            count = int(s.value)
        elif s.name == f"{base}_sum":
            total = s.value
    if not bounds:
        return None
    bounds.sort(key=lambda item: item[0])
    finite = [b for b in bounds if not math.isinf(b[0])]
    inf = [b for b in bounds if math.isinf(b[0])]
    if count is None and inf:
        count = inf[0][1]
    return {
        "buckets": [b[0] for b in finite],
        "cumulative": [b[1] for b in finite]
        + ([inf[0][1]] if inf else []),
        "count": count if count is not None else 0,
        "sum": total if total is not None else 0.0,
        "exemplars": [b[2] for b in bounds if b[2] is not None],
    }
