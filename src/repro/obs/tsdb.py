"""``flashmark.tsdb/v1`` — append-only JSONL time-series store.

The scrape loop needs durable, greppable history without a database
dependency, so the store borrows the :class:`~repro.telemetry.JsonlSink`
discipline wholesale: every write is an appended JSON line, every
metadata update is a temp-file ``os.replace`` (atomic on POSIX), and
nothing is ever rewritten in place except by compaction, which also
goes through ``os.replace``.

Layout (all paths under the store root)::

    meta.json                              store identity + window size
    segments/<metric>/<window>.jsonl       one segment per time window
    segments/<metric>/index.json           window -> {n, t_min, t_max}

``<window>`` is the integer unix second the window starts at
(``int(t // window_s) * window_s``), so segment selection for a range
query is pure filename arithmetic even when the index is stale.  One
record per line: ``{"t": unix_s, "v": value, "l": {labels}}`` plus
``"x": {exemplar}`` when the scraped sample carried one.

Retention and compaction: :meth:`TimeSeriesStore.compact` rewrites
closed windows time-sorted (idempotent) and drops the oldest windows
beyond ``retention_windows`` — segment rotation is just starting a new
window file, so the active segment is never touched.

The query layer answers the questions the fleet report and
``repro obs query`` ask: range and instant queries, counter ``rate()``
with reset handling, and cross-shard ``sum``/``max`` rollups grouped by
label (each scrape target lands under its own ``target`` label).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .parse import Sample

__all__ = ["TSDB_SCHEMA", "Point", "TimeSeriesStore"]

TSDB_SCHEMA = "flashmark.tsdb/v1"

_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:-"
)

LabelKey = Tuple[Tuple[str, str], ...]


def _safe_name(metric: str) -> str:
    out = "".join(c if c in _SAFE else "_" for c in metric)
    return out or "_"


def _atomic_write_json(path: Path, doc: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


@dataclass(frozen=True)
class Point:
    """One stored observation of one series."""

    t: float
    value: float
    labels: LabelKey
    exemplar: Optional[dict] = None

    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def label(self, key: str, default: str = "") -> str:
        for k, v in self.labels:
            if k == key:
                return v
        return default


class TimeSeriesStore:
    """Append-only time-series store (schema ``flashmark.tsdb/v1``)."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        window_s: float = 300.0,
        retention_windows: int = 0,
    ):
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if retention_windows < 0:
            raise ValueError("retention_windows must be >= 0 (0: keep all)")
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self.retention_windows = int(retention_windows)
        meta_path = self.root / "meta.json"
        if meta_path.exists():
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
            if meta.get("schema") != TSDB_SCHEMA:
                raise ValueError(
                    f"{self.root} is not a {TSDB_SCHEMA} store "
                    f"(schema={meta.get('schema')!r})"
                )
            # The on-disk window size wins: segment filenames already
            # encode it.
            self.window_s = float(meta["window_s"])
        else:
            self.window_s = float(window_s)
            _atomic_write_json(
                meta_path,
                {
                    "schema": TSDB_SCHEMA,
                    "window_s": self.window_s,
                    "created_unix_s": time.time(),
                },
            )
        #: (metric, window_start) -> list of pending record dicts.
        self._pending: Dict[Tuple[str, int], List[dict]] = {}
        self._n_pending = 0

    # -- write path --------------------------------------------------------

    def window_start(self, t: float) -> int:
        return int(t // self.window_s * self.window_s)

    def append(
        self,
        metric: str,
        value: float,
        *,
        t: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
        exemplar: Optional[dict] = None,
    ) -> None:
        """Buffer one observation (written on :meth:`flush`)."""
        t = float(t) if t is not None else time.time()
        rec = {"t": t, "v": float(value), "l": dict(labels or {})}
        if exemplar is not None:
            rec["x"] = exemplar
        key = (metric, self.window_start(t))
        self._pending.setdefault(key, []).append(rec)
        self._n_pending += 1

    def append_samples(
        self,
        samples: Iterable[Sample],
        *,
        t: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> int:
        """Buffer a parsed scrape, merging ``labels`` (e.g. the scrape
        target) into every sample's own labels."""
        t = float(t) if t is not None else time.time()
        extra = dict(labels or {})
        n = 0
        for sample in samples:
            merged = dict(sample.labels)
            merged.update(extra)
            self.append(
                sample.name,
                sample.value,
                t=t,
                labels=merged,
                exemplar=sample.exemplar,
            )
            n += 1
        return n

    def flush(self) -> int:
        """Write buffered records to their segment files; update
        indexes atomically.  Returns the number of records written."""
        written = 0
        touched: Dict[str, Dict[int, Tuple[int, float, float]]] = {}
        for (metric, window), recs in sorted(self._pending.items()):
            mdir = self.segments_dir / _safe_name(metric)
            mdir.mkdir(parents=True, exist_ok=True)
            path = mdir / f"{window}.jsonl"
            with open(path, "a", encoding="utf-8") as fh:
                for rec in recs:
                    fh.write(json.dumps(rec, sort_keys=True) + "\n")
            ts = [rec["t"] for rec in recs]
            touched.setdefault(_safe_name(metric), {})[window] = (
                len(recs), min(ts), max(ts),
            )
            written += len(recs)
        for mdir_name, windows in touched.items():
            index_path = self.segments_dir / mdir_name / "index.json"
            index = self._load_index(index_path)
            for window, (n, t_min, t_max) in windows.items():
                entry = index["windows"].get(str(window))
                if entry is None:
                    entry = {"n": 0, "t_min": t_min, "t_max": t_max}
                entry["n"] += n
                entry["t_min"] = min(entry["t_min"], t_min)
                entry["t_max"] = max(entry["t_max"], t_max)
                index["windows"][str(window)] = entry
            _atomic_write_json(index_path, index)
        self._pending.clear()
        self._n_pending = 0
        return written

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "TimeSeriesStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @staticmethod
    def _load_index(path: Path) -> dict:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                index = json.load(fh)
            if isinstance(index.get("windows"), dict):
                return index
        except (OSError, ValueError):
            pass
        return {"schema": TSDB_SCHEMA, "windows": {}}

    # -- introspection -----------------------------------------------------

    def metrics(self) -> List[str]:
        """Stored metric names (directory names; sorted)."""
        if not self.segments_dir.exists():
            return []
        return sorted(
            p.name for p in self.segments_dir.iterdir() if p.is_dir()
        )

    def windows(self, metric: str) -> List[int]:
        mdir = self.segments_dir / _safe_name(metric)
        if not mdir.exists():
            return []
        out = []
        for p in mdir.glob("*.jsonl"):
            try:
                out.append(int(p.stem))
            except ValueError:
                continue
        return sorted(out)

    def stats(self) -> dict:
        """Store-wide totals for manifests and the report header."""
        n_samples = 0
        n_segments = 0
        t_min: Optional[float] = None
        t_max: Optional[float] = None
        metrics = self.metrics()
        for metric in metrics:
            index = self._load_index(
                self.segments_dir / metric / "index.json"
            )
            for entry in index["windows"].values():
                n_samples += int(entry.get("n", 0))
                n_segments += 1
                lo, hi = entry.get("t_min"), entry.get("t_max")
                if lo is not None:
                    t_min = lo if t_min is None else min(t_min, lo)
                if hi is not None:
                    t_max = hi if t_max is None else max(t_max, hi)
        return {
            "schema": TSDB_SCHEMA,
            "window_s": self.window_s,
            "n_metrics": len(metrics),
            "n_segments": n_segments,
            "n_samples": n_samples,
            "t_min": t_min,
            "t_max": t_max,
        }

    # -- read path ---------------------------------------------------------

    def query_range(
        self,
        metric: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> List[Point]:
        """All points of ``metric`` in ``[start, end]`` whose labels
        include ``labels``, time-sorted.  Unflushed appends are flushed
        first so reads always see writes."""
        if self._n_pending:
            self.flush()
        mdir = self.segments_dir / _safe_name(metric)
        if not mdir.exists():
            return []
        lo = -math.inf if start is None else float(start)
        hi = math.inf if end is None else float(end)
        want = tuple((labels or {}).items())
        points: List[Point] = []
        for window in self.windows(metric):
            if window + self.window_s < lo or window > hi:
                continue
            path = mdir / f"{window}.jsonl"
            try:
                fh = open(path, "r", encoding="utf-8")
            except OSError:
                continue
            with fh:
                for line in fh:
                    try:
                        rec = json.loads(line)
                    except ValueError:
                        continue  # torn tail line from a crash
                    t = rec.get("t", 0.0)
                    if not lo <= t <= hi:
                        continue
                    rl = rec.get("l") or {}
                    if any(rl.get(k) != v for k, v in want):
                        continue
                    points.append(
                        Point(
                            t=t,
                            value=float(rec.get("v", 0.0)),
                            labels=tuple(sorted(rl.items())),
                            exemplar=rec.get("x"),
                        )
                    )
        points.sort(key=lambda p: (p.t, p.labels))
        return points

    def series(
        self,
        metric: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Dict[LabelKey, List[Point]]:
        """Range query grouped by full label set."""
        grouped: Dict[LabelKey, List[Point]] = {}
        for point in self.query_range(metric, start, end, labels):
            grouped.setdefault(point.labels, []).append(point)
        return grouped

    def query_instant(
        self,
        metric: str,
        at: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Dict[LabelKey, Point]:
        """Latest point at or before ``at`` (default: now), per series."""
        at = float(at) if at is not None else time.time()
        out: Dict[LabelKey, Point] = {}
        for key, points in self.series(metric, None, at, labels).items():
            out[key] = points[-1]
        return out

    def rate(
        self,
        metric: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> Dict[LabelKey, float]:
        """Per-second counter rate over the range, per series.

        Handles counter resets the Prometheus way: only increases
        accumulate, a drop restarts from the lower value (the post-drop
        absolute value counts as fresh increase).
        """
        out: Dict[LabelKey, float] = {}
        for key, points in self.series(metric, start, end, labels).items():
            if len(points) < 2:
                out[key] = 0.0
                continue
            increase = 0.0
            prev = points[0].value
            for point in points[1:]:
                if point.value >= prev:
                    increase += point.value - prev
                else:
                    increase += point.value  # reset: counter restarted
                prev = point.value
            dt = points[-1].t - points[0].t
            out[key] = increase / dt if dt > 0 else 0.0
        return out

    def rollup(
        self,
        metric: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
        *,
        by: Sequence[str] = (),
        agg: str = "sum",
        rate: bool = False,
    ) -> Dict[Tuple[str, ...], float]:
        """Cross-series aggregation, optionally grouped by label.

        Each series contributes its counter :meth:`rate` (when
        ``rate=True``) or its latest value; series sharing the same
        values of the ``by`` labels fold together with ``sum`` or
        ``max``.  ``by=()`` folds everything into one group keyed
        ``()`` — e.g. fleet-wide requests/s is
        ``rollup("flashmark_service_requests", rate=True)``.
        """
        if agg not in ("sum", "max"):
            raise ValueError(f"unknown agg {agg!r}")
        if rate:
            per_series = self.rate(metric, start, end, labels)
        else:
            per_series = {
                key: point.value
                for key, point in self.query_instant(
                    metric, end, labels
                ).items()
                if start is None or point.t >= start
            }
        out: Dict[Tuple[str, ...], float] = {}
        for key, value in per_series.items():
            label_map = dict(key)
            group = tuple(label_map.get(k, "") for k in by)
            if group not in out:
                out[group] = value
            elif agg == "sum":
                out[group] += value
            else:
                out[group] = max(out[group], value)
        return out

    def exemplars(
        self,
        metric: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> List[dict]:
        """Exemplars attached to points in range, slowest first.

        Each entry carries the exemplar plus the sample's own identity:
        ``{"metric", "t", "labels", "value", "exemplar"}``.
        """
        out = [
            {
                "metric": metric,
                "t": point.t,
                "labels": point.label_dict(),
                "value": point.value,
                "exemplar": point.exemplar,
            }
            for point in self.query_range(metric, start, end, labels)
            if point.exemplar is not None
        ]
        out.sort(
            key=lambda e: -float(e["exemplar"].get("value") or 0.0)
        )
        return out

    # -- maintenance -------------------------------------------------------

    def compact(
        self,
        *,
        now: Optional[float] = None,
        retention_windows: Optional[int] = None,
    ) -> dict:
        """Sort closed segments and enforce retention.

        Closed windows (everything before the window containing
        ``now``) are rewritten time-sorted through a temp file +
        ``os.replace`` — crash-safe and idempotent.  When retention is
        set, only the newest ``retention_windows`` windows per metric
        survive.  Returns ``{"compacted": n, "dropped": n}``.
        """
        now = float(now) if now is not None else time.time()
        keep = (
            self.retention_windows
            if retention_windows is None
            else int(retention_windows)
        )
        self.flush()
        active = self.window_start(now)
        compacted = 0
        dropped = 0
        for metric in self.metrics():
            mdir = self.segments_dir / metric
            windows = self.windows(metric)
            index_path = mdir / "index.json"
            index = self._load_index(index_path)
            drop = set(windows[:-keep]) if keep > 0 else set()
            for window in windows:
                path = mdir / f"{window}.jsonl"
                if window in drop:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    index["windows"].pop(str(window), None)
                    dropped += 1
                    continue
                if window >= active:
                    continue  # never rewrite the active segment
                recs = []
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        for line in fh:
                            try:
                                recs.append(json.loads(line))
                            except ValueError:
                                continue
                except OSError:
                    continue
                recs.sort(key=lambda r: r.get("t", 0.0))
                tmp = path.with_suffix(".jsonl.tmp")
                with open(tmp, "w", encoding="utf-8") as fh:
                    for rec in recs:
                        fh.write(json.dumps(rec, sort_keys=True) + "\n")
                os.replace(tmp, path)
                entry = index["windows"].setdefault(
                    str(window), {"n": 0, "t_min": 0.0, "t_max": 0.0}
                )
                entry["n"] = len(recs)
                if recs:
                    entry["t_min"] = recs[0]["t"]
                    entry["t_max"] = recs[-1]["t"]
                compacted += 1
            _atomic_write_json(index_path, index)
        return {"compacted": compacted, "dropped": dropped}
