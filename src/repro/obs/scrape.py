"""Asyncio metrics scraper: poll a fleet's ``/metrics`` + ``/healthz``.

One :class:`MetricsScraper` owns a set of :class:`ScrapeTarget` s (the
router and every shard), polls each on an interval, parses the
Prometheus text back into typed samples (:mod:`repro.obs.parse`), and
appends them to a :class:`~repro.obs.tsdb.TimeSeriesStore` with the
target name merged in as a ``target`` label — that label is what makes
cross-shard rollups (``sum by ()``) possible downstream.

Alongside the exposition, every round also records synthesized
liveness series per target:

* ``flashmark_up`` — 1 if the target answered ``/metrics``, else 0
  (the Prometheus convention);
* ``flashmark_healthz_status_code`` — ok=0 / degraded=1 / alerting=2
  (unreachable or unknown=3);
* ``flashmark_healthz_queue_depth`` — the reported queue depth;
* ``flashmark_scrape_duration_s`` — how long the scrape took.

A failed target never fails the round: errors are counted, stored as
``flashmark_up 0``, and the loop moves on — exactly the posture the
router takes toward a sick shard.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..service.endpoint import Endpoint
from .parse import parse_prometheus_text
from .tsdb import TimeSeriesStore

__all__ = ["ScrapeTarget", "MetricsScraper", "fleet_targets"]

_STATUS_CODES = {"ok": 0, "degraded": 1, "alerting": 2}


@dataclass(frozen=True)
class ScrapeTarget:
    """One endpoint the scraper polls, under a stable ``target`` name."""

    name: str
    endpoint: Endpoint

    @classmethod
    def from_any(cls, name: str, endpoint) -> "ScrapeTarget":
        return cls(name=name, endpoint=Endpoint.from_any(endpoint))


def fleet_targets(shards=None, router=None) -> List[ScrapeTarget]:
    """Build the scrape set for a fleet: the router plus every live
    shard.

    ``shards`` is any shard manager (``infos()`` surface); ``router``
    is a :class:`~repro.fleet.router.FleetRouter`, an
    :class:`~repro.service.endpoint.Endpoint`, or anything
    ``Endpoint.from_any`` takes.  Shards that are down (no endpoint)
    are skipped — they re-enter the set on the next call after a
    rejoin.
    """
    targets: List[ScrapeTarget] = []
    if router is not None:
        endpoint = getattr(router, "endpoint", router)
        targets.append(ScrapeTarget.from_any("router", endpoint))
    if shards is not None:
        for info in shards.infos():
            if info.endpoint is not None:
                targets.append(
                    ScrapeTarget(info.shard_id, info.endpoint)
                )
    return targets


async def _http_get(
    endpoint: Endpoint, path: str, timeout_s: float
) -> Tuple[int, str]:
    """Minimal HTTP/1.0-style GET (Connection: close, read to EOF)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(endpoint.host, endpoint.port), timeout_s
    )
    try:
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {endpoint.host}:{endpoint.port}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(request.encode("ascii"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    status = int(status_line[1]) if len(status_line) > 1 else 0
    return status, body.decode("utf-8", "replace")


class MetricsScraper:
    """Poll every target's ``/metrics`` + ``/healthz`` into the tsdb."""

    def __init__(
        self,
        targets: Iterable[ScrapeTarget],
        store: TimeSeriesStore,
        *,
        interval_s: float = 1.0,
        timeout_s: float = 5.0,
    ):
        self.targets = list(targets)
        if not self.targets:
            raise ValueError("scraper needs at least one target")
        self.store = store
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.interval_s = float(interval_s)
        self.timeout_s = float(timeout_s)
        self.rounds = 0
        self.errors = 0

    # -- one round ---------------------------------------------------------

    async def scrape_once(self, *, t: Optional[float] = None) -> dict:
        """Scrape every target once (concurrently); flush the store.

        Returns a round summary:
        ``{"t", "targets": {name: {"ok", "n_samples", "status"}}}``.
        """
        t = float(t) if t is not None else time.time()
        results = await asyncio.gather(
            *(self._scrape_target(target, t) for target in self.targets)
        )
        self.store.flush()
        self.rounds += 1
        summary = {
            "t": t,
            "targets": {
                target.name: result
                for target, result in zip(self.targets, results)
            },
        }
        summary["ok"] = all(
            r["ok"] for r in summary["targets"].values()
        )
        return summary

    async def _scrape_target(
        self, target: ScrapeTarget, t: float
    ) -> dict:
        labels = {"target": target.name}
        t0 = time.perf_counter()
        ok = False
        n_samples = 0
        status = "unreachable"
        try:
            code, body = await _http_get(
                target.endpoint, "/metrics", self.timeout_s
            )
            if code == 200:
                parsed = parse_prometheus_text(body)
                n_samples = self.store.append_samples(
                    parsed.samples, t=t, labels=labels
                )
                ok = True
        except (OSError, asyncio.TimeoutError, ValueError):
            pass
        try:
            code, body = await _http_get(
                target.endpoint, "/healthz", self.timeout_s
            )
            payload = json.loads(body) if code == 200 else {}
            status = payload.get("status", "unknown")
            queue_depth = payload.get("queue_depth")
            if queue_depth is not None:
                self.store.append(
                    "flashmark_healthz_queue_depth",
                    float(queue_depth),
                    t=t,
                    labels=labels,
                )
        except (OSError, asyncio.TimeoutError, ValueError):
            pass
        if not ok:
            self.errors += 1
        self.store.append(
            "flashmark_up", 1.0 if ok else 0.0, t=t, labels=labels
        )
        self.store.append(
            "flashmark_healthz_status_code",
            float(_STATUS_CODES.get(status, 3)),
            t=t,
            labels=labels,
        )
        self.store.append(
            "flashmark_scrape_duration_s",
            time.perf_counter() - t0,
            t=t,
            labels=labels,
        )
        return {"ok": ok, "n_samples": n_samples, "status": status}

    # -- the loop ----------------------------------------------------------

    async def run(
        self,
        *,
        duration_s: Optional[float] = None,
        rounds: Optional[int] = None,
        stop_event: Optional[asyncio.Event] = None,
    ) -> dict:
        """Scrape on the interval until a bound trips.

        Stops after ``rounds`` rounds, after ``duration_s`` seconds,
        or when ``stop_event`` is set — whichever comes first (at
        least one round always runs).  Returns
        ``{"rounds", "errors", "targets"}``.
        """
        t0 = time.monotonic()
        done = 0
        while True:
            await self.scrape_once()
            done += 1
            if rounds is not None and done >= rounds:
                break
            if (
                duration_s is not None
                and time.monotonic() - t0 >= duration_s
            ):
                break
            if stop_event is not None:
                try:
                    await asyncio.wait_for(
                        stop_event.wait(), self.interval_s
                    )
                    break
                except asyncio.TimeoutError:
                    pass
            else:
                await asyncio.sleep(self.interval_s)
        return {
            "rounds": done,
            "errors": self.errors,
            "targets": [target.name for target in self.targets],
        }
