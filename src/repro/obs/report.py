"""The fleet dossier: one document merging tsdb, profiles and alerts.

``repro obs report`` renders what an operator wants on one page after a
soak: per-target availability and health, fleet-wide request rates and
verdict counts rolled up across shards, stage-latency quantiles
reconstructed from the scraped histogram buckets, the exemplars that
point at the slowest concrete traces (and their receipt ids), the
hottest profile frames, and the monitor's alert history.

Everything is defensive: a section whose inputs are missing (no
profile captured, no alerts log, a metric never scraped) renders as a
one-line note instead of failing, because a dossier for a degraded
fleet is exactly when you need the report to build.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from .profiler import ProfileData
from .tsdb import TimeSeriesStore

__all__ = ["build_obs_report", "render_obs_html", "write_obs_report"]

#: Histograms worth quantile tables, in display order.
_LATENCY_METRICS = (
    "flashmark_service_latency_s",
    "flashmark_fleet_latency_s",
    "flashmark_service_stage_engine_s",
    "flashmark_service_stage_queue_wait_s",
)

#: Counters worth fleet-wide rate rollups, in display order.
_RATE_METRICS = (
    "flashmark_service_requests",
    "flashmark_service_admitted",
    "flashmark_service_errors",
    "flashmark_fleet_requests",
    "flashmark_fleet_forwarded",
    "flashmark_fleet_evictions",
)


def _fmt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    return f"{value:.{digits}g}"


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join(" --- " for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def _bucket_quantile(
    buckets: List[float], cumulative: List[int], q: float
) -> Optional[float]:
    """Upper-bound quantile from cumulative bucket counts."""
    if not cumulative or cumulative[-1] <= 0:
        return None
    target = q * cumulative[-1]
    for bound, cum in zip(buckets, cumulative):
        if cum >= target:
            return bound
    return buckets[-1] if buckets else None


def _histogram_increase(
    store: TimeSeriesStore,
    base: str,
    start: Optional[float],
    end: Optional[float],
) -> Optional[dict]:
    """Reconstruct one histogram's increase over the queried range,
    summed across targets, from its scraped ``_bucket`` series."""
    series = store.series(f"{base}_bucket", start, end)
    if not series:
        return None
    per_bound: Dict[float, float] = {}
    for key, points in series.items():
        le = dict(key).get("le", "")
        try:
            bound = (
                math.inf if le.lstrip("+") == "Inf" else float(le)
            )
        except ValueError:
            continue
        increase = max(0.0, points[-1].value - points[0].value)
        per_bound[bound] = per_bound.get(bound, 0.0) + increase
    if not per_bound:
        return None
    bounds = sorted(per_bound)
    finite = [b for b in bounds if math.isfinite(b)]
    cumulative = [int(per_bound[b]) for b in bounds]
    return {"buckets": finite, "cumulative": cumulative}


def build_obs_report(
    store: TimeSeriesStore,
    *,
    profile: Optional[ProfileData] = None,
    alerts: Optional[List[dict]] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
    top_n: int = 15,
    title: str = "Fleet observability report",
) -> str:
    """Render the dossier as markdown (see module docstring)."""
    stats = store.stats()
    lines: List[str] = [f"# {title}", ""]
    t_min = stats.get("t_min")
    t_max = stats.get("t_max")
    window = ""
    if t_min is not None and t_max is not None:
        window = (
            f"{time.strftime('%Y-%m-%d %H:%M:%S', time.gmtime(t_min))}"
            f" .. "
            f"{time.strftime('%Y-%m-%d %H:%M:%S', time.gmtime(t_max))}"
            f" UTC ({t_max - t_min:.0f}s)"
        )
    lines += [
        f"- store: `{stats['schema']}`, {stats['n_metrics']} metrics, "
        f"{stats['n_samples']} samples in {stats['n_segments']} "
        f"segment(s)",
        f"- span: {window or 'empty store'}",
        "",
    ]

    # -- availability ------------------------------------------------------
    lines += ["## Targets", ""]
    up = store.series("flashmark_up", start, end)
    if up:
        rows = []
        for key, points in sorted(up.items()):
            target = dict(key).get("target", "?")
            frac = sum(p.value for p in points) / len(points)
            status = store.query_instant(
                "flashmark_healthz_status_code",
                end,
                {"target": target},
            )
            code = next(iter(status.values())).value if status else None
            status_name = {0: "ok", 1: "degraded", 2: "alerting"}.get(
                int(code) if code is not None else -1, "unknown"
            )
            rows.append(
                [
                    f"`{target}`",
                    f"{100.0 * frac:.1f}%",
                    str(len(points)),
                    status_name,
                ]
            )
        lines += _table(
            ["target", "up", "scrapes", "last status"], rows
        )
    else:
        lines.append("_no scrape rounds recorded_")
    lines.append("")

    # -- fleet-wide rates --------------------------------------------------
    lines += ["## Fleet-wide rates", ""]
    rate_rows = []
    for metric in _RATE_METRICS:
        total = store.rollup(metric, start, end, rate=True)
        per_target = store.rollup(
            metric, start, end, by=("target",), agg="max", rate=True
        )
        if not total:
            continue
        hottest = (
            max(per_target.items(), key=lambda kv: kv[1])
            if per_target
            else ((("",),), 0.0)
        )
        rate_rows.append(
            [
                f"`{metric}`",
                f"{_fmt(total.get((), 0.0))}/s",
                f"`{hottest[0][0]}` ({_fmt(hottest[1])}/s)",
            ]
        )
    if rate_rows:
        lines += _table(
            ["metric", "fleet rate", "hottest target"], rate_rows
        )
    else:
        lines.append("_no counter series in range_")
    lines.append("")

    # -- latency quantiles -------------------------------------------------
    lines += ["## Stage latency (scraped buckets, range increase)", ""]
    lat_rows = []
    for base in _LATENCY_METRICS:
        hist = _histogram_increase(store, base, start, end)
        if hist is None:
            continue
        lat_rows.append(
            [
                f"`{base}`",
                str(hist["cumulative"][-1] if hist["cumulative"] else 0),
                _fmt(
                    _bucket_quantile(
                        hist["buckets"], hist["cumulative"], 0.50
                    )
                ),
                _fmt(
                    _bucket_quantile(
                        hist["buckets"], hist["cumulative"], 0.95
                    )
                ),
                _fmt(
                    _bucket_quantile(
                        hist["buckets"], hist["cumulative"], 0.99
                    )
                ),
            ]
        )
    if lat_rows:
        lines += _table(
            ["histogram", "n", "p50 ≤", "p95 ≤", "p99 ≤"], lat_rows
        )
    else:
        lines.append("_no stage histograms in range_")
    lines.append("")

    # -- exemplars ---------------------------------------------------------
    lines += ["## Slowest exemplars", ""]
    exemplar_rows = []
    for base in _LATENCY_METRICS:
        for entry in store.exemplars(f"{base}_bucket", start, end)[:5]:
            ex = entry["exemplar"]
            ex_labels = ex.get("labels") or {}
            exemplar_rows.append(
                [
                    f"`{base}`",
                    _fmt(ex.get("value")),
                    f"`{ex_labels.get('trace_id', '-')}`",
                    f"`{ex_labels.get('receipt_id', '-')}`",
                    f"`{entry['labels'].get('target', '-')}`",
                ]
            )
        if exemplar_rows:
            break  # one family of exemplars is enough for the dossier
    if exemplar_rows:
        lines += _table(
            ["histogram", "seconds", "trace id", "receipt id", "target"],
            exemplar_rows[:top_n],
        )
    else:
        lines.append("_no exemplars recorded_")
    lines.append("")

    # -- profile -----------------------------------------------------------
    lines += ["## Hottest frames (sampling profile)", ""]
    if profile is not None and profile.n_samples:
        lines.append(
            f"{profile.n_samples} samples at {profile.hz:g} Hz over "
            f"{profile.duration_s:.1f}s"
        )
        lines.append("")
        rows = [
            [
                f"`{row['frame']}`",
                str(row["self"]),
                str(row["cum"]),
                f"{100.0 * row['self_frac']:.1f}%",
            ]
            for row in profile.top(top_n)
        ]
        lines += _table(["frame", "self", "cum", "self %"], rows)
    else:
        lines.append("_no profile captured_")
    lines.append("")

    # -- alerts ------------------------------------------------------------
    lines += ["## Alert history", ""]
    if alerts:
        by_rule: Dict[Tuple[str, str], int] = {}
        for alert in alerts:
            key = (
                str(alert.get("rule", "?")),
                str(alert.get("severity", "?")),
            )
            by_rule[key] = by_rule.get(key, 0) + 1
        rows = [
            [f"`{rule}`", severity, str(count)]
            for (rule, severity), count in sorted(by_rule.items())
        ]
        lines += _table(["rule", "severity", "alerts"], rows)
    else:
        lines.append("_no alerts recorded_")
    lines.append("")
    return "\n".join(lines)


def render_obs_html(
    markdown: str, *, title: str = "Fleet observability report"
) -> str:
    """A minimal self-contained HTML wrapper (tables included)."""
    import html as _html

    out = [
        "<!doctype html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        "<style>body{font-family:sans-serif;margin:2em;max-width:60em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:0.25em 0.6em;"
        "text-align:left}code{background:#f4f4f4;padding:0 0.2em}"
        "</style></head><body>",
    ]
    in_table = False
    for line in markdown.splitlines():
        stripped = line.strip()
        if stripped.startswith("|"):
            cells = [c.strip() for c in stripped.strip("|").split("|")]
            if all(set(c) <= {"-", " ", ":"} for c in cells):
                continue  # separator row
            if not in_table:
                out.append("<table>")
                in_table = True
                tag = "th"
            else:
                tag = "td"
            rendered = "".join(
                f"<{tag}>{_inline_html(c)}</{tag}>" for c in cells
            )
            out.append(f"<tr>{rendered}</tr>")
            continue
        if in_table:
            out.append("</table>")
            in_table = False
        if stripped.startswith("# "):
            out.append(f"<h1>{_inline_html(stripped[2:])}</h1>")
        elif stripped.startswith("## "):
            out.append(f"<h2>{_inline_html(stripped[3:])}</h2>")
        elif stripped.startswith("- "):
            out.append(f"<p>{_inline_html(stripped[2:])}</p>")
        elif stripped.startswith("_") and stripped.endswith("_"):
            out.append(f"<p><em>{_inline_html(stripped[1:-1])}</em></p>")
        elif stripped:
            out.append(f"<p>{_inline_html(stripped)}</p>")
    if in_table:
        out.append("</table>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def _inline_html(text: str) -> str:
    import html as _html

    escaped = _html.escape(text)
    # `code` spans only; the dossier uses no other inline markup.
    parts = escaped.split("`")
    for i in range(1, len(parts), 2):
        parts[i] = f"<code>{parts[i]}</code>"
    return "".join(parts)


def write_obs_report(path, markdown: str, *, title: str) -> None:
    """Write the dossier; ``.html``/``.htm`` paths get the HTML wrap."""
    import os

    text = markdown
    if os.fspath(path).lower().endswith((".html", ".htm")):
        text = render_obs_html(markdown, title=title)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
