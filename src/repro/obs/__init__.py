"""``repro.obs`` — the fleet observability plane.

Three pillars over the per-process telemetry PRs 5–7 left behind:

1. **Scrape + store** — :class:`MetricsScraper` polls every shard's and
   the router's ``/metrics`` + ``/healthz``, parses the Prometheus text
   back into typed samples (:mod:`repro.obs.parse`) and appends them to
   a local ``flashmark.tsdb/v1`` :class:`TimeSeriesStore` with range /
   instant / ``rate()`` queries and cross-shard rollups.
2. **Continuous profiling** — :class:`SamplingProfiler`, a pid-guarded
   stack sampler engine workers and the server loop opt into via
   ``profile_hz``; samples aggregate into :class:`ProfileData`
   (collapsed-stack form) and flow through the PR 5 flamegraph / Chrome
   exporters.
3. **Exemplars** — stage histograms carry the trace id (and receipt id)
   of the slowest observation per bucket per window, so a p99 bucket
   links to the exact trace and signed verdict (see
   :class:`repro.telemetry.Histogram`).

``repro obs {record,query,top,report}`` is the CLI over all three.

Submodules import lazily (PEP 562): the profiler must be importable
from engine worker code without dragging in the service stack, and the
scraper needs :mod:`repro.service` — resolving attributes on first use
keeps both true without import cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "PROFILE_SCHEMA",
    "ProfileData",
    "SamplingProfiler",
    "Sample",
    "ParsedMetrics",
    "parse_prometheus_text",
    "assemble_histogram",
    "TSDB_SCHEMA",
    "Point",
    "TimeSeriesStore",
    "ScrapeTarget",
    "MetricsScraper",
    "fleet_targets",
    "build_obs_report",
    "render_obs_html",
    "write_obs_report",
]

_LAZY = {
    "PROFILE_SCHEMA": "profiler",
    "ProfileData": "profiler",
    "SamplingProfiler": "profiler",
    "Sample": "parse",
    "ParsedMetrics": "parse",
    "parse_prometheus_text": "parse",
    "assemble_histogram": "parse",
    "TSDB_SCHEMA": "tsdb",
    "Point": "tsdb",
    "TimeSeriesStore": "tsdb",
    "ScrapeTarget": "scrape",
    "MetricsScraper": "scrape",
    "fleet_targets": "scrape",
    "build_obs_report": "report",
    "render_obs_html": "report",
    "write_obs_report": "report",
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .parse import (  # noqa: F401
        ParsedMetrics,
        Sample,
        assemble_histogram,
        parse_prometheus_text,
    )
    from .profiler import (  # noqa: F401
        PROFILE_SCHEMA,
        ProfileData,
        SamplingProfiler,
    )
    from .report import (  # noqa: F401
        build_obs_report,
        render_obs_html,
        write_obs_report,
    )
    from .scrape import (  # noqa: F401
        MetricsScraper,
        ScrapeTarget,
        fleet_targets,
    )
    from .tsdb import TSDB_SCHEMA, Point, TimeSeriesStore  # noqa: F401


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(
        importlib.import_module(f".{module}", __name__), name
    )
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
