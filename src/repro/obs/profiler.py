"""Low-overhead sampling profiler for workers and the server loop.

A :class:`SamplingProfiler` periodically captures the Python stack of
one target thread and aggregates the stacks into collapsed form
(``module:function;module:function;... -> count``), the exchange format
the flamegraph toolchain speaks.  Two capture mechanisms:

``timer`` (default)
    A daemon thread wakes every ``1/hz`` seconds and reads the target
    thread's frame out of ``sys._current_frames()``.  Wall-clock
    sampling: frames blocked on I/O or sleeping count too, which is
    what a latency investigation wants.  Works on any thread and never
    touches signal state.

``signal``
    ``SIGPROF`` + ``setitimer(ITIMER_PROF)``: the kernel delivers a
    signal after every ``1/hz`` seconds of *CPU* time and the handler
    records the interrupted frame.  CPU-time sampling, main thread
    only — the right tool when only on-CPU cost matters.

Both modes are pid-guarded the way :class:`~repro.faults.FaultInjector`
is: a profiler armed before a ``fork`` refuses to record in the child
(and the signal handler disarms its inherited itimer), so engine pool
workers never double-count into a parent's buffer.  Workers run their
*own* profiler (see ``repro.engine.api``) and hand the samples back
inside the telemetry snapshot, where
:meth:`~repro.telemetry.Telemetry.merge_profile` folds them together.

The aggregate, :class:`ProfileData`, converts to a synthetic trace
document so the PR 5 exporters (``to_collapsed_stacks`` /
``to_chrome_trace``) render profiles with zero new viewer code.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
import time
from typing import Dict, List, Optional

__all__ = ["PROFILE_SCHEMA", "ProfileData", "SamplingProfiler"]

PROFILE_SCHEMA = "flashmark.profile/v1"


class ProfileData:
    """Aggregated collapsed-stack samples from one or more profilers."""

    __slots__ = ("samples", "n_samples", "duration_s", "hz")

    def __init__(
        self,
        samples: Optional[Dict[str, int]] = None,
        *,
        n_samples: int = 0,
        duration_s: float = 0.0,
        hz: float = 0.0,
    ):
        #: ``"frame;frame;leaf"`` -> sample count.  Frames are
        #: ``module:function`` with the root of the call stack first.
        self.samples: Dict[str, int] = dict(samples or {})
        self.n_samples = int(n_samples)
        self.duration_s = float(duration_s)
        self.hz = float(hz)

    # -- aggregation -------------------------------------------------------

    def record(self, stack: str) -> None:
        self.samples[stack] = self.samples.get(stack, 0) + 1
        self.n_samples += 1

    def merge(self, other) -> "ProfileData":
        """Fold another :class:`ProfileData` (or its dict dump) in."""
        if isinstance(other, dict):
            other = ProfileData.from_dict(other)
        for stack, n in other.samples.items():
            self.samples[stack] = self.samples.get(stack, 0) + n
        self.n_samples += other.n_samples
        self.duration_s += other.duration_s
        if other.hz:
            self.hz = other.hz
        return self

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "hz": self.hz,
            "n_samples": self.n_samples,
            "duration_s": self.duration_s,
            "samples": dict(self.samples),
        }

    @classmethod
    def from_dict(cls, dump: dict) -> "ProfileData":
        return cls(
            dump.get("samples") or {},
            n_samples=int(dump.get("n_samples") or 0),
            duration_s=float(dump.get("duration_s") or 0.0),
            hz=float(dump.get("hz") or 0.0),
        )

    # -- analysis ----------------------------------------------------------

    def top(self, n: int = 10) -> List[dict]:
        """Hottest frames by self samples (cumulative as tiebreak).

        Returns ``{"frame", "self", "cum", "self_frac"}`` rows — the
        table ``repro obs top`` and the fleet report print.
        """
        self_counts: Dict[str, int] = {}
        cum_counts: Dict[str, int] = {}
        for stack, count in self.samples.items():
            frames = stack.split(";")
            self_counts[frames[-1]] = (
                self_counts.get(frames[-1], 0) + count
            )
            for frame in set(frames):
                cum_counts[frame] = cum_counts.get(frame, 0) + count
        total = max(1, self.n_samples)
        rows = [
            {
                "frame": frame,
                "self": self_counts.get(frame, 0),
                "cum": cum,
                "self_frac": self_counts.get(frame, 0) / total,
            }
            for frame, cum in cum_counts.items()
        ]
        rows.sort(key=lambda r: (-r["self"], -r["cum"], r["frame"]))
        return rows[:n]

    def to_collapsed(self) -> str:
        """``stack count`` lines (flamegraph.pl / speedscope input)."""
        return "\n".join(
            f"{stack} {count}"
            for stack, count in sorted(self.samples.items())
        ) + ("\n" if self.samples else "")

    def to_trace_doc(self, name: str = "profile") -> dict:
        """A synthetic trace document for the PR 5 exporters.

        The stack prefix tree becomes a span tree: each node's wall
        time is its cumulative sample count over ``hz`` (1s per sample
        when hz is unknown), and sibling spans are laid out
        sequentially so the Chrome viewer shows a well-formed icicle.
        """
        per_sample_s = 1.0 / self.hz if self.hz > 0 else 1.0
        # Prefix tree: node key is the full prefix tuple.
        tree: Dict[tuple, dict] = {}
        for stack, count in sorted(self.samples.items()):
            frames = tuple(stack.split(";"))
            for depth in range(1, len(frames) + 1):
                prefix = frames[:depth]
                node = tree.get(prefix)
                if node is None:
                    node = tree[prefix] = {"cum": 0, "children": []}
                    if depth > 1:
                        tree[frames[: depth - 1]]["children"].append(
                            prefix
                        )
                node["cum"] += count
        trace_id = hashlib.sha256(
            ("profile:" + name).encode("utf-8")
        ).hexdigest()[:32]
        spans: List[dict] = []
        counter = [0]

        def _span_id() -> str:
            counter[0] += 1
            return f"{counter[0]:016x}"

        root_id = _span_id()
        spans.append(
            {
                "name": name,
                "path": name,
                "depth": 0,
                "wall_s": self.n_samples * per_sample_s,
                "device_us": 0.0,
                "energy_uj": 0.0,
                "t0_unix_s": 0.0,
                "trace_id": trace_id,
                "span_id": root_id,
                "parent_id": None,
                "attrs": {
                    "n_samples": self.n_samples,
                    "hz": self.hz,
                },
            }
        )

        def _emit(prefix: tuple, parent_id: str, t0: float) -> None:
            node = tree[prefix]
            span_id = _span_id()
            spans.append(
                {
                    "name": prefix[-1],
                    "path": name + "/" + "/".join(prefix),
                    "depth": len(prefix),
                    "wall_s": node["cum"] * per_sample_s,
                    "device_us": 0.0,
                    "energy_uj": 0.0,
                    "t0_unix_s": t0,
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent_id,
                    "attrs": {"samples": node["cum"]},
                }
            )
            offset = t0
            for child in node["children"]:
                _emit(child, span_id, offset)
                offset += tree[child]["cum"] * per_sample_s

        offset = 0.0
        for prefix in sorted(tree):
            if len(prefix) == 1:
                _emit(prefix, root_id, offset)
                offset += tree[prefix]["cum"] * per_sample_s
        return {
            "trace_id": trace_id,
            "complete": True,
            "orphans": 0,
            "stages": [name],
            "spans": spans,
        }


class SamplingProfiler:
    """Periodic stack sampler for one thread (see module docstring).

    Use as a context manager or via explicit :meth:`start` /
    :meth:`stop`; ``stop()`` returns the accumulated
    :class:`ProfileData`.
    """

    def __init__(
        self,
        hz: float = 99.0,
        *,
        mode: str = "timer",
        max_depth: int = 64,
    ):
        if hz <= 0:
            raise ValueError("hz must be > 0")
        if mode not in ("timer", "signal"):
            raise ValueError(f"unknown profiler mode {mode!r}")
        self.hz = float(hz)
        self.mode = mode
        self.max_depth = int(max_depth)
        self._pid = os.getpid()
        self._data = ProfileData(hz=self.hz)
        self._running = False
        self._t0 = 0.0
        self._target_thread: Optional[int] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._old_handler = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Begin sampling the *calling* thread."""
        if self._running:
            raise RuntimeError("profiler already running")
        self._running = True
        self._t0 = time.perf_counter()
        self._target_thread = threading.get_ident()
        if self.mode == "timer":
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._timer_loop,
                name="repro-obs-profiler",
                daemon=True,
            )
            self._thread.start()
        else:
            import signal

            self._old_handler = signal.signal(
                signal.SIGPROF, self._on_signal
            )
            signal.setitimer(
                signal.ITIMER_PROF, 1.0 / self.hz, 1.0 / self.hz
            )
        return self

    def stop(self) -> ProfileData:
        """Stop sampling and return the accumulated profile."""
        if not self._running:
            return self._data
        self._running = False
        self._data.duration_s += time.perf_counter() - self._t0
        if self.mode == "timer":
            self._stop_event.set()
            if self._thread is not None:
                self._thread.join(timeout=2.0)
                self._thread = None
        elif os.getpid() == self._pid:
            import signal

            signal.setitimer(signal.ITIMER_PROF, 0.0)
            if self._old_handler is not None:
                signal.signal(signal.SIGPROF, self._old_handler)
                self._old_handler = None
        return self._data

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def data(self) -> ProfileData:
        return self._data

    # -- capture -----------------------------------------------------------

    def _timer_loop(self) -> None:
        interval = 1.0 / self.hz
        frames_of = sys._current_frames
        while not self._stop_event.wait(interval):
            # Pid guard: a forked child does not inherit this thread,
            # but guard anyway so shared ProfileData never mixes pids.
            if os.getpid() != self._pid:
                return
            frame = frames_of().get(self._target_thread)
            if frame is not None:
                self._record(frame)

    def _on_signal(self, signum, frame) -> None:
        if os.getpid() != self._pid:
            # Inherited itimer in a forked child: disarm and bail, the
            # same discipline FaultInjector applies to its fault arms.
            import signal

            signal.setitimer(signal.ITIMER_PROF, 0.0)
            return
        if frame is not None and self._running:
            self._record(frame)

    def _record(self, frame) -> None:
        parts: List[str] = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            module = frame.f_globals.get("__name__", "?")
            parts.append(f"{module}:{code.co_name}")
            frame = frame.f_back
            depth += 1
        parts.reverse()
        self._data.record(";".join(parts))
