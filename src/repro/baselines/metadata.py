"""Baseline: plain programmed metadata ("the current practice").

Section IV: "The current practice is that a chip manufacturer performs
an erase followed by a program operation on a flash segment reserved for
keeping manufacturing information ... Unfortunately, this information
can easily be erased, forged, or fabricated by counterfeiters."

This baseline exists so benchmarks can show exactly that: it reads back
perfectly on an untouched chip and is defeated by a single
:func:`~repro.attacks.tamper.digital_forgery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.payload import PAYLOAD_BYTES, PayloadError, WatermarkPayload
from ..core.watermark import Watermark
from ..device.controller import FlashController

__all__ = ["PlainMetadataStore"]


@dataclass
class PlainMetadataStore:
    """Manufacturing metadata kept as ordinary programmed flash contents."""

    segment: int = 0

    def write(self, flash: FlashController, payload: WatermarkPayload) -> None:
        """Erase the segment and program the payload record."""
        pattern = np.ones(flash.geometry.bits_per_segment, dtype=np.uint8)
        bits = Watermark.from_payload(payload).bits
        pattern[: bits.size] = bits
        flash.erase_segment(self.segment)
        flash.program_segment_bits(self.segment, pattern)

    def read(self, flash: FlashController) -> Optional[WatermarkPayload]:
        """Read the payload back; None when missing or corrupt."""
        bits = flash.read_segment_bits(self.segment)
        try:
            return WatermarkPayload.from_bits(bits[: PAYLOAD_BYTES * 8])
        except (PayloadError, ValueError):
            return None
