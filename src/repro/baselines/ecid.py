"""Baseline: Electronic Chip Identifiers in antifuse OTP memory ([12]).

ECIDs are unforgeable once blown, but the paper lists their drawbacks:
they are uncommon in flash chips, need mask changes and dedicated
on-chip resources, and verification requires checking the id against
the manufacturer — i.e. a per-chip database lookup.  The model captures
exactly those properties so the baseline comparison is concrete:

* the OTP id cannot be rewritten (set-once semantics enforced);
* a cloner *can* read a genuine id and blow it into a blank part —
  only the manufacturer's duplicate-detection catches that;
* chips without the dedicated OTP macro simply have nothing to check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

__all__ = ["EcidOtp", "EcidRegistry"]


class EcidOtp:
    """A 64-bit antifuse one-time-programmable identifier macro."""

    def __init__(self) -> None:
        self._value: Optional[int] = None

    @property
    def blown(self) -> bool:
        return self._value is not None

    def blow(self, value: int) -> None:
        """Program the id; permitted exactly once."""
        if not 0 <= value < 2**64:
            raise ValueError("ECID must be a 64-bit value")
        if self._value is not None:
            raise PermissionError("ECID is one-time programmable")
        self._value = value

    def read(self) -> Optional[int]:
        """The programmed id, or None if the fuse bank is virgin."""
        return self._value


@dataclass
class EcidRegistry:
    """The manufacturer-side database ECIDs require.

    This is the operational burden the paper contrasts Flashmark with:
    every manufactured chip needs an entry, and every verification needs
    a round trip to the manufacturer.
    """

    _issued: Set[int] = field(default_factory=set)
    _seen_in_field: Dict[int, int] = field(default_factory=dict)

    def issue(self, ecid: int) -> None:
        """Record a factory-issued id."""
        if ecid in self._issued:
            raise ValueError(f"ECID 0x{ecid:X} already issued")
        self._issued.add(ecid)

    @property
    def n_entries(self) -> int:
        """Database size — grows with every chip ever made."""
        return len(self._issued)

    def verify(self, ecid: Optional[int]) -> bool:
        """Integrator-side check (requires contacting the manufacturer).

        Flags unknown ids and duplicate sightings (the clone giveaway).
        """
        if ecid is None or ecid not in self._issued:
            return False
        sightings = self._seen_in_field.get(ecid, 0) + 1
        self._seen_in_field[ecid] = sightings
        return sightings == 1
