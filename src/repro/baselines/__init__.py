"""Anti-counterfeiting baselines the paper compares against (Section I).

* :class:`PlainMetadataStore` — programmed metadata, the forgeable
  "current practice";
* :class:`EcidOtp` / :class:`EcidRegistry` — antifuse chip identifiers
  with their per-chip database burden;
* :class:`FlashPuf` / :class:`PufRegistry` — flash PUF fingerprinting
  with enrollment and matching costs.

The recycled-flash timing detector ([6], [7]) lives in
:mod:`repro.characterize.recycled`, next to the characterisation
machinery it shares.
"""

from .ecid import EcidOtp, EcidRegistry
from .metadata import PlainMetadataStore
from .puf import FlashPuf, PufEnrollment, PufRegistry
from .trng import FlashTrng, TrngCalibration

__all__ = [
    "PlainMetadataStore",
    "EcidOtp",
    "EcidRegistry",
    "FlashPuf",
    "PufEnrollment",
    "PufRegistry",
    "FlashTrng",
    "TrngCalibration",
]
