"""Baseline: flash-based physical unclonable function ([13]-[15]).

A PUF derives a per-chip fingerprint from manufacturing variation — here
from the pairwise ordering of cell erase-crossing times, which our
physics layer provides for free.  The paper's criticism is operational,
not cryptographic: PUFs need lengthy extraction, a database entry per
chip, and a manufacturer round trip per verification.  The model exposes
those costs (extraction time from the device clock, database size) for
the baseline-comparison benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..device.mcu import Microcontroller

__all__ = ["FlashPuf", "PufEnrollment", "PufRegistry"]


@dataclass(frozen=True)
class PufEnrollment:
    """A fingerprint captured at enrollment time."""

    chip_label: str
    fingerprint: np.ndarray
    #: Stable-bit mask ("dark bits" excluded): pairs whose ordering was
    #: near-unanimous across extraction rounds.  Matching only compares
    #: masked positions — standard PUF enrollment practice.
    mask: np.ndarray
    #: Device time the extraction took [ms].
    extraction_ms: float

    @property
    def n_stable_bits(self) -> int:
        return int(self.mask.sum())


class FlashPuf:
    """Erase-timing PUF over one flash segment.

    The fingerprint bit i compares the erase-crossing times of cell 2i
    and cell 2i+1, measured with a staircase of progressive partial
    erases: process variation decides which of the pair flips first,
    and that ordering is stable per chip but i.i.d. across chips.
    """

    def __init__(
        self,
        segment: int = 0,
        t_start_us: float = 12.0,
        t_stop_us: float = 34.0,
        t_step_us: float = 0.5,
        n_rounds: int = 5,
        stability_fraction: float = 0.6,
    ):
        if n_rounds < 1:
            raise ValueError("n_rounds must be a positive odd number")
        if n_rounds % 2 == 0:
            raise ValueError("n_rounds must be a positive odd number")
        if not 0.0 < stability_fraction <= 1.0:
            raise ValueError("stability_fraction must be in (0, 1]")
        if not 0.0 < t_start_us < t_stop_us or t_step_us <= 0:
            raise ValueError("t grid must satisfy 0 < start < stop, step > 0")
        self.segment = segment
        self.t_start_us = t_start_us
        self.t_stop_us = t_stop_us
        self.t_step_us = t_step_us
        self.n_rounds = n_rounds
        self.stability_fraction = stability_fraction

    def _crossing_buckets(self, chip: Microcontroller) -> np.ndarray:
        """One round: per-cell erase-crossing time bucket.

        Erase, program all, then apply progressive partial-erase
        increments (reading between pulses — the consecutive aborted
        erases compound, as on silicon) and record the step at which
        each cell first reads erased.
        """
        flash = chip.flash
        n_bits = chip.geometry.bits_per_segment
        flash.erase_segment(self.segment)
        flash.program_segment_bits(
            self.segment, np.zeros(n_bits, dtype=np.uint8)
        )
        steps = np.arange(self.t_start_us, self.t_stop_us, self.t_step_us)
        buckets = np.full(n_bits, len(steps), dtype=np.int64)
        elapsed = 0.0
        for i, t in enumerate(steps):
            flash.partial_erase_segment(self.segment, float(t) - elapsed)
            elapsed = float(t)
            state = flash.read_segment_bits(self.segment)
            fresh_cross = (state == 1) & (buckets == len(steps))
            buckets[fresh_cross] = i
        return buckets

    def extract(self, chip: Microcontroller) -> PufEnrollment:
        """Extract the fingerprint (destructive to segment contents).

        Fingerprint bit *i* compares the erase-crossing buckets of cells
        2i and 2i+1 — pure process variation.  Pairs whose ordering is
        not reproduced in at least ``stability_fraction`` of the rounds
        (including too-close-to-call ties) are masked out as dark bits.
        """
        flash = chip.flash
        t0 = flash.trace.now_us
        n_pairs = chip.geometry.bits_per_segment // 2
        votes = np.zeros(n_pairs, dtype=np.int64)
        for _ in range(self.n_rounds):
            buckets = self._crossing_buckets(chip)
            votes += np.sign(buckets[1::2] - buckets[0::2])
        fingerprint = (votes > 0).astype(np.uint8)
        needed = self.stability_fraction * self.n_rounds
        mask = np.abs(votes) >= needed
        return PufEnrollment(
            chip_label=f"{chip.model}:{chip.die_id:012X}",
            fingerprint=fingerprint,
            mask=mask,
            extraction_ms=(flash.trace.now_us - t0) / 1e3,
        )


@dataclass
class PufRegistry:
    """Manufacturer-side fingerprint database (one entry per chip)."""

    #: Maximum fractional Hamming distance (over the enrolled stable
    #: mask) accepted as a match.
    match_threshold: float = 0.15
    _entries: Dict[str, PufEnrollment] = field(default_factory=dict)

    def enroll(self, enrollment: PufEnrollment) -> None:
        if enrollment.chip_label in self._entries:
            raise ValueError(f"{enrollment.chip_label} already enrolled")
        self._entries[enrollment.chip_label] = enrollment

    @property
    def n_entries(self) -> int:
        return len(self._entries)

    def match(self, fingerprint: np.ndarray) -> Optional[str]:
        """Find the enrolled chip matching a re-extracted fingerprint.

        Distances are computed over each enrollment's stable-bit mask.
        Linear scan over the whole database — the scaling burden the
        paper points at.
        """
        fingerprint = np.asarray(fingerprint, dtype=np.uint8)
        best_label, best_dist = None, 1.0
        for label, stored in self._entries.items():
            if stored.fingerprint.size != fingerprint.size:
                continue
            mask = stored.mask
            if not mask.any():
                continue
            dist = float(
                np.count_nonzero(
                    stored.fingerprint[mask] != fingerprint[mask]
                )
            ) / int(mask.sum())
            if dist < best_dist:
                best_label, best_dist = label, dist
        if best_label is not None and best_dist <= self.match_threshold:
            return best_label
        return None
