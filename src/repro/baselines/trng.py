"""Baseline: flash-based true random number generator ([15]).

Wang et al. showed flash memories double as hardware security
primitives: park cells *on* the read threshold with partial programming
and the sense amplifier's thermal/RTN noise turns every read into a
coin flip.  We reproduce that recipe on the simulator:

1. erase the harvest segment and sweep the partial-program pulse length
   until roughly half the cells read programmed — the population then
   straddles the read reference;
2. select the cells that actually flicker across calibration reads;
3. harvest raw bits from repeated reads of the flicker cells and
   debias them with the von Neumann extractor.

The TRNG shares the Flashmark theme — analog cell physics accessed
through the plain digital interface — and doubles as a noise-model
validation: its output passes monobit/runs/chi-square tests only if the
read-noise model behaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..device.mcu import Microcontroller

__all__ = ["FlashTrng", "TrngCalibration"]


@dataclass(frozen=True)
class TrngCalibration:
    """Harvest configuration found by :meth:`FlashTrng.calibrate`."""

    #: Partial-program pulse length that parks cells on the threshold [us].
    t_pp_us: float
    #: Indices (within the segment) of cells that flicker across reads.
    flicker_cells: np.ndarray
    #: Fraction of segment cells usable as noise sources.
    flicker_fraction: float


class FlashTrng:
    """Harvests random bits from flash read noise.

    Parameters
    ----------
    segment:
        Flash segment sacrificed to entropy harvesting.
    calibration_reads:
        Reads used to detect flicker cells during calibration.
    min_flicker_fraction:
        Calibration fails below this usable-cell fraction (indicates a
        mis-parked population).
    """

    def __init__(
        self,
        segment: int = 0,
        calibration_reads: int = 16,
        min_flicker_fraction: float = 0.005,
    ):
        self.segment = segment
        self.calibration_reads = calibration_reads
        self.min_flicker_fraction = min_flicker_fraction

    # -- calibration -----------------------------------------------------

    def calibrate(
        self, chip: Microcontroller, t_grid_us: Optional[np.ndarray] = None
    ) -> TrngCalibration:
        """Park the population on the threshold and find flicker cells."""
        flash = chip.flash
        n_bits = chip.geometry.bits_per_segment
        all_zero = np.zeros(n_bits, dtype=np.uint8)
        if t_grid_us is None:
            t_grid_us = np.arange(8.0, 30.0, 0.5)

        # Find the pulse that leaves ~half the cells programmed.
        best_t, best_gap = None, None
        for t in t_grid_us:
            flash.erase_segment(self.segment)
            flash.partial_program_segment(self.segment, all_zero, float(t))
            zeros = int(
                (flash.read_segment_bits(self.segment) == 0).sum()
            )
            gap = abs(zeros - n_bits // 2)
            if best_gap is None or gap < best_gap:
                best_t, best_gap = float(t), gap

        # Re-park at the chosen pulse and detect flicker cells.
        flash.erase_segment(self.segment)
        flash.partial_program_segment(self.segment, all_zero, best_t)
        reads = np.stack(
            [
                flash.read_segment_bits(self.segment)
                for _ in range(self.calibration_reads)
            ]
        )
        ones = reads.sum(axis=0)
        flicker = (ones > 0) & (ones < self.calibration_reads)
        fraction = float(flicker.mean())
        if fraction < self.min_flicker_fraction:
            raise RuntimeError(
                f"only {fraction:.4f} of cells flicker at "
                f"t_pp={best_t} us; read-noise source unusable"
            )
        return TrngCalibration(
            t_pp_us=best_t,
            flicker_cells=np.flatnonzero(flicker),
            flicker_fraction=fraction,
        )

    # -- harvesting ------------------------------------------------------

    def generate(
        self,
        chip: Microcontroller,
        n_bits: int,
        calibration: Optional[TrngCalibration] = None,
    ) -> np.ndarray:
        """Produce ``n_bits`` von-Neumann-debiased random bits.

        Each flicker cell contributes one candidate per pair of reads:
        (0,1) -> 0, (1,0) -> 1, equal pairs discarded — removing any
        per-cell bias at the cost of throughput.
        """
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        if calibration is None:
            calibration = self.calibrate(chip)
        flash = chip.flash
        cells = calibration.flicker_cells
        out = np.empty(n_bits, dtype=np.uint8)
        filled = 0
        guard = 0
        while filled < n_bits:
            first = flash.read_segment_bits(self.segment)[cells]
            second = flash.read_segment_bits(self.segment)[cells]
            keep = first != second
            harvested = first[keep]
            take = min(harvested.size, n_bits - filled)
            out[filled : filled + take] = harvested[:take]
            filled += take
            guard += 1
            if guard > 100_000:
                raise RuntimeError(
                    "entropy harvest stalled; recalibrate the TRNG"
                )
        return out
