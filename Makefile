# Convenience targets for the Flashmark reproduction.

PYTHON ?= python

.PHONY: install test bench experiments examples calibrate telemetry-demo serve-demo clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PYTHON) tools/run_experiments.py results

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

calibrate:
	$(PYTHON) tools/calibrate.py

telemetry-demo:
	$(PYTHON) -m repro telemetry --selftest

serve-demo:
	$(PYTHON) examples/verification_service.py

clean:
	rm -rf results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
